#include "exec/operators.h"

#include <cassert>

#include "util/strings.h"

namespace tabbench {

bool CompiledPred::Eval(const Tuple& t) const {
  switch (kind) {
    case ResidualPred::Kind::kColEqLit:
      return t.at(static_cast<size_t>(pos_a)) == literal;
    case ResidualPred::Kind::kColEqCol:
      return t.at(static_cast<size_t>(pos_a)) ==
             t.at(static_cast<size_t>(pos_b));
    case ResidualPred::Kind::kInSet:
      return in_set->count(t.at(static_cast<size_t>(pos_a))) > 0;
  }
  return false;
}

namespace {

/// Charges spill I/O as hash state grows beyond work_mem: every page of
/// overflow data is written once and read back once (Grace-style).
class SpillTracker {
 public:
  explicit SpillTracker(ExecContext* ctx) : ctx_(ctx) {}

  void Add(size_t bytes) {
    bytes_ += bytes;
    size_t pages = bytes_ / kPageSize;
    size_t limit = ctx_->params().work_mem_pages;
    if (pages > limit) {
      uint64_t over = pages - limit;
      if (over > spilled_) {
        ctx_->ChargeIoPages(2 * (over - spilled_));
        spilled_ = over;
      }
    }
  }

  bool spilled() const { return spilled_ > 0; }

 private:
  ExecContext* ctx_;
  size_t bytes_ = 0;
  uint64_t spilled_ = 0;
};

}  // namespace

Result<std::vector<CompiledPred>> CompilePreds(const PlanNode& node,
                                               const InSets& in_sets) {
  std::vector<CompiledPred> out;
  for (const auto& p : node.residual) {
    CompiledPred cp;
    cp.kind = p.kind;
    cp.pos_a = node.FindSlot(p.a);
    if (cp.pos_a < 0) {
      return Status::Internal("residual predicate slot not in node output");
    }
    switch (p.kind) {
      case ResidualPred::Kind::kColEqLit:
        cp.literal = p.literal;
        break;
      case ResidualPred::Kind::kColEqCol:
        cp.pos_b = node.FindSlot(p.b);
        if (cp.pos_b < 0) {
          return Status::Internal("residual predicate slot not in node output");
        }
        break;
      case ResidualPred::Kind::kInSet:
        if (p.in_set < 0 || p.in_set >= static_cast<int>(in_sets.size())) {
          return Status::Internal("residual IN-set index out of range");
        }
        cp.in_set = &in_sets[static_cast<size_t>(p.in_set)];
        break;
    }
    out.push_back(std::move(cp));
  }
  return out;
}

namespace {

bool EvalPreds(const std::vector<CompiledPred>& preds, const Tuple& t) {
  for (const auto& p : preds) {
    if (!p.Eval(t)) return false;
  }
  return true;
}

// ---------------------------------------------------------------- SeqScan

class SeqScanOp : public Operator {
 public:
  SeqScanOp(const HeapTable* heap, std::vector<CompiledPred> preds,
            ExecContext* ctx)
      : heap_(heap),
        preds_(std::move(preds)),
        ctx_(ctx),
        cursor_(heap->Scan([ctx](PageId id) { ctx->TouchPage(id); })) {}

  Status Open() override { return Status::OK(); }

  Result<bool> NextImpl(Tuple* out) override {
    Tuple t;
    while (cursor_.Next(&t, nullptr)) {
      ctx_->ChargeTuples(1);
      TB_RETURN_IF_ERROR(ctx_->CheckTimeout());
      if (EvalPreds(preds_, t)) {
        *out = std::move(t);
        return true;
      }
    }
    TB_RETURN_IF_ERROR(ctx_->CheckTimeout());
    return false;
  }

 private:
  const HeapTable* heap_;
  std::vector<CompiledPred> preds_;
  ExecContext* ctx_;
  HeapTable::Cursor cursor_;
};

// -------------------------------------------------------------- IndexScan

class IndexScanOp : public Operator {
 public:
  IndexScanOp(const IndexInfo* index, IndexKey prefix, bool index_only,
              std::vector<CompiledPred> preds, ExecContext* ctx)
      : index_(index),
        prefix_(std::move(prefix)),
        index_only_(index_only),
        preds_(std::move(preds)),
        ctx_(ctx) {}

  Status Open() override {
    if (prefix_.empty()) {
      // Full leaf-chain walk: leaves stream sequentially.
      iter_ = index_->btree->ScanAll(
          [this](PageId id) { ctx_->TouchPage(id); });
    } else {
      // Probe: descent and leaf reads are random I/O.
      iter_ = index_->btree->SeekPrefix(
          prefix_, [this](PageId id) { ctx_->TouchPageRandom(id); });
    }
    return Status::OK();
  }

  Result<bool> NextImpl(Tuple* out) override {
    IndexKey key;
    Rid rid;
    while (iter_.Next(&key, &rid)) {
      ctx_->ChargeTuples(1);
      TB_RETURN_IF_ERROR(ctx_->CheckTimeout());
      Tuple t;
      if (index_only_) {
        t = Tuple(std::move(key));
      } else {
        auto fetched = index_->heap->Fetch(
            rid, [this](PageId id) { ctx_->TouchPageRandom(id); });
        if (!fetched.ok()) return fetched.status();
        ctx_->ChargeTuples(1);
        t = fetched.TakeValue();
      }
      if (EvalPreds(preds_, t)) {
        *out = std::move(t);
        return true;
      }
    }
    TB_RETURN_IF_ERROR(ctx_->CheckTimeout());
    return false;
  }

 private:
  const IndexInfo* index_;
  IndexKey prefix_;
  bool index_only_;
  std::vector<CompiledPred> preds_;
  ExecContext* ctx_;
  BTree::Iterator iter_;
};

// --------------------------------------------------------------- HashJoin

class HashJoinOp : public Operator {
 public:
  HashJoinOp(std::unique_ptr<Operator> build, std::unique_ptr<Operator> probe,
             std::vector<std::pair<int, int>> key_pos,
             std::vector<CompiledPred> preds, ExecContext* ctx)
      : build_(std::move(build)),
        probe_(std::move(probe)),
        key_pos_(std::move(key_pos)),
        preds_(std::move(preds)),
        ctx_(ctx),
        spill_(ctx) {}

  Status Open() override {
    TB_RETURN_IF_ERROR(build_->Open());
    Tuple t;
    for (;;) {
      auto more = build_->Next(&t);
      if (!more.ok()) return more.status();
      if (!*more) break;
      Tuple key = BuildKey(t, /*left=*/true);
      ctx_->ChargeHashOps(1);
      spill_.Add(t.ByteSize() + 24);
      table_[std::move(key)].push_back(std::move(t));
      TB_RETURN_IF_ERROR(ctx_->CheckTimeout());
    }
    return probe_->Open();
  }

  Result<bool> NextImpl(Tuple* out) override {
    for (;;) {
      if (match_list_ != nullptr && match_idx_ < match_list_->size()) {
        Tuple joined = Tuple::Concat((*match_list_)[match_idx_], probe_row_);
        ++match_idx_;
        ctx_->ChargeTuples(1);
        TB_RETURN_IF_ERROR(ctx_->CheckTimeout());
        if (EvalPreds(preds_, joined)) {
          *out = std::move(joined);
          return true;
        }
        continue;
      }
      auto more = probe_->Next(&probe_row_);
      if (!more.ok()) return more.status();
      if (!*more) return false;
      ctx_->ChargeHashOps(1);
      if (spill_.spilled()) {
        // Grace repartitioning: the probe stream is written and re-read too.
        probe_spill_bytes_ += probe_row_.ByteSize();
        while (probe_spill_bytes_ >= kPageSize) {
          ctx_->ChargeIoPages(2);
          probe_spill_bytes_ -= kPageSize;
        }
      }
      TB_RETURN_IF_ERROR(ctx_->CheckTimeout());
      Tuple key = BuildKey(probe_row_, /*left=*/false);
      auto it = table_.find(key);
      if (it == table_.end()) {
        match_list_ = nullptr;
        continue;
      }
      match_list_ = &it->second;
      match_idx_ = 0;
    }
  }

 private:
  Tuple BuildKey(const Tuple& t, bool left) const {
    std::vector<Value> vals;
    vals.reserve(key_pos_.size());
    for (const auto& [l, r] : key_pos_) {
      vals.push_back(t.at(static_cast<size_t>(left ? l : r)));
    }
    return Tuple(std::move(vals));
  }

  std::unique_ptr<Operator> build_;
  std::unique_ptr<Operator> probe_;
  std::vector<std::pair<int, int>> key_pos_;
  std::vector<CompiledPred> preds_;
  ExecContext* ctx_;
  SpillTracker spill_;
  size_t probe_spill_bytes_ = 0;
  std::unordered_map<Tuple, std::vector<Tuple>, TupleHash> table_;
  Tuple probe_row_;
  const std::vector<Tuple>* match_list_ = nullptr;
  size_t match_idx_ = 0;
};

// ------------------------------------------------------------ IndexNLJoin

class IndexNLJoinOp : public Operator {
 public:
  IndexNLJoinOp(std::unique_ptr<Operator> outer, const IndexInfo* inner,
                std::vector<SeekKeyPart> seek,
                std::vector<int> seek_outer_pos, bool inner_index_only,
                std::vector<CompiledPred> preds, ExecContext* ctx)
      : outer_(std::move(outer)),
        inner_(inner),
        seek_(std::move(seek)),
        seek_outer_pos_(std::move(seek_outer_pos)),
        inner_index_only_(inner_index_only),
        preds_(std::move(preds)),
        ctx_(ctx) {}

  Status Open() override { return outer_->Open(); }

  Result<bool> NextImpl(Tuple* out) override {
    for (;;) {
      if (have_iter_) {
        IndexKey key;
        Rid rid;
        while (iter_.Next(&key, &rid)) {
          ctx_->ChargeTuples(1);
          TB_RETURN_IF_ERROR(ctx_->CheckTimeout());
          Tuple inner_row;
          if (inner_index_only_) {
            inner_row = Tuple(std::move(key));
          } else {
            auto fetched = inner_->heap->Fetch(
                rid, [this](PageId id) { ctx_->TouchPageRandom(id); });
            if (!fetched.ok()) return fetched.status();
            ctx_->ChargeTuples(1);
            inner_row = fetched.TakeValue();
          }
          Tuple joined = Tuple::Concat(outer_row_, inner_row);
          if (EvalPreds(preds_, joined)) {
            *out = std::move(joined);
            return true;
          }
        }
        have_iter_ = false;
      }
      auto more = outer_->Next(&outer_row_);
      if (!more.ok()) return more.status();
      if (!*more) return false;
      TB_RETURN_IF_ERROR(ctx_->CheckTimeout());
      // Assemble the probe prefix: literals plus outer-row values.
      IndexKey prefix;
      prefix.reserve(seek_.size());
      size_t outer_i = 0;
      for (const auto& part : seek_) {
        if (part.from_outer) {
          prefix.push_back(
              outer_row_.at(static_cast<size_t>(seek_outer_pos_[outer_i++])));
        } else {
          prefix.push_back(part.literal);
        }
      }
      iter_ = inner_->btree->SeekPrefix(
          prefix, [this](PageId id) { ctx_->TouchPageRandom(id); });
      have_iter_ = true;
    }
  }

 private:
  std::unique_ptr<Operator> outer_;
  const IndexInfo* inner_;
  std::vector<SeekKeyPart> seek_;
  std::vector<int> seek_outer_pos_;  // outer tuple positions, in seek order
  bool inner_index_only_;
  std::vector<CompiledPred> preds_;
  ExecContext* ctx_;
  Tuple outer_row_;
  BTree::Iterator iter_;
  bool have_iter_ = false;
};

// ---------------------------------------------------------- HashAggregate

class HashAggregateOp : public Operator {
 public:
  HashAggregateOp(std::unique_ptr<Operator> child,
                  std::vector<int> group_pos,
                  std::vector<BoundSelectItem> select,
                  std::vector<int> select_group_idx,
                  std::vector<int> select_distinct_pos, ExecContext* ctx)
      : child_(std::move(child)),
        group_pos_(std::move(group_pos)),
        select_(std::move(select)),
        select_group_idx_(std::move(select_group_idx)),
        select_distinct_pos_(std::move(select_distinct_pos)),
        ctx_(ctx),
        spill_(ctx) {}

  Status Open() override {
    TB_RETURN_IF_ERROR(child_->Open());
    size_t num_distinct_aggs = 0;
    for (const auto& s : select_) {
      if (s.kind == BoundSelectItem::Kind::kCountDistinct) ++num_distinct_aggs;
    }
    Tuple t;
    for (;;) {
      auto more = child_->Next(&t);
      if (!more.ok()) return more.status();
      if (!*more) break;
      ctx_->ChargeHashOps(1);
      TB_RETURN_IF_ERROR(ctx_->CheckTimeout());
      Tuple key = t.Project(
          std::vector<size_t>(group_pos_.begin(), group_pos_.end()));
      auto [it, inserted] = groups_.try_emplace(std::move(key));
      GroupState& g = it->second;
      if (inserted) {
        g.distinct.resize(num_distinct_aggs);
        spill_.Add(it->first.ByteSize() + 32);
      }
      ++g.count;
      size_t di = 0;
      for (size_t si = 0; si < select_.size(); ++si) {
        if (select_[si].kind != BoundSelectItem::Kind::kCountDistinct) continue;
        const Value& v = t.at(static_cast<size_t>(select_distinct_pos_[di]));
        auto [vit, vinserted] = g.distinct[di].insert(v);
        (void)vit;
        if (vinserted) spill_.Add(v.ByteSize() + 16);
        ctx_->ChargeHashOps(1);
        ++di;
      }
    }
    // Empty input with no GROUP BY still yields one all-zero row (SQL
    // scalar-aggregate semantics).
    if (groups_.empty() && group_pos_.empty()) {
      GroupState g;
      g.distinct.resize(num_distinct_aggs);
      g.count = 0;
      groups_.emplace(Tuple(), std::move(g));
    }
    iter_ = groups_.begin();
    return Status::OK();
  }

  Result<bool> NextImpl(Tuple* out) override {
    if (iter_ == groups_.end()) return false;
    ctx_->ChargeTuples(1);
    TB_RETURN_IF_ERROR(ctx_->CheckTimeout());
    const Tuple& key = iter_->first;
    const GroupState& g = iter_->second;
    std::vector<Value> vals;
    vals.reserve(select_.size());
    size_t di = 0;
    for (size_t si = 0; si < select_.size(); ++si) {
      switch (select_[si].kind) {
        case BoundSelectItem::Kind::kColumn:
          vals.push_back(key.at(static_cast<size_t>(select_group_idx_[si])));
          break;
        case BoundSelectItem::Kind::kCountStar:
          vals.push_back(Value(static_cast<int64_t>(g.count)));
          break;
        case BoundSelectItem::Kind::kCountDistinct:
          vals.push_back(Value(static_cast<int64_t>(g.distinct[di].size())));
          ++di;
          break;
      }
    }
    *out = Tuple(std::move(vals));
    ++iter_;
    return true;
  }

 private:
  struct GroupState {
    uint64_t count = 0;
    std::vector<std::unordered_set<Value, ValueHash>> distinct;
  };

  std::unique_ptr<Operator> child_;
  std::vector<int> group_pos_;
  std::vector<BoundSelectItem> select_;
  /// For kColumn items: index into the group key.
  std::vector<int> select_group_idx_;
  /// For kCountDistinct items (in select order): child tuple position.
  std::vector<int> select_distinct_pos_;
  ExecContext* ctx_;
  SpillTracker spill_;
  std::unordered_map<Tuple, GroupState, TupleHash> groups_;
  std::unordered_map<Tuple, GroupState, TupleHash>::iterator iter_;
};

// ---------------------------------------------------------------- Project

class ProjectOp : public Operator {
 public:
  ProjectOp(std::unique_ptr<Operator> child, std::vector<size_t> positions,
            ExecContext* ctx)
      : child_(std::move(child)), positions_(std::move(positions)), ctx_(ctx) {}

  Status Open() override { return child_->Open(); }

  Result<bool> NextImpl(Tuple* out) override {
    Tuple t;
    auto more = child_->Next(&t);
    if (!more.ok()) return more.status();
    if (!*more) return false;
    ctx_->ChargeTuples(1);
    *out = t.Project(positions_);
    return true;
  }

 private:
  std::unique_ptr<Operator> child_;
  std::vector<size_t> positions_;
  ExecContext* ctx_;
};

}  // namespace

// ---------------------------------------------------------------- helpers

Result<std::unordered_set<Value, ValueHash>> MaterializeInSet(
    const InSetSpec& spec, const ObjectResolver& resolver, ExecContext* ctx) {
  std::unordered_map<Value, uint64_t, ValueHash> counts;
  if (!spec.index_name.empty()) {
    const IndexInfo* idx = resolver.FindIndex(spec.index_name);
    if (idx == nullptr) {
      return Status::NotFound("IN-set index " + spec.index_name);
    }
    auto iter = idx->btree->ScanAll([ctx](PageId id) { ctx->TouchPage(id); });
    IndexKey key;
    Rid rid;
    while (iter.Next(&key, &rid)) {
      ctx->ChargeTuples(1);
      ctx->ChargeHashOps(1);
      TB_RETURN_IF_ERROR(ctx->CheckTimeout());
      counts[key[0]] += 1;
    }
  } else {
    const HeapTable* heap = resolver.FindHeap(spec.table);
    if (heap == nullptr) {
      return Status::NotFound("IN-set table " + spec.table);
    }
    if (spec.column_pos < 0) {
      return Status::Internal("IN-set spec missing column position for " +
                              spec.table + "." + spec.column);
    }
    size_t pos = static_cast<size_t>(spec.column_pos);
    auto cursor = heap->Scan([ctx](PageId id) { ctx->TouchPage(id); });
    Tuple t;
    while (cursor.Next(&t, nullptr)) {
      ctx->ChargeTuples(1);
      ctx->ChargeHashOps(1);
      TB_RETURN_IF_ERROR(ctx->CheckTimeout());
      counts[t.at(pos)] += 1;
    }
  }
  std::unordered_set<Value, ValueHash> out;
  // Order-insensitive: fills another unordered set (membership probes
  // only), so hash-iteration order never reaches any ordered output.
  for (const auto& [v, c] : counts) {  // NOLINT(tabbench-unordered-iter)
    bool keep = (spec.cmp == '<') ? (c < static_cast<uint64_t>(spec.k))
                                  : (c == static_cast<uint64_t>(spec.k));
    if (keep && !v.is_null()) out.insert(v);
  }
  return out;
}

Result<std::unique_ptr<Operator>> BuildOperator(const PlanNode& node,
                                                const ObjectResolver& resolver,
                                                const InSets& in_sets,
                                                ExecContext* ctx,
                                                OperatorRegistry* registry) {
  std::vector<CompiledPred> preds;
  TB_ASSIGN_OR_RETURN(preds, CompilePreds(node, in_sets));
  auto reg = [&](std::unique_ptr<Operator> op)
      -> Result<std::unique_ptr<Operator>> {
    if (registry != nullptr) registry->emplace_back(&node, op.get());
    return {std::move(op)};
  };

  switch (node.kind) {
    case PlanNode::Kind::kSeqScan: {
      const HeapTable* heap = resolver.FindHeap(node.object);
      if (heap == nullptr) return Status::NotFound("table " + node.object);
      return reg(std::make_unique<SeqScanOp>(heap, std::move(preds), ctx));
    }
    case PlanNode::Kind::kIndexScan: {
      const IndexInfo* idx = resolver.FindIndex(node.index_name);
      if (idx == nullptr) return Status::NotFound("index " + node.index_name);
      IndexKey prefix;
      for (const auto& part : node.seek) {
        if (part.from_outer) {
          return Status::Internal("leaf IndexScan cannot reference outer row");
        }
        prefix.push_back(part.literal);
      }
      return reg(std::make_unique<IndexScanOp>(
          idx, std::move(prefix), node.index_only, std::move(preds), ctx));
    }
    case PlanNode::Kind::kHashJoin: {
      if (node.children.size() != 2) {
        return Status::Internal("HashJoin needs 2 children");
      }
      std::unique_ptr<Operator> build, probe;
      TB_ASSIGN_OR_RETURN(
          build,
          BuildOperator(*node.children[0], resolver, in_sets, ctx, registry));
      TB_ASSIGN_OR_RETURN(
          probe,
          BuildOperator(*node.children[1], resolver, in_sets, ctx, registry));
      std::vector<std::pair<int, int>> key_pos;
      for (const auto& [l, r] : node.hash_keys) {
        int lp = node.children[0]->FindSlot(l);
        int rp = node.children[1]->FindSlot(r);
        if (lp < 0 || rp < 0) {
          return Status::Internal("hash key not found in child output");
        }
        key_pos.emplace_back(lp, rp);
      }
      return reg(std::make_unique<HashJoinOp>(std::move(build),
                                              std::move(probe),
                                              std::move(key_pos),
                                              std::move(preds), ctx));
    }
    case PlanNode::Kind::kIndexNLJoin: {
      if (node.children.size() != 1) {
        return Status::Internal("IndexNLJoin needs 1 child (outer)");
      }
      std::unique_ptr<Operator> outer;
      TB_ASSIGN_OR_RETURN(
          outer,
          BuildOperator(*node.children[0], resolver, in_sets, ctx, registry));
      const IndexInfo* idx = resolver.FindIndex(node.index_name);
      if (idx == nullptr) return Status::NotFound("index " + node.index_name);
      std::vector<int> outer_pos;
      for (const auto& part : node.seek) {
        if (!part.from_outer) continue;
        int p = node.children[0]->FindSlot(part.outer);
        if (p < 0) {
          return Status::Internal("seek outer slot not in outer output");
        }
        outer_pos.push_back(p);
      }
      return reg(std::make_unique<IndexNLJoinOp>(
          std::move(outer), idx, node.seek, std::move(outer_pos),
          node.index_only, std::move(preds), ctx));
    }
    case PlanNode::Kind::kHashAggregate: {
      if (node.children.size() != 1) {
        return Status::Internal("HashAggregate needs 1 child");
      }
      std::unique_ptr<Operator> child;
      TB_ASSIGN_OR_RETURN(
          child,
          BuildOperator(*node.children[0], resolver, in_sets, ctx, registry));
      const PlanNode& c = *node.children[0];
      std::vector<int> group_pos;
      for (const auto& g : node.group_by) {
        int p = c.FindSlot(SlotRef{g.rel, g.col});
        if (p < 0) return Status::Internal("group-by slot not in child");
        group_pos.push_back(p);
      }
      std::vector<int> select_group_idx(node.select.size(), -1);
      std::vector<int> select_distinct_pos;
      for (size_t i = 0; i < node.select.size(); ++i) {
        const auto& s = node.select[i];
        if (s.kind == BoundSelectItem::Kind::kColumn) {
          for (size_t gi = 0; gi < node.group_by.size(); ++gi) {
            if (node.group_by[gi].SameAs(s.column)) {
              select_group_idx[i] = static_cast<int>(gi);
              break;
            }
          }
          if (select_group_idx[i] < 0) {
            return Status::Internal("select column not in group key");
          }
        } else if (s.kind == BoundSelectItem::Kind::kCountDistinct) {
          int p = c.FindSlot(SlotRef{s.column.rel, s.column.col});
          if (p < 0) return Status::Internal("distinct slot not in child");
          select_distinct_pos.push_back(p);
        }
      }
      return reg(std::make_unique<HashAggregateOp>(
          std::move(child), std::move(group_pos), node.select,
          std::move(select_group_idx), std::move(select_distinct_pos), ctx));
    }
    case PlanNode::Kind::kProject: {
      if (node.children.size() != 1) {
        return Status::Internal("Project needs 1 child");
      }
      std::unique_ptr<Operator> child;
      TB_ASSIGN_OR_RETURN(
          child,
          BuildOperator(*node.children[0], resolver, in_sets, ctx, registry));
      std::vector<size_t> positions;
      for (const auto& s : node.select) {
        if (s.kind != BoundSelectItem::Kind::kColumn) {
          return Status::Internal("Project only handles plain columns");
        }
        int p = node.children[0]->FindSlot(SlotRef{s.column.rel, s.column.col});
        if (p < 0) return Status::Internal("project slot not in child");
        positions.push_back(static_cast<size_t>(p));
      }
      return reg(std::make_unique<ProjectOp>(std::move(child),
                                             std::move(positions), ctx));
    }
  }
  return Status::Internal("unknown plan node kind");
}

}  // namespace tabbench
