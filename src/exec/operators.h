#ifndef TABBENCH_EXEC_OPERATORS_H_
#define TABBENCH_EXEC_OPERATORS_H_

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "exec/exec_context.h"
#include "exec/plan.h"
#include "exec/plan_executor.h"
#include "types/tuple.h"
#include "util/status.h"

namespace tabbench {

/// Volcano-style physical operator. Open() prepares (and for pipeline
/// breakers does the blocking work); Next() yields rows until false.
/// Every operator charges its work to the shared ExecContext and surfaces
/// Status::Timeout as soon as the simulated clock trips.
///
/// Next() centrally counts emitted rows so EXPLAIN ANALYZE can report
/// per-operator actual cardinalities; subclasses implement NextImpl().
class Operator {
 public:
  virtual ~Operator() = default;
  virtual Status Open() = 0;

  /// Yields the next row into *out; value `false` signals end of stream.
  Result<bool> Next(Tuple* out) {
    Result<bool> r = NextImpl(out);
    if (r.ok() && *r) ++rows_emitted_;
    return r;
  }

  /// Rows this operator has emitted so far (EXPLAIN ANALYZE).
  uint64_t rows_emitted() const { return rows_emitted_; }

 protected:
  virtual Result<bool> NextImpl(Tuple* out) = 0;

 private:
  uint64_t rows_emitted_ = 0;
};

/// A residual predicate compiled to tuple positions.
struct CompiledPred {
  ResidualPred::Kind kind = ResidualPred::Kind::kColEqLit;
  int pos_a = -1;
  int pos_b = -1;
  Value literal;
  const std::unordered_set<Value, ValueHash>* in_set = nullptr;

  bool Eval(const Tuple& t) const;
};

/// Materialized IN-subquery value sets, one per PhysicalPlan::in_sets entry.
using InSets = std::vector<std::unordered_set<Value, ValueHash>>;

/// Compiles a node's residual predicates against its output slot layout.
/// Shared between the Volcano operators and the vectorized pipeline
/// compiler so both executors evaluate identical predicate programs.
Result<std::vector<CompiledPred>> CompilePreds(const PlanNode& node,
                                               const InSets& in_sets);

/// Builds the value set for one InSetSpec by a frequency scan of the
/// subquery table (index-only when the spec names an index). Charges all
/// work to `ctx`; respects the timeout.
Result<std::unordered_set<Value, ValueHash>> MaterializeInSet(
    const InSetSpec& spec, const ObjectResolver& resolver, ExecContext* ctx);

/// Pairs each plan node with its instantiated operator, so actual row
/// counts can be written back after execution (EXPLAIN ANALYZE).
using OperatorRegistry = std::vector<std::pair<const PlanNode*, const Operator*>>;

/// Instantiates the operator tree for `node`. `in_sets` must outlive the
/// returned operator. When `registry` is non-null every constructed
/// operator is recorded against its plan node.
Result<std::unique_ptr<Operator>> BuildOperator(const PlanNode& node,
                                                const ObjectResolver& resolver,
                                                const InSets& in_sets,
                                                ExecContext* ctx,
                                                OperatorRegistry* registry = nullptr);

}  // namespace tabbench

#endif  // TABBENCH_EXEC_OPERATORS_H_
