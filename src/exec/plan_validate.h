#ifndef TABBENCH_EXEC_PLAN_VALIDATE_H_
#define TABBENCH_EXEC_PLAN_VALIDATE_H_

#include "exec/plan.h"
#include "util/status.h"

namespace tabbench {

/// Structural validation of a physical plan, independent of storage:
///   * node arity matches its kind (scans 0 children, joins 2 or 1, ...);
///   * every residual predicate's slots resolve in the node's output;
///   * hash keys resolve in the respective children;
///   * IN-set references are in range and specs carry a column position;
///   * seek parts referencing the outer row only appear under kIndexNLJoin,
///     and their slots resolve in the outer child;
///   * join/aggregate outputs are consistent with their children.
///
/// The planner is expected to always produce valid plans; this check turns
/// silent slot-bookkeeping bugs into immediate, descriptive errors and is
/// exercised after every PlanQuery in tests.
Status ValidatePlan(const PhysicalPlan& plan);

}  // namespace tabbench

#endif  // TABBENCH_EXEC_PLAN_VALIDATE_H_
