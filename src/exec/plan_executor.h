#ifndef TABBENCH_EXEC_PLAN_EXECUTOR_H_
#define TABBENCH_EXEC_PLAN_EXECUTOR_H_

#include <string>
#include <vector>

#include "exec/exec_context.h"
#include "exec/plan.h"
#include "storage/btree.h"
#include "storage/heap_table.h"
#include "types/tuple.h"
#include "util/status.h"

namespace tabbench {

/// Physical index metadata the executor needs to run an index access path.
struct IndexInfo {
  const BTree* btree = nullptr;
  /// Heap the index's Rids point into (base table or materialized view).
  const HeapTable* heap = nullptr;
  /// Key column positions within that heap's row layout, in key order.
  std::vector<int> key_cols;
};

/// Maps plan object/index names to physical storage. Implemented by the
/// engine's Database; tests implement it directly over raw storage.
class ObjectResolver {
 public:
  virtual ~ObjectResolver() = default;
  virtual const HeapTable* FindHeap(const std::string& name) const = 0;
  virtual const IndexInfo* FindIndex(const std::string& name) const = 0;
};

/// Outcome of running one query.
struct QueryResult {
  std::vector<Tuple> rows;
  /// Simulated elapsed seconds A(q, C). For timed-out queries this is
  /// clamped to the timeout limit (the paper's lower-bound convention).
  double sim_seconds = 0.0;
  uint64_t pages_read = 0;
  uint64_t tuples_processed = 0;
  bool timed_out = false;
  /// Set by failure-isolating callers (WorkloadService) when the query's
  /// retries were exhausted and the result is a censored placeholder at the
  /// timeout cost; the executor itself never sets it.
  bool failed = false;
};

/// Runs a physical plan to completion. Timeouts are reported as a successful
/// QueryResult with `timed_out = true` (they are benchmark data, the `t_out`
/// histogram bin — not errors). Genuine failures (unknown object, malformed
/// plan) return a non-OK status.
Result<QueryResult> ExecutePlan(const PhysicalPlan& plan,
                                const ObjectResolver& resolver,
                                ExecContext* ctx);

/// EXPLAIN ANALYZE: like ExecutePlan, but writes each operator's measured
/// output cardinality into its PlanNode::actual_rows, so
/// `plan->ToString()` afterwards shows estimated-vs-actual rows side by
/// side — the observation step the paper finds missing from the
/// observe-predict-react loop (Section 6).
Result<QueryResult> ExecutePlanAnalyze(PhysicalPlan* plan,
                                       const ObjectResolver& resolver,
                                       ExecContext* ctx);

}  // namespace tabbench

#endif  // TABBENCH_EXEC_PLAN_EXECUTOR_H_
