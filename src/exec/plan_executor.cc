#include "exec/plan_executor.h"

#include <algorithm>

#include "exec/operators.h"

namespace tabbench {

namespace {
Result<QueryResult> ExecutePlanImpl(const PhysicalPlan& plan,
                                    const ObjectResolver& resolver,
                                    ExecContext* ctx,
                                    OperatorRegistry* registry) {
  QueryResult result;
  if (plan.root == nullptr) {
    return Status::InvalidArgument("plan has no root");
  }

  auto finish = [&](bool timed_out) -> QueryResult {
    // Harvest per-operator actuals while the operator tree is still alive
    // (the registry's Operator pointers die with it).
    if (registry != nullptr) {
      for (const auto& [node, op] : *registry) {
        const_cast<PlanNode*>(node)->actual_rows =
            static_cast<int64_t>(op->rows_emitted());
      }
    }
    result.timed_out = timed_out;
    result.sim_seconds =
        timed_out ? ctx->params().timeout_seconds : ctx->sim_time();
    result.pages_read = ctx->pages_read();
    result.tuples_processed = ctx->tuples_processed();
    if (timed_out) result.rows.clear();
    return result;
  };

  // Materialize the IN-subquery value sets first (they are real query work
  // and can themselves hit the timeout).
  InSets in_sets;
  for (const auto& spec : plan.in_sets) {
    auto set = MaterializeInSet(spec, resolver, ctx);
    if (!set.ok()) {
      if (set.status().IsTimeout()) return finish(/*timed_out=*/true);
      return set.status();
    }
    in_sets.push_back(set.TakeValue());
  }

  std::unique_ptr<Operator> root;
  TB_ASSIGN_OR_RETURN(
      root, BuildOperator(*plan.root, resolver, in_sets, ctx, registry));
  Status open = root->Open();
  if (!open.ok()) {
    if (open.IsTimeout()) return finish(/*timed_out=*/true);
    return open;
  }
  Tuple t;
  for (;;) {
    auto more = root->Next(&t);
    if (!more.ok()) {
      if (more.status().IsTimeout()) return finish(/*timed_out=*/true);
      return more.status();
    }
    if (!*more) break;
    result.rows.push_back(std::move(t));
  }
  return finish(/*timed_out=*/false);
}
}  // namespace

Result<QueryResult> ExecutePlan(const PhysicalPlan& plan,
                                const ObjectResolver& resolver,
                                ExecContext* ctx) {
  return ExecutePlanImpl(plan, resolver, ctx, /*registry=*/nullptr);
}

Result<QueryResult> ExecutePlanAnalyze(PhysicalPlan* plan,
                                       const ObjectResolver& resolver,
                                       ExecContext* ctx) {
  if (plan == nullptr) return Status::InvalidArgument("null plan");
  OperatorRegistry registry;
  return ExecutePlanImpl(*plan, resolver, ctx, &registry);
}

}  // namespace tabbench
