#include "exec/plan.h"

#include "util/strings.h"

namespace tabbench {

int PlanNode::FindSlot(const SlotRef& slot) const {
  for (size_t i = 0; i < output_cols.size(); ++i) {
    if (output_cols[i] == slot) return static_cast<int>(i);
  }
  return -1;
}

namespace {
const char* KindName(PlanNode::Kind k) {
  switch (k) {
    case PlanNode::Kind::kSeqScan:
      return "SeqScan";
    case PlanNode::Kind::kIndexScan:
      return "IndexScan";
    case PlanNode::Kind::kHashJoin:
      return "HashJoin";
    case PlanNode::Kind::kIndexNLJoin:
      return "IndexNLJoin";
    case PlanNode::Kind::kHashAggregate:
      return "HashAggregate";
    case PlanNode::Kind::kProject:
      return "Project";
  }
  return "?";
}
}  // namespace

std::string PlanNode::ToString(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string out = pad + KindName(kind);
  if (!object.empty()) {
    out += " " + object;
    if (is_view) out += " (view)";
  }
  if (!index_name.empty()) out += " via " + index_name;
  if (index_only) out += " [index-only]";
  if (!seek.empty()) out += StrFormat(" seek#%zu", seek.size());
  if (!residual.empty()) out += StrFormat(" resid#%zu", residual.size());
  if (actual_rows >= 0) {
    out += StrFormat("  (rows=%.1f actual=%lld cost=%.2f)", est_rows,
                     static_cast<long long>(actual_rows), est_cost);
  } else {
    out += StrFormat("  (rows=%.1f cost=%.2f)", est_rows, est_cost);
  }
  out += "\n";
  for (const auto& c : children) out += c->ToString(indent + 1);
  return out;
}

std::string PhysicalPlan::ToString() const {
  std::string out = StrFormat("Plan (est_cost=%.2fs)\n", est_cost);
  if (root != nullptr) out += root->ToString(1);
  for (size_t i = 0; i < in_sets.size(); ++i) {
    out += StrFormat("  InSet[%zu]: %s.%s HAVING COUNT(*) %c %lld\n", i,
                     in_sets[i].table.c_str(), in_sets[i].column.c_str(),
                     in_sets[i].cmp, static_cast<long long>(in_sets[i].k));
  }
  return out;
}

}  // namespace tabbench
