#ifndef TABBENCH_CORE_QUERY_FAMILY_H_
#define TABBENCH_CORE_QUERY_FAMILY_H_

#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "stats/table_stats.h"
#include "types/value.h"

namespace tabbench {

/// One generated query of a family, with the template bindings that
/// produced it (useful for reporting and debugging).
struct FamilyQuery {
  std::string sql;
  std::string binding;  // human-readable "R=taxonomy c1=lineage S=source ..."
};

/// A query family: "sets of queries that contain a large number of
/// structurally related yet suitably diverse queries" (Section 3.2).
struct QueryFamily {
  std::string name;
  std::vector<FamilyQuery> queries;

  std::vector<std::string> Sql() const {
    std::vector<std::string> out;
    out.reserve(queries.size());
    for (const auto& q : queries) out.push_back(q.sql);
    return out;
  }
};

/// The paper's selection-constant rule (Section 3.2.2, family NREF3J):
/// "pick three values k1, k2 and k3 ... such that k1 has the highest
/// selectivity ... and the frequencies of k2 and k3 are one and two orders
/// of magnitude greater than the frequency of k1."
struct ConstantTriple {
  Value k1, k2, k3;
  uint64_t f1 = 0, f2 = 0, f3 = 0;
};

/// Picks the triple from collected column statistics; nullopt when the
/// column has no usable frequency spread (e.g. all values unique — the
/// generators then skip the column).
std::optional<ConstantTriple> PickConstants(const ColumnStats& stats);

/// Restrictions the paper applies to keep families tractable
/// (Section 4.1.1): at most `max_columns_per_table` usable columns per
/// table, and fewer selection criteria / group-by columns on tables larger
/// than `large_table_rows`.
struct FamilyRestrictions {
  size_t max_columns_per_table = 4;
  uint64_t large_table_rows = 100000;
  size_t group_sets_small = 2;  // group-by variants on small tables
  size_t group_sets_large = 1;  // ... and on large tables
};

/// Usable (indexable, domain-tagged) columns of `table`, capped per the
/// restrictions.
std::vector<std::string> UsableColumns(const Catalog& catalog,
                                       const DatabaseStats& stats,
                                       const std::string& table,
                                       const FamilyRestrictions& r);

/// Group-by column sets over `columns`, excluding `exclude`; the number of
/// variants depends on the table's size per the restrictions.
std::vector<std::vector<std::string>> GroupSets(
    const std::vector<std::string>& columns, const std::string& exclude,
    size_t num_sets, size_t max_width);

/// Expected matches per probing row for an equi-join into a column with
/// statistics `col`, assuming the probing values follow a similar
/// distribution (true by construction of the generators):
/// |T| * sum_v p(v)^2, from MCVs plus a uniform remainder.
double EstimateJoinFanout(const ColumnStats& col);

/// The paper's design criterion "queries should not require the
/// materialization of large intermediate results" (Section 3.2.2), as a
/// generator-side cap on estimated intermediate rows (scaled units).
inline constexpr double kMaxIntermediateRows = 500000.0;

}  // namespace tabbench

#endif  // TABBENCH_CORE_QUERY_FAMILY_H_
