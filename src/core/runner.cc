#include "core/runner.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>

#include "util/fault_injection.h"
#include "util/run_journal.h"

namespace tabbench {

namespace {

/// Drops a fault latched after an attempt's last safe point so it cannot
/// leak into the next attempt or repetition. The serial runner, the
/// parallel record phase, and the service retry loop all call this at the
/// same attempt boundaries, keeping their fault schedules aligned.
void DropStaleLatchedFault() {
  if (FaultInjectionArmed()) (void)FaultRegistry::TakePending();
}

/// What one worker records for one query: every attempt of its retry loop.
/// Slots are preallocated per batch, so workers write disjoint memory and
/// the batch joins race-free.
struct RecordedAttempt {
  AccessTrace trace;
  Status status;          // OK, or the attempt's error
  bool timed_out = false; // QueryResult::timed_out when status is OK
};

struct RecordedQuery {
  std::vector<RecordedAttempt> attempts;
  Status spawn_status;  // ParallelFor rejection / pre-spawn cancellation
  double estimate = 0.0;
  Status est_status;
};

/// A borrowed view of one recorded execution attempt — from the parallel
/// record phase (RecordedAttempt) or a journal record (JournalAttempt).
struct AttemptView {
  const AccessTrace* trace;
  Status status;
  bool timed_out;
};

/// The serial runner's per-query decisions, recomputed from attempt traces.
struct QueryReplayOutcome {
  QueryTiming timing;
  size_t attempts_consumed = 0;  // executions the serial walk performed
  size_t retries = 0;
  bool failed = false;
  Status failure_status;
};

/// Walks one query's recorded attempts through `pool` in workload position,
/// making exactly the decisions RunWorkload's live loop makes: the same
/// retry choices on the recorded statuses, the same cumulative clock
/// (ReplayTrace's start_seconds re-applies the backoff charges), the same
/// repetition averaging and single-run rule for timeouts, the same final
/// pool state. Both the parallel runner's replay phase and journal resume
/// are this walk — which is what makes a journal written by either runner
/// resumable by either runner, bit-identically.
///
/// When the replay trips a timeout mid-attempt, the serial run stopped
/// there too, and any further recorded attempts are discarded
/// (attempts_consumed tells the caller how many were used). Returns non-OK
/// only for a recorded cancellation, which aborts the whole run.
Result<QueryReplayOutcome> ReplayQueryAttempts(
    const std::vector<AttemptView>& attempts, BufferPool* pool,
    const CostParams& cost, const RetryPolicy& retry, int repetitions) {
  const double timeout = cost.timeout_seconds;
  QueryReplayOutcome out;
  double total = 0.0;
  int runs = 0;
  double start = 0.0;
  size_t final_attempt = 0;
  bool succeeded = false;
  for (size_t a = 0; a < attempts.size(); ++a) {
    const AttemptView& att = attempts[a];
    out.attempts_consumed = a + 1;
    if (att.status.IsCancelled()) return att.status;
    ReplayOutcome ro = ReplayTrace(*att.trace, pool, cost, start);
    if (ro.timed_out) {
      out.timing.timed_out = true;
      out.timing.seconds = timeout;
      break;
    }
    if (att.status.ok()) {
      if (att.timed_out) {
        // An injected-timeout attempt: a genuinely doomed query trips in
        // the replay above instead. Censored like any timeout.
        out.timing.timed_out = true;
        out.timing.seconds = timeout;
      } else {
        total += ro.sim_seconds;
        ++runs;
        final_attempt = a;
        succeeded = true;
      }
      break;
    }
    if (retry.ShouldRetry(att.status, static_cast<int>(a) + 1)) {
      start = ro.sim_seconds + retry.BackoffSeconds(static_cast<int>(a) + 1);
      ++out.retries;
      continue;
    }
    out.timing.timed_out = true;
    out.timing.failed = true;
    out.timing.seconds = timeout;
    out.failed = true;
    out.failure_status = att.status;
    break;
  }

  // Extra repetitions (warm-cache averaging) replay the final successful
  // attempt's trace from a zero clock — the trace is pool-independent, so
  // one recording serves every repetition.
  if (succeeded) {
    for (int rep = 1; rep < std::max(1, repetitions); ++rep) {
      ReplayOutcome ro =
          ReplayTrace(*attempts[final_attempt].trace, pool, cost, 0.0);
      if (ro.timed_out) {
        out.timing.timed_out = true;
        out.timing.seconds = timeout;
        break;
      }
      total += ro.sim_seconds;
      ++runs;
    }
  }

  if (!out.timing.timed_out) {
    out.timing.seconds = runs > 0 ? total / runs : 0.0;
  }
  return out;
}

/// Folds one replayed query into the workload result, mirroring the serial
/// loop's counter updates.
void FoldIntoResult(const QueryReplayOutcome& rq, size_t query_index,
                    double timeout, WorkloadResult* out) {
  out->retries += rq.retries;
  if (rq.failed) {
    ++out->failures;
    out->failure_details.push_back(QueryFailure{
        query_index, static_cast<int>(rq.attempts_consumed),
        rq.failure_status});
  }
  if (rq.timing.timed_out) ++out->timeouts;
  out->total_clamped_seconds += std::min(rq.timing.seconds, timeout);
  out->timings.push_back(rq.timing);
}

// ------------------------------------------------------------ journal glue

/// Exact (bitwise) double equality: resume promises bit-identity, so the
/// compatibility and cross checks must not accept "close enough".
bool BitEqual(double a, double b) {
  uint64_t ab, bb;
  std::memcpy(&ab, &a, sizeof(ab));
  std::memcpy(&bb, &b, sizeof(bb));
  return ab == bb;
}

JournalHeader MakeJournalHeader(const std::vector<std::string>& sql,
                                const RunOptions& opts, double timeout) {
  JournalHeader h;
  h.query_count = static_cast<uint32_t>(sql.size());
  h.repetitions = opts.repetitions;
  h.collect_estimates = opts.collect_estimates;
  h.cold_start = opts.cold_start;
  h.fault_scope_salt = opts.fault_scope_salt;
  h.timeout_seconds = timeout;
  h.retry = opts.retry;
  h.sql = sql;
  h.metadata = opts.journal_metadata;
  return h;
}

/// A journal is only resumable under the exact run it was started with: the
/// same workload text and every option that shapes timings, retry decisions
/// or fault schedules. Anything else must be refused loudly — resuming a
/// 3-repetition run as a 1-repetition run would silently fabricate results.
Status CheckJournalCompatible(const JournalHeader& h,
                              const std::vector<std::string>& sql,
                              const RunOptions& opts, double timeout) {
  auto mismatch = [](const std::string& what) {
    return Status::InvalidArgument(
        "journal was written under different run options (" + what +
        "); resume with the original options or start a fresh journal");
  };
  if (h.sql != sql) return mismatch("workload SQL");
  if (h.query_count != sql.size()) return mismatch("query count");
  if (h.repetitions != opts.repetitions) return mismatch("repetitions");
  if (h.collect_estimates != opts.collect_estimates) {
    return mismatch("collect_estimates");
  }
  if (h.cold_start != opts.cold_start) return mismatch("cold_start");
  if (h.fault_scope_salt != opts.fault_scope_salt) {
    return mismatch("fault_scope_salt");
  }
  if (!BitEqual(h.timeout_seconds, timeout)) return mismatch("timeout");
  const RetryPolicy& a = h.retry;
  const RetryPolicy& b = opts.retry;
  if (a.max_attempts != b.max_attempts || a.seed != b.seed ||
      !BitEqual(a.initial_backoff_seconds, b.initial_backoff_seconds) ||
      !BitEqual(a.backoff_multiplier, b.backoff_multiplier) ||
      !BitEqual(a.max_backoff_seconds, b.max_backoff_seconds) ||
      !BitEqual(a.jitter_fraction, b.jitter_fraction)) {
    return mismatch("retry policy");
  }
  return Status::OK();
}

/// Replays a loaded journal's completed prefix through the shared pool,
/// folding the recomputed outcomes into `out`. Every record is
/// cross-checked against what its traces actually replay to — timing bits,
/// flags, attempt count, and the pool's hit/miss movement — so a journal
/// replayed against the wrong database, configuration, or initial pool
/// state fails with kDataLoss instead of silently poisoning the run.
Status ReplayJournalPrefix(const RunJournal& j, Database* db,
                           const CostParams& cost, const RunOptions& opts,
                           WorkloadResult* out) {
  const double timeout = cost.timeout_seconds;
  for (size_t i = 0; i < j.records.size(); ++i) {
    const JournalQueryRecord& rec = j.records[i];
    auto corrupt = [&](const std::string& what) {
      return Status::DataLoss("journal record " + std::to_string(i) + " " +
                              what + "; the journal does not match this "
                              "database/configuration or is corrupted");
    };
    if (rec.query_index != i) return corrupt("is out of order");
    if (rec.attempt_log.empty()) return corrupt("has no attempts");
    std::vector<AttemptView> views;
    views.reserve(rec.attempt_log.size());
    for (const auto& a : rec.attempt_log) {
      views.push_back(
          {&a.trace, Status::FromCode(a.code, a.message), a.timed_out});
    }
    BufferPoolStats before = db->buffer_pool()->stats();
    auto rq = ReplayQueryAttempts(views, db->buffer_pool(), cost, opts.retry,
                                  opts.repetitions);
    if (!rq.ok()) return rq.status();
    BufferPoolStats after = db->buffer_pool()->stats();
    if (!BitEqual(rq->timing.seconds, rec.seconds) ||
        rq->timing.timed_out != rec.timed_out ||
        rq->timing.failed != rec.failed ||
        rq->attempts_consumed != rec.attempts ||
        after.hits - before.hits != rec.pool_hit_delta ||
        after.misses - before.misses != rec.pool_miss_delta) {
      return corrupt("does not replay to its recorded outcome");
    }
    FoldIntoResult(*rq, i, timeout, out);
    if (opts.collect_estimates) {
      if (!rec.has_estimate) return corrupt("is missing its estimate");
      out->estimates.push_back(rec.estimate);
    }
  }
  return Status::OK();
}

/// Opens the run's journal: fresh (header written and synced) or, with
/// opts.resume and an existing file, loaded + validated + replayed into
/// `out`, positioned to append. `start_index` is the first query left to
/// execute live.
Status OpenRunJournal(Database* db, const std::vector<std::string>& sql,
                      const RunOptions& opts, const CostParams& cost,
                      WorkloadResult* out,
                      std::unique_ptr<RunJournalWriter>* journal,
                      size_t* start_index) {
  *start_index = 0;
  if (opts.resume && std::filesystem::exists(opts.journal_path)) {
    TB_ASSIGN_OR_RETURN(RunJournal loaded, LoadRunJournal(opts.journal_path));
    TB_RETURN_IF_ERROR(CheckJournalCompatible(loaded.header, sql, opts,
                                              cost.timeout_seconds));
    if (loaded.records.size() > sql.size()) {
      return Status::DataLoss("journal holds more records than the workload "
                              "has queries: " + opts.journal_path);
    }
    TB_RETURN_IF_ERROR(ReplayJournalPrefix(loaded, db, cost, opts, out));
    *start_index = loaded.records.size();
    TB_ASSIGN_OR_RETURN(*journal, RunJournalWriter::OpenAppend(
                                      opts.journal_path, loaded));
    return Status::OK();
  }
  TB_ASSIGN_OR_RETURN(
      *journal,
      RunJournalWriter::Create(opts.journal_path,
                               MakeJournalHeader(sql, opts,
                                                 cost.timeout_seconds)));
  return Status::OK();
}

/// Runs one query on the engine RunOptions selects. The two engines are
/// bit-identical in simulated cost and result, so every caller treats the
/// choice as opaque.
Result<QueryResult> RunQueryWithOptions(Database* db, const std::string& q,
                                        ExecContext* ctx,
                                        const RunOptions& opts) {
  if (opts.executor == QueryExecutor::kVectorized) {
    vec::VecExecOptions vopts;
    vopts.pool = opts.intra_query_pool;
    vopts.max_parallelism = opts.intra_query_parallelism;
    return db->RunWithContextVectorized(q, ctx, vopts);
  }
  return db->RunWithContext(q, ctx);
}

}  // namespace

Result<WorkloadResult> RunWorkload(Database* db,
                                   const std::vector<std::string>& sql,
                                   const RunOptions& opts) {
  WorkloadResult out;
  if (opts.cold_start) db->buffer_pool()->Clear();
  const CostParams cost = db->options().cost;
  const double timeout = cost.timeout_seconds;

  std::unique_ptr<RunJournalWriter> journal;
  size_t start_index = 0;
  if (!opts.journal_path.empty()) {
    TB_RETURN_IF_ERROR(
        OpenRunJournal(db, sql, opts, cost, &out, &journal, &start_index));
  }

  for (size_t k = start_index; k < sql.size(); ++k) {
    const std::string& q = sql[k];
    // Fault decisions are pure functions of (spec, per-scope hit index,
    // scope seed); seeding by query index gives query k the same injected
    // schedule here, in RunWorkloadParallel's record workers, and in a
    // resumed run (which skips the journaled prefix without consuming any
    // fault schedule — scopes are per-query, not shared).
    FaultScope scope(opts.fault_scope_salt + k);
    QueryTiming timing;
    double total = 0.0;
    int runs = 0;
    int attempt = 1;
    JournalQueryRecord rec;  // only filled when journaling
    const BufferPoolStats pool_before = db->buffer_pool()->stats();

    // The first repetition carries the retry loop on one cumulative
    // context: failed attempts and backoff delays stay on the query's
    // simulated clock, so a retried query pays for its retries in the CFC
    // and the timeout bounds the whole loop, not each attempt.
    ExecContext ctx = db->MakeSessionContext(db->buffer_pool(), cost);
    for (;;) {
      JournalAttempt* att = nullptr;
      if (journal != nullptr) {
        // Trace this attempt so the journal can replay it on resume.
        // Recording changes no charge and no timing (see ExecContext).
        rec.attempt_log.emplace_back();
        att = &rec.attempt_log.back();
        ctx.set_trace(&att->trace);
      }
      auto res = RunQueryWithOptions(db, q, &ctx, opts);
      ctx.set_trace(nullptr);
      DropStaleLatchedFault();
      if (res.ok()) {
        if (att != nullptr) att->timed_out = res->timed_out;
        if (res->timed_out) {
          // Timeout queries are run once (paper Section 4.1).
          timing.timed_out = true;
          timing.seconds = timeout;
        } else {
          total += res->sim_seconds;
          ++runs;
        }
        break;
      }
      Status st = res.status();
      if (st.IsCancelled()) return st;
      if (att != nullptr) {
        att->code = st.code();
        att->message = st.message();
      }
      if (opts.retry.ShouldRetry(st, attempt)) {
        ctx.ChargeBackoff(opts.retry.BackoffSeconds(attempt));
        ++attempt;
        ++out.retries;
        continue;
      }
      // Retries exhausted (or the error is not retryable): isolate the
      // query, censored at the timeout cost exactly like a timed-out query
      // — the run keeps going, mirroring how the paper keeps scoring an
      // advisor that "fails outright" (Section 5).
      timing.timed_out = true;
      timing.failed = true;
      timing.seconds = timeout;
      ++out.failures;
      out.failure_details.push_back(QueryFailure{k, attempt, std::move(st)});
      break;
    }

    // Extra repetitions (warm-cache averaging) re-run a query that already
    // survived its fault schedule; suppression keeps them from re-rolling
    // it — the parallel runner replays the recorded trace for the same
    // reason.
    if (!timing.timed_out) {
      scope.set_suppressed(true);
      for (int rep = 1; rep < std::max(1, opts.repetitions); ++rep) {
        ExecContext rep_ctx = db->MakeSessionContext(db->buffer_pool(), cost);
        auto res = RunQueryWithOptions(db, q, &rep_ctx, opts);
        if (!res.ok()) {
          scope.set_suppressed(false);
          return res.status();
        }
        if (res->timed_out) {
          timing.timed_out = true;
          timing.seconds = timeout;
          break;
        }
        total += res->sim_seconds;
        ++runs;
      }
      scope.set_suppressed(false);
    }

    if (!timing.timed_out) {
      timing.seconds = runs > 0 ? total / runs : 0.0;
    } else {
      ++out.timeouts;
    }
    out.total_clamped_seconds += std::min(timing.seconds, timeout);
    out.timings.push_back(timing);

    if (journal != nullptr) {
      // Pool movement is sampled before estimate collection: planning does
      // not touch the pool, and the resume replay (which uses the journaled
      // estimate instead of re-planning) must see the same delta.
      const BufferPoolStats pool_after = db->buffer_pool()->stats();
      rec.query_index = static_cast<uint32_t>(k);
      rec.seconds = timing.seconds;
      rec.timed_out = timing.timed_out;
      rec.failed = timing.failed;
      rec.attempts = static_cast<uint32_t>(attempt);
      rec.pool_hit_delta = pool_after.hits - pool_before.hits;
      rec.pool_miss_delta = pool_after.misses - pool_before.misses;
    }

    if (opts.collect_estimates) {
      auto est = db->Estimate(q);
      if (!est.ok()) return est.status();
      out.estimates.push_back(*est);
      if (journal != nullptr) {
        rec.has_estimate = true;
        rec.estimate = *est;
      }
    }

    // The durability point: once this returns, query k survives any crash.
    if (journal != nullptr) TB_RETURN_IF_ERROR(journal->Append(rec));
  }
  return out;
}

Result<std::vector<double>> EstimateWorkload(
    Database* db, const std::vector<std::string>& sql) {
  std::vector<double> out;
  out.reserve(sql.size());
  for (const auto& q : sql) {
    auto est = db->Estimate(q);
    if (!est.ok()) return est.status();
    out.push_back(*est);
  }
  return out;
}

Result<std::vector<double>> HypotheticalWorkload(
    Database* db, const std::vector<std::string>& sql,
    const Configuration& hypothetical, const HypotheticalRules& rules) {
  std::vector<double> out;
  out.reserve(sql.size());
  for (const auto& q : sql) {
    auto est = db->HypotheticalEstimate(q, hypothetical, rules);
    if (!est.ok()) return est.status();
    out.push_back(*est);
  }
  return out;
}

Result<WorkloadResult> RunWorkloadParallel(Database* db,
                                           const std::vector<std::string>& sql,
                                           const ParallelOptions& par,
                                           const RunOptions& opts) {
  if (par.pool == nullptr) return RunWorkload(db, sql, opts);

  WorkloadResult out;
  if (opts.cold_start) db->buffer_pool()->Clear();
  const CostParams cost = db->options().cost;
  const double timeout = cost.timeout_seconds;
  const int max_attempts = std::max(1, opts.retry.max_attempts);

  std::unique_ptr<RunJournalWriter> journal;
  size_t start_index = 0;
  if (!opts.journal_path.empty()) {
    TB_RETURN_IF_ERROR(
        OpenRunJournal(db, sql, opts, cost, &out, &journal, &start_index));
  }

  size_t window = par.window;
  if (window == 0) {
    window = std::max<size_t>(4 * par.pool->num_workers(), size_t{8});
  }

  // Recording runs on a cold pool, so a doomed query need not execute to
  // completion: a replay from any warm pool saves at most one first-touch
  // hit per resident page *per attempt* versus the cold recording run, so
  // once the cold cumulative clock is this far past the timeout, every
  // replay is guaranteed to trip inside the recorded prefix.
  const double record_budget =
      timeout + static_cast<double>(max_attempts) *
                    static_cast<double>(db->options().buffer_pool_pages) *
                    std::max(cost.page_io_seconds, cost.random_io_seconds);

  double record_ms = 0.0, replay_ms = 0.0;
  uint64_t trace_events = 0;
  const bool phase_timing = std::getenv("TABBENCH_PHASE_TIMING") != nullptr;

  // Batched so at most `window` queries' full traces are alive at once.
  for (size_t base = start_index; base < sql.size(); base += window) {
    const size_t count = std::min(window, sql.size() - base);
    std::vector<RecordedQuery> rec(count);

    // Record phase (parallel): every query runs its whole retry loop
    // against a private cold pool with the timeout off, capturing one
    // charge trace per attempt. Traces are pool-independent, so one
    // recording serves the replay and all repetitions.
    auto t0 = std::chrono::steady_clock::now();
    ParallelFor(
        par.pool, count,
        [&](size_t i) {
          RecordedQuery& r = rec[i];
          const std::string& q = sql[base + i];
          if (par.cancel.cancelled()) {
            r.spawn_status = Status::Cancelled("workload cancelled");
            return;
          }
          // Same scope seed the serial runner gives this query, so the
          // worker sees the exact fault schedule a serial run would.
          FaultScope scope(opts.fault_scope_salt + base + i);
          BufferPool session_pool(db->options().buffer_pool_pages);
          ExecContext ctx = db->MakeSessionContext(&session_pool, cost);
          ctx.set_cancellation_token(par.cancel);
          ctx.set_enforce_timeout(false);
          ctx.set_record_budget(record_budget);
          for (int attempt = 1;; ++attempt) {
            r.attempts.emplace_back();
            RecordedAttempt& att = r.attempts.back();
            ctx.set_trace(&att.trace);
            auto res = RunQueryWithOptions(db, q, &ctx, opts);
            ctx.set_trace(nullptr);
            DropStaleLatchedFault();
            if (res.ok()) {
              att.timed_out = res->timed_out;
              break;
            }
            att.status = res.status();
            if (!opts.retry.ShouldRetry(att.status, attempt)) break;
            ctx.ChargeBackoff(opts.retry.BackoffSeconds(attempt));
          }
          if (opts.collect_estimates) {
            auto est = db->Estimate(q);
            if (est.ok()) {
              r.estimate = *est;
            } else {
              r.est_status = est.status();
            }
          }
        },
        [&](size_t i, Status s) { rec[i].spawn_status = std::move(s); });
    auto t1 = std::chrono::steady_clock::now();
    record_ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
    for (const auto& r : rec) {
      for (const auto& att : r.attempts) trace_events += att.trace.size();
    }

    // Replay phase (sequential): walk each query's attempts in workload
    // order through the shared pool via the shared replay walk (the same
    // one journal resume uses), then journal the consumed attempts.
    for (size_t i = 0; i < count; ++i) {
      RecordedQuery& r = rec[i];
      if (!r.spawn_status.ok()) return r.spawn_status;
      std::vector<AttemptView> views;
      views.reserve(r.attempts.size());
      for (const auto& att : r.attempts) {
        views.push_back({&att.trace, att.status, att.timed_out});
      }
      const BufferPoolStats pool_before = db->buffer_pool()->stats();
      auto rq = ReplayQueryAttempts(views, db->buffer_pool(), cost,
                                    opts.retry, opts.repetitions);
      if (!rq.ok()) return rq.status();
      FoldIntoResult(*rq, base + i, timeout, &out);

      if (opts.collect_estimates) {
        if (!r.est_status.ok()) return r.est_status;
        out.estimates.push_back(r.estimate);
      }

      if (journal != nullptr) {
        const BufferPoolStats pool_after = db->buffer_pool()->stats();
        JournalQueryRecord jrec;
        jrec.query_index = static_cast<uint32_t>(base + i);
        jrec.seconds = rq->timing.seconds;
        jrec.timed_out = rq->timing.timed_out;
        jrec.failed = rq->timing.failed;
        jrec.attempts = static_cast<uint32_t>(rq->attempts_consumed);
        jrec.has_estimate = opts.collect_estimates;
        jrec.estimate = opts.collect_estimates ? r.estimate : 0.0;
        jrec.pool_hit_delta = pool_after.hits - pool_before.hits;
        jrec.pool_miss_delta = pool_after.misses - pool_before.misses;
        // Only the attempts the serial walk consumed: anything recorded
        // past a timeout trip never happened in serial semantics.
        jrec.attempt_log.reserve(rq->attempts_consumed);
        for (size_t a = 0; a < rq->attempts_consumed; ++a) {
          RecordedAttempt& att = r.attempts[a];
          JournalAttempt ja;
          ja.code = att.status.code();
          ja.message = att.status.message();
          ja.timed_out = att.timed_out;
          ja.trace = std::move(att.trace);  // batch slot is done with it
          jrec.attempt_log.push_back(std::move(ja));
        }
        TB_RETURN_IF_ERROR(journal->Append(jrec));
      }
    }
    auto t2 = std::chrono::steady_clock::now();
    replay_ms += std::chrono::duration<double, std::milli>(t2 - t1).count();
  }
  if (phase_timing) {
    std::fprintf(stderr,
                 "[phase] record %.1f ms, replay %.1f ms, %llu events\n",
                 record_ms, replay_ms,
                 static_cast<unsigned long long>(trace_events));
  }
  return out;
}

Result<std::vector<double>> EstimateWorkloadParallel(
    Database* db, const std::vector<std::string>& sql,
    const ParallelOptions& par) {
  if (par.pool == nullptr) return EstimateWorkload(db, sql);
  std::vector<double> ests(sql.size(), 0.0);
  std::vector<Status> sts(sql.size());
  ParallelFor(
      par.pool, sql.size(),
      [&](size_t i) {
        if (par.cancel.cancelled()) {
          sts[i] = Status::Cancelled("workload cancelled");
          return;
        }
        auto est = db->Estimate(sql[i]);
        if (est.ok()) {
          ests[i] = *est;
        } else {
          sts[i] = est.status();
        }
      },
      [&](size_t i, Status s) { sts[i] = std::move(s); });
  for (size_t i = 0; i < sql.size(); ++i) {
    if (!sts[i].ok()) return sts[i];  // first error in workload order
  }
  return ests;
}

Result<std::vector<double>> HypotheticalWorkloadParallel(
    Database* db, const std::vector<std::string>& sql,
    const Configuration& hypothetical, const HypotheticalRules& rules,
    const ParallelOptions& par) {
  if (par.pool == nullptr) {
    return HypotheticalWorkload(db, sql, hypothetical, rules);
  }
  std::vector<double> ests(sql.size(), 0.0);
  std::vector<Status> sts(sql.size());
  ParallelFor(
      par.pool, sql.size(),
      [&](size_t i) {
        if (par.cancel.cancelled()) {
          sts[i] = Status::Cancelled("workload cancelled");
          return;
        }
        auto est = db->HypotheticalEstimate(sql[i], hypothetical, rules);
        if (est.ok()) {
          ests[i] = *est;
        } else {
          sts[i] = est.status();
        }
      },
      [&](size_t i, Status s) { sts[i] = std::move(s); });
  for (size_t i = 0; i < sql.size(); ++i) {
    if (!sts[i].ok()) return sts[i];
  }
  return ests;
}

}  // namespace tabbench
