#include "core/runner.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "util/fault_injection.h"

namespace tabbench {

namespace {

/// Drops a fault latched after an attempt's last safe point so it cannot
/// leak into the next attempt or repetition. The serial runner, the
/// parallel record phase, and the service retry loop all call this at the
/// same attempt boundaries, keeping their fault schedules aligned.
void DropStaleLatchedFault() {
  if (FaultInjectionArmed()) (void)FaultRegistry::TakePending();
}

/// What one worker records for one query: every attempt of its retry loop.
/// Slots are preallocated per batch, so workers write disjoint memory and
/// the batch joins race-free.
struct RecordedAttempt {
  AccessTrace trace;
  Status status;          // OK, or the attempt's error
  bool timed_out = false; // QueryResult::timed_out when status is OK
};

struct RecordedQuery {
  std::vector<RecordedAttempt> attempts;
  Status spawn_status;  // ParallelFor rejection / pre-spawn cancellation
  double estimate = 0.0;
  Status est_status;
};

}  // namespace

Result<WorkloadResult> RunWorkload(Database* db,
                                   const std::vector<std::string>& sql,
                                   const RunOptions& opts) {
  WorkloadResult out;
  if (opts.cold_start) db->buffer_pool()->Clear();
  const CostParams cost = db->options().cost;
  const double timeout = cost.timeout_seconds;

  for (size_t k = 0; k < sql.size(); ++k) {
    const std::string& q = sql[k];
    // Fault decisions are pure functions of (spec, per-scope hit index,
    // scope seed); seeding by query index gives query k the same injected
    // schedule here and in RunWorkloadParallel's record workers.
    FaultScope scope(opts.fault_scope_salt + k);
    QueryTiming timing;
    double total = 0.0;
    int runs = 0;
    int attempt = 1;

    // The first repetition carries the retry loop on one cumulative
    // context: failed attempts and backoff delays stay on the query's
    // simulated clock, so a retried query pays for its retries in the CFC
    // and the timeout bounds the whole loop, not each attempt.
    ExecContext ctx = db->MakeSessionContext(db->buffer_pool(), cost);
    for (;;) {
      auto res = db->RunWithContext(q, &ctx);
      DropStaleLatchedFault();
      if (res.ok()) {
        if (res->timed_out) {
          // Timeout queries are run once (paper Section 4.1).
          timing.timed_out = true;
          timing.seconds = timeout;
        } else {
          total += res->sim_seconds;
          ++runs;
        }
        break;
      }
      Status st = res.status();
      if (st.IsCancelled()) return st;
      if (opts.retry.ShouldRetry(st, attempt)) {
        ctx.ChargeBackoff(opts.retry.BackoffSeconds(attempt));
        ++attempt;
        ++out.retries;
        continue;
      }
      // Retries exhausted (or the error is not retryable): isolate the
      // query, censored at the timeout cost exactly like a timed-out query
      // — the run keeps going, mirroring how the paper keeps scoring an
      // advisor that "fails outright" (Section 5).
      timing.timed_out = true;
      timing.failed = true;
      timing.seconds = timeout;
      ++out.failures;
      out.failure_details.push_back(QueryFailure{k, attempt, std::move(st)});
      break;
    }

    // Extra repetitions (warm-cache averaging) re-run a query that already
    // survived its fault schedule; suppression keeps them from re-rolling
    // it — the parallel runner replays the recorded trace for the same
    // reason.
    if (!timing.timed_out) {
      scope.set_suppressed(true);
      for (int rep = 1; rep < std::max(1, opts.repetitions); ++rep) {
        ExecContext rep_ctx = db->MakeSessionContext(db->buffer_pool(), cost);
        auto res = db->RunWithContext(q, &rep_ctx);
        if (!res.ok()) {
          scope.set_suppressed(false);
          return res.status();
        }
        if (res->timed_out) {
          timing.timed_out = true;
          timing.seconds = timeout;
          break;
        }
        total += res->sim_seconds;
        ++runs;
      }
      scope.set_suppressed(false);
    }

    if (!timing.timed_out) {
      timing.seconds = runs > 0 ? total / runs : 0.0;
    } else {
      ++out.timeouts;
    }
    out.total_clamped_seconds += std::min(timing.seconds, timeout);
    out.timings.push_back(timing);

    if (opts.collect_estimates) {
      auto est = db->Estimate(q);
      if (!est.ok()) return est.status();
      out.estimates.push_back(*est);
    }
  }
  return out;
}

Result<std::vector<double>> EstimateWorkload(
    Database* db, const std::vector<std::string>& sql) {
  std::vector<double> out;
  out.reserve(sql.size());
  for (const auto& q : sql) {
    auto est = db->Estimate(q);
    if (!est.ok()) return est.status();
    out.push_back(*est);
  }
  return out;
}

Result<std::vector<double>> HypotheticalWorkload(
    Database* db, const std::vector<std::string>& sql,
    const Configuration& hypothetical, const HypotheticalRules& rules) {
  std::vector<double> out;
  out.reserve(sql.size());
  for (const auto& q : sql) {
    auto est = db->HypotheticalEstimate(q, hypothetical, rules);
    if (!est.ok()) return est.status();
    out.push_back(*est);
  }
  return out;
}

Result<WorkloadResult> RunWorkloadParallel(Database* db,
                                           const std::vector<std::string>& sql,
                                           const ParallelOptions& par,
                                           const RunOptions& opts) {
  if (par.pool == nullptr) return RunWorkload(db, sql, opts);

  WorkloadResult out;
  if (opts.cold_start) db->buffer_pool()->Clear();
  const CostParams cost = db->options().cost;
  const double timeout = cost.timeout_seconds;
  const int max_attempts = std::max(1, opts.retry.max_attempts);

  size_t window = par.window;
  if (window == 0) {
    window = std::max<size_t>(4 * par.pool->num_workers(), size_t{8});
  }

  // Recording runs on a cold pool, so a doomed query need not execute to
  // completion: a replay from any warm pool saves at most one first-touch
  // hit per resident page *per attempt* versus the cold recording run, so
  // once the cold cumulative clock is this far past the timeout, every
  // replay is guaranteed to trip inside the recorded prefix.
  const double record_budget =
      timeout + static_cast<double>(max_attempts) *
                    static_cast<double>(db->options().buffer_pool_pages) *
                    std::max(cost.page_io_seconds, cost.random_io_seconds);

  double record_ms = 0.0, replay_ms = 0.0;
  uint64_t trace_events = 0;
  const bool phase_timing = std::getenv("TABBENCH_PHASE_TIMING") != nullptr;

  // Batched so at most `window` queries' full traces are alive at once.
  for (size_t base = 0; base < sql.size(); base += window) {
    const size_t count = std::min(window, sql.size() - base);
    std::vector<RecordedQuery> rec(count);

    // Record phase (parallel): every query runs its whole retry loop
    // against a private cold pool with the timeout off, capturing one
    // charge trace per attempt. Traces are pool-independent, so one
    // recording serves the replay and all repetitions.
    auto t0 = std::chrono::steady_clock::now();
    ParallelFor(
        par.pool, count,
        [&](size_t i) {
          RecordedQuery& r = rec[i];
          const std::string& q = sql[base + i];
          if (par.cancel.cancelled()) {
            r.spawn_status = Status::Cancelled("workload cancelled");
            return;
          }
          // Same scope seed the serial runner gives this query, so the
          // worker sees the exact fault schedule a serial run would.
          FaultScope scope(opts.fault_scope_salt + base + i);
          BufferPool session_pool(db->options().buffer_pool_pages);
          ExecContext ctx = db->MakeSessionContext(&session_pool, cost);
          ctx.set_cancellation_token(par.cancel);
          ctx.set_enforce_timeout(false);
          ctx.set_record_budget(record_budget);
          for (int attempt = 1;; ++attempt) {
            r.attempts.emplace_back();
            RecordedAttempt& att = r.attempts.back();
            ctx.set_trace(&att.trace);
            auto res = db->RunWithContext(q, &ctx);
            ctx.set_trace(nullptr);
            DropStaleLatchedFault();
            if (res.ok()) {
              att.timed_out = res->timed_out;
              break;
            }
            att.status = res.status();
            if (!opts.retry.ShouldRetry(att.status, attempt)) break;
            ctx.ChargeBackoff(opts.retry.BackoffSeconds(attempt));
          }
          if (opts.collect_estimates) {
            auto est = db->Estimate(q);
            if (est.ok()) {
              r.estimate = *est;
            } else {
              r.est_status = est.status();
            }
          }
        },
        [&](size_t i, Status s) { rec[i].spawn_status = std::move(s); });
    auto t1 = std::chrono::steady_clock::now();
    record_ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
    for (const auto& r : rec) {
      for (const auto& att : r.attempts) trace_events += att.trace.size();
    }

    // Replay phase (sequential): walk each query's attempts in workload
    // order through the shared pool, mirroring RunWorkload's loop exactly —
    // same retry decisions on the recorded statuses, same cumulative clock
    // (ReplayTrace's start_seconds re-applies the backoff charges), same
    // repetition averaging and single-run rule for timeouts, same final
    // pool state. All counters derive from this walk, never from record
    // counts: when the replay trips a timeout mid-attempt, the serial run
    // stopped there too, and any further recorded attempts are discarded.
    for (size_t i = 0; i < count; ++i) {
      RecordedQuery& r = rec[i];
      if (!r.spawn_status.ok()) return r.spawn_status;
      QueryTiming timing;
      double total = 0.0;
      int runs = 0;
      double start = 0.0;
      size_t final_attempt = 0;
      bool succeeded = false;
      for (size_t a = 0; a < r.attempts.size(); ++a) {
        const RecordedAttempt& att = r.attempts[a];
        if (att.status.IsCancelled()) return att.status;
        ReplayOutcome ro =
            ReplayTrace(att.trace, db->buffer_pool(), cost, start);
        if (ro.timed_out) {
          timing.timed_out = true;
          timing.seconds = timeout;
          break;
        }
        if (att.status.ok()) {
          if (att.timed_out) {
            // An injected-timeout attempt: a genuinely doomed query trips
            // in the replay above instead. Censored like any timeout.
            timing.timed_out = true;
            timing.seconds = timeout;
          } else {
            total += ro.sim_seconds;
            ++runs;
            final_attempt = a;
            succeeded = true;
          }
          break;
        }
        if (opts.retry.ShouldRetry(att.status, static_cast<int>(a) + 1)) {
          start = ro.sim_seconds +
                  opts.retry.BackoffSeconds(static_cast<int>(a) + 1);
          ++out.retries;
          continue;
        }
        timing.timed_out = true;
        timing.failed = true;
        timing.seconds = timeout;
        ++out.failures;
        out.failure_details.push_back(
            QueryFailure{base + i, static_cast<int>(a) + 1, att.status});
        break;
      }

      if (succeeded) {
        for (int rep = 1; rep < std::max(1, opts.repetitions); ++rep) {
          ReplayOutcome ro = ReplayTrace(r.attempts[final_attempt].trace,
                                         db->buffer_pool(), cost, 0.0);
          if (ro.timed_out) {
            timing.timed_out = true;
            timing.seconds = timeout;
            break;
          }
          total += ro.sim_seconds;
          ++runs;
        }
      }

      if (!timing.timed_out) {
        timing.seconds = runs > 0 ? total / runs : 0.0;
      } else {
        ++out.timeouts;
      }
      out.total_clamped_seconds += std::min(timing.seconds, timeout);
      out.timings.push_back(timing);

      if (opts.collect_estimates) {
        if (!r.est_status.ok()) return r.est_status;
        out.estimates.push_back(r.estimate);
      }
    }
    auto t2 = std::chrono::steady_clock::now();
    replay_ms += std::chrono::duration<double, std::milli>(t2 - t1).count();
  }
  if (phase_timing) {
    std::fprintf(stderr,
                 "[phase] record %.1f ms, replay %.1f ms, %llu events\n",
                 record_ms, replay_ms,
                 static_cast<unsigned long long>(trace_events));
  }
  return out;
}

Result<std::vector<double>> EstimateWorkloadParallel(
    Database* db, const std::vector<std::string>& sql,
    const ParallelOptions& par) {
  if (par.pool == nullptr) return EstimateWorkload(db, sql);
  std::vector<double> ests(sql.size(), 0.0);
  std::vector<Status> sts(sql.size());
  ParallelFor(
      par.pool, sql.size(),
      [&](size_t i) {
        if (par.cancel.cancelled()) {
          sts[i] = Status::Cancelled("workload cancelled");
          return;
        }
        auto est = db->Estimate(sql[i]);
        if (est.ok()) {
          ests[i] = *est;
        } else {
          sts[i] = est.status();
        }
      },
      [&](size_t i, Status s) { sts[i] = std::move(s); });
  for (size_t i = 0; i < sql.size(); ++i) {
    if (!sts[i].ok()) return sts[i];  // first error in workload order
  }
  return ests;
}

Result<std::vector<double>> HypotheticalWorkloadParallel(
    Database* db, const std::vector<std::string>& sql,
    const Configuration& hypothetical, const HypotheticalRules& rules,
    const ParallelOptions& par) {
  if (par.pool == nullptr) {
    return HypotheticalWorkload(db, sql, hypothetical, rules);
  }
  std::vector<double> ests(sql.size(), 0.0);
  std::vector<Status> sts(sql.size());
  ParallelFor(
      par.pool, sql.size(),
      [&](size_t i) {
        if (par.cancel.cancelled()) {
          sts[i] = Status::Cancelled("workload cancelled");
          return;
        }
        auto est = db->HypotheticalEstimate(sql[i], hypothetical, rules);
        if (est.ok()) {
          ests[i] = *est;
        } else {
          sts[i] = est.status();
        }
      },
      [&](size_t i, Status s) { sts[i] = std::move(s); });
  for (size_t i = 0; i < sql.size(); ++i) {
    if (!sts[i].ok()) return sts[i];
  }
  return ests;
}

}  // namespace tabbench
