#include "core/runner.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace tabbench {

namespace {

/// What one worker records for one query. Slots are preallocated per batch,
/// so workers write disjoint memory and the batch joins race-free.
struct RecordedQuery {
  AccessTrace trace;
  Status run_status;
  double estimate = 0.0;
  Status est_status;
};

}  // namespace

Result<WorkloadResult> RunWorkload(Database* db,
                                   const std::vector<std::string>& sql,
                                   const RunOptions& opts) {
  WorkloadResult out;
  if (opts.cold_start) db->buffer_pool()->Clear();
  const double timeout = db->options().cost.timeout_seconds;

  for (const auto& q : sql) {
    QueryTiming timing;
    double total = 0.0;
    int runs = 0;
    for (int rep = 0; rep < std::max(1, opts.repetitions); ++rep) {
      auto res = db->Run(q);
      if (!res.ok()) return res.status();
      if (res->timed_out) {
        // Timeout queries are run once (paper Section 4.1).
        timing.timed_out = true;
        timing.seconds = timeout;
        break;
      }
      total += res->sim_seconds;
      ++runs;
    }
    if (!timing.timed_out) {
      timing.seconds = runs > 0 ? total / runs : 0.0;
    } else {
      ++out.timeouts;
    }
    out.total_clamped_seconds += std::min(timing.seconds, timeout);
    out.timings.push_back(timing);

    if (opts.collect_estimates) {
      auto est = db->Estimate(q);
      if (!est.ok()) return est.status();
      out.estimates.push_back(*est);
    }
  }
  return out;
}

Result<std::vector<double>> EstimateWorkload(
    Database* db, const std::vector<std::string>& sql) {
  std::vector<double> out;
  out.reserve(sql.size());
  for (const auto& q : sql) {
    auto est = db->Estimate(q);
    if (!est.ok()) return est.status();
    out.push_back(*est);
  }
  return out;
}

Result<std::vector<double>> HypotheticalWorkload(
    Database* db, const std::vector<std::string>& sql,
    const Configuration& hypothetical, const HypotheticalRules& rules) {
  std::vector<double> out;
  out.reserve(sql.size());
  for (const auto& q : sql) {
    auto est = db->HypotheticalEstimate(q, hypothetical, rules);
    if (!est.ok()) return est.status();
    out.push_back(*est);
  }
  return out;
}

Result<WorkloadResult> RunWorkloadParallel(Database* db,
                                           const std::vector<std::string>& sql,
                                           const ParallelOptions& par,
                                           const RunOptions& opts) {
  if (par.pool == nullptr) return RunWorkload(db, sql, opts);

  WorkloadResult out;
  if (opts.cold_start) db->buffer_pool()->Clear();
  const CostParams cost = db->options().cost;
  const double timeout = cost.timeout_seconds;

  size_t window = par.window;
  if (window == 0) {
    window = std::max<size_t>(4 * par.pool->num_workers(), size_t{8});
  }

  // Recording runs on a cold pool, so a doomed query need not execute to
  // completion: a replay from any warm pool saves at most one first-touch
  // hit per resident page, so once the cold clock is this far past the
  // timeout, every replay is guaranteed to trip inside the recorded prefix.
  const double record_budget =
      timeout + static_cast<double>(db->options().buffer_pool_pages) *
                    std::max(cost.page_io_seconds, cost.random_io_seconds);

  double record_ms = 0.0, replay_ms = 0.0;
  uint64_t trace_events = 0;
  const bool phase_timing = std::getenv("TABBENCH_PHASE_TIMING") != nullptr;

  // Batched so at most `window` full traces are alive at once.
  for (size_t base = 0; base < sql.size(); base += window) {
    const size_t count = std::min(window, sql.size() - base);
    std::vector<RecordedQuery> rec(count);

    // Record phase (parallel): every query executes against a private cold
    // pool with the timeout off, capturing its full charge trace. The trace
    // is pool-independent, so one recording serves all repetitions.
    auto t0 = std::chrono::steady_clock::now();
    ParallelFor(
        par.pool, count,
        [&](size_t i) {
          RecordedQuery& r = rec[i];
          const std::string& q = sql[base + i];
          if (par.cancel.cancelled()) {
            r.run_status = Status::Cancelled("workload cancelled");
            return;
          }
          BufferPool session_pool(db->options().buffer_pool_pages);
          ExecContext ctx = db->MakeSessionContext(&session_pool, cost);
          ctx.set_cancellation_token(par.cancel);
          ctx.set_enforce_timeout(false);
          ctx.set_record_budget(record_budget);
          ctx.set_trace(&r.trace);
          auto res = db->RunWithContext(q, &ctx);
          if (!res.ok()) r.run_status = res.status();
          if (opts.collect_estimates) {
            auto est = db->Estimate(q);
            if (est.ok()) {
              r.estimate = *est;
            } else {
              r.est_status = est.status();
            }
          }
        },
        [&](size_t i, Status s) { rec[i].run_status = std::move(s); });
    auto t1 = std::chrono::steady_clock::now();
    record_ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
    for (const auto& r : rec) trace_events += r.trace.size();

    // Replay phase (sequential): walk the traces in workload order through
    // the shared pool, mirroring RunWorkload's loop exactly — same
    // repetition averaging, same single-run rule for timeout queries, same
    // first-error-wins ordering, same final pool state.
    for (size_t i = 0; i < count; ++i) {
      RecordedQuery& r = rec[i];
      if (!r.run_status.ok()) return r.run_status;
      QueryTiming timing;
      double total = 0.0;
      int runs = 0;
      for (int rep = 0; rep < std::max(1, opts.repetitions); ++rep) {
        ReplayOutcome ro = ReplayTrace(r.trace, db->buffer_pool(), cost);
        if (ro.timed_out) {
          timing.timed_out = true;
          timing.seconds = timeout;
          break;
        }
        total += ro.sim_seconds;
        ++runs;
      }
      if (!timing.timed_out) {
        timing.seconds = runs > 0 ? total / runs : 0.0;
      } else {
        ++out.timeouts;
      }
      out.total_clamped_seconds += std::min(timing.seconds, timeout);
      out.timings.push_back(timing);

      if (opts.collect_estimates) {
        if (!r.est_status.ok()) return r.est_status;
        out.estimates.push_back(r.estimate);
      }
    }
    auto t2 = std::chrono::steady_clock::now();
    replay_ms += std::chrono::duration<double, std::milli>(t2 - t1).count();
  }
  if (phase_timing) {
    std::fprintf(stderr,
                 "[phase] record %.1f ms, replay %.1f ms, %llu events\n",
                 record_ms, replay_ms,
                 static_cast<unsigned long long>(trace_events));
  }
  return out;
}

Result<std::vector<double>> EstimateWorkloadParallel(
    Database* db, const std::vector<std::string>& sql,
    const ParallelOptions& par) {
  if (par.pool == nullptr) return EstimateWorkload(db, sql);
  std::vector<double> ests(sql.size(), 0.0);
  std::vector<Status> sts(sql.size());
  ParallelFor(
      par.pool, sql.size(),
      [&](size_t i) {
        if (par.cancel.cancelled()) {
          sts[i] = Status::Cancelled("workload cancelled");
          return;
        }
        auto est = db->Estimate(sql[i]);
        if (est.ok()) {
          ests[i] = *est;
        } else {
          sts[i] = est.status();
        }
      },
      [&](size_t i, Status s) { sts[i] = std::move(s); });
  for (size_t i = 0; i < sql.size(); ++i) {
    if (!sts[i].ok()) return sts[i];  // first error in workload order
  }
  return ests;
}

Result<std::vector<double>> HypotheticalWorkloadParallel(
    Database* db, const std::vector<std::string>& sql,
    const Configuration& hypothetical, const HypotheticalRules& rules,
    const ParallelOptions& par) {
  if (par.pool == nullptr) {
    return HypotheticalWorkload(db, sql, hypothetical, rules);
  }
  std::vector<double> ests(sql.size(), 0.0);
  std::vector<Status> sts(sql.size());
  ParallelFor(
      par.pool, sql.size(),
      [&](size_t i) {
        if (par.cancel.cancelled()) {
          sts[i] = Status::Cancelled("workload cancelled");
          return;
        }
        auto est = db->HypotheticalEstimate(sql[i], hypothetical, rules);
        if (est.ok()) {
          ests[i] = *est;
        } else {
          sts[i] = est.status();
        }
      },
      [&](size_t i, Status s) { sts[i] = std::move(s); });
  for (size_t i = 0; i < sql.size(); ++i) {
    if (!sts[i].ok()) return sts[i];
  }
  return ests;
}

}  // namespace tabbench
