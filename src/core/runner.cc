#include "core/runner.h"

#include <algorithm>

namespace tabbench {

Result<WorkloadResult> RunWorkload(Database* db,
                                   const std::vector<std::string>& sql,
                                   const RunOptions& opts) {
  WorkloadResult out;
  if (opts.cold_start) db->buffer_pool()->Clear();
  const double timeout = db->options().cost.timeout_seconds;

  for (const auto& q : sql) {
    QueryTiming timing;
    double total = 0.0;
    int runs = 0;
    for (int rep = 0; rep < std::max(1, opts.repetitions); ++rep) {
      auto res = db->Run(q);
      if (!res.ok()) return res.status();
      if (res->timed_out) {
        // Timeout queries are run once (paper Section 4.1).
        timing.timed_out = true;
        timing.seconds = timeout;
        break;
      }
      total += res->sim_seconds;
      ++runs;
    }
    if (!timing.timed_out) {
      timing.seconds = runs > 0 ? total / runs : 0.0;
    } else {
      ++out.timeouts;
    }
    out.total_clamped_seconds += std::min(timing.seconds, timeout);
    out.timings.push_back(timing);

    if (opts.collect_estimates) {
      auto est = db->Estimate(q);
      if (!est.ok()) return est.status();
      out.estimates.push_back(*est);
    }
  }
  return out;
}

Result<std::vector<double>> EstimateWorkload(
    Database* db, const std::vector<std::string>& sql) {
  std::vector<double> out;
  out.reserve(sql.size());
  for (const auto& q : sql) {
    auto est = db->Estimate(q);
    if (!est.ok()) return est.status();
    out.push_back(*est);
  }
  return out;
}

Result<std::vector<double>> HypotheticalWorkload(
    Database* db, const std::vector<std::string>& sql,
    const Configuration& hypothetical, const HypotheticalRules& rules) {
  std::vector<double> out;
  out.reserve(sql.size());
  for (const auto& q : sql) {
    auto est = db->HypotheticalEstimate(q, hypothetical, rules);
    if (!est.ok()) return est.status();
    out.push_back(*est);
  }
  return out;
}

}  // namespace tabbench
