#ifndef TABBENCH_CORE_GOAL_H_
#define TABBENCH_CORE_GOAL_H_

#include <string>
#include <vector>

#include "core/cfc.h"

namespace tabbench {

/// A performance goal as a monotone step function over elapsed time
/// (Section 2.2, Example 2): G(x) is the fraction of workload queries that
/// must complete in under x seconds. A configuration C satisfies the goal
/// iff CFC_C > G, i.e. the measured curve lies above the goal at every
/// breakpoint.
class PerformanceGoal {
 public:
  struct Step {
    double from_seconds;  // G(x) = fraction for x >= from_seconds
    double fraction;
  };

  PerformanceGoal() = default;
  /// Steps must be increasing in both coordinates.
  static PerformanceGoal FromSteps(std::vector<Step> steps);

  /// The paper's Example 2: 10% under 10s, 50% under 60s, 90% under the
  /// 30-minute timeout.
  static PerformanceGoal PaperExample2();

  /// G(x).
  double At(double x) const;

  /// CFC > G: the curve meets or exceeds the requirement at (just below)
  /// every step boundary.
  bool SatisfiedBy(const CumulativeFrequency& cfc) const;

  /// The largest shortfall CFC(x) - G(x) < 0 over the steps (0 when
  /// satisfied) — a scalar "distance to goal" for goal-driven tuning.
  double Shortfall(const CumulativeFrequency& cfc) const;

  const std::vector<Step>& steps() const { return steps_; }
  std::string ToString() const;

 private:
  std::vector<Step> steps_;
};

/// The paper's improvement ratio IR = A(W, C_i) / A(W, C_j) (Section 2.2).
double ImprovementRatio(double cost_before, double cost_after);

}  // namespace tabbench

#endif  // TABBENCH_CORE_GOAL_H_
