#ifndef TABBENCH_CORE_CFC_H_
#define TABBENCH_CORE_CFC_H_

#include <string>
#include <vector>

namespace tabbench {

/// Elapsed time of one workload query on one configuration.
struct QueryTiming {
  double seconds = 0.0;
  bool timed_out = false;
  /// The query exhausted its retries (or hit a non-retryable error) and was
  /// censored at the timeout cost. `timed_out` is always set alongside, so
  /// CFC censoring needs no new logic; `failed` only annotates why.
  bool failed = false;
};

/// Cumulative (relative) frequency of elapsed times — the paper's central
/// performance characterization (Section 2.2):
///
///   CFC_Cj(x) = count({qk : A(qk, Cj) < x}) / size(W)
///
/// Timed-out queries never count toward CFC(x) for any finite x; they are
/// the gap between the curve's right end and 100%.
class CumulativeFrequency {
 public:
  static CumulativeFrequency FromTimings(const std::vector<QueryTiming>& ts);
  /// From raw values (estimates, improvement ratios, ...).
  static CumulativeFrequency FromValues(const std::vector<double>& values);

  /// Fraction of queries with time < x, in [0, 1].
  double At(double x) const;

  /// Smallest x with CFC(x) >= frac, or +inf when the timeouts make the
  /// curve top out below frac (quantile read-off, e.g. the median).
  double Quantile(double frac) const;

  /// First-order stochastic dominance: this curve is everywhere >= other,
  /// and > somewhere. The paper reads "1C is superior to R and P" off
  /// exactly this relation (Fig. 3).
  bool Dominates(const CumulativeFrequency& other) const;

  size_t total() const { return total_; }
  size_t timeouts() const { return timeouts_; }
  const std::vector<double>& sorted_times() const { return sorted_times_; }

 private:
  std::vector<double> sorted_times_;  // completed queries only
  size_t total_ = 0;
  size_t timeouts_ = 0;
};

/// Log-scale histogram with a trailing `t_out` bin — the presentation of
/// Figures 1 and 2.
struct LogHistogram {
  /// Bin i covers [edges[i], edges[i+1]). counts.size() == edges.size()-1.
  std::vector<double> edges;
  std::vector<uint64_t> counts;
  uint64_t timeouts = 0;
  uint64_t below_range = 0;

  /// Half-decade bins spanning [lo, hi), e.g. lo=1, hi=10000.
  static LogHistogram Build(const std::vector<QueryTiming>& ts, double lo,
                            double hi, int bins_per_decade = 2);
  static LogHistogram FromValues(const std::vector<double>& values, double lo,
                                 double hi, int bins_per_decade = 2);
};

}  // namespace tabbench

#endif  // TABBENCH_CORE_CFC_H_
