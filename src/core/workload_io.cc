#include "core/workload_io.h"

#include <fstream>
#include <sstream>

#include "util/file_util.h"
#include "util/strings.h"

namespace tabbench {

std::string FamilyToString(const QueryFamily& family) {
  std::string out = "# tabbench workload v1\n";
  out += "# family: " + family.name + "\n";
  out += StrFormat("# queries: %zu\n", family.queries.size());
  for (const auto& q : family.queries) {
    if (!q.binding.empty()) out += "-- " + q.binding + "\n";
    out += q.sql + ";\n";
  }
  return out;
}

Result<QueryFamily> FamilyFromString(const std::string& text) {
  QueryFamily family;
  std::istringstream in(text);
  std::string line;
  bool header_seen = false;
  std::string pending_binding;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (StartsWith(line, "#")) {
      if (StartsWith(line, "# tabbench workload")) header_seen = true;
      const std::string kFamily = "# family: ";
      if (StartsWith(line, kFamily)) {
        family.name = line.substr(kFamily.size());
      }
      continue;
    }
    if (StartsWith(line, "-- ")) {
      pending_binding = line.substr(3);
      continue;
    }
    if (line.back() != ';') {
      return Status::InvalidArgument(
          StrFormat("line %zu: query not terminated by ';'", line_no));
    }
    FamilyQuery q;
    q.sql = line.substr(0, line.size() - 1);
    q.binding = pending_binding;
    pending_binding.clear();
    family.queries.push_back(std::move(q));
  }
  if (!header_seen) {
    return Status::InvalidArgument("missing '# tabbench workload' header");
  }
  return family;
}

Status SaveFamily(const QueryFamily& family, const std::string& path) {
  // Atomic (temp + rename): a crash mid-save can't truncate a workload
  // file that later runs would silently load short. The crc32c trailer
  // catches what atomicity can't — bit rot between this save and a load
  // months later.
  return AtomicWriteFile(path, WithCrc32cTrailer(FamilyToString(family)));
}

Result<QueryFamily> LoadFamily(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return Status::NotFound("cannot open " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  TB_ASSIGN_OR_RETURN(std::string body,
                      VerifyCrc32cTrailer(buf.str(), path));
  return FamilyFromString(body);
}

}  // namespace tabbench
