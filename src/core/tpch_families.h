#ifndef TABBENCH_CORE_TPCH_FAMILIES_H_
#define TABBENCH_CORE_TPCH_FAMILIES_H_

#include "core/query_family.h"

namespace tabbench {

/// Family SkTH3J / UnTH3J (Section 3.2.2): three-way joins on the TPC-H
/// schema.
///
///   SELECT t.ci1..ci4, COUNT(*)
///   FROM R r, S s, T t
///   WHERE r.cp = s.cf (PK/FK)  AND s.c1 = t.c2 (non-key, same domain)
///     AND theta(s.c3)
///   GROUP BY t.ci1..ci4
///
/// theta is `s.c3 = p` or
/// `s.c3 IN (SELECT c3 FROM S GROUP BY c3 HAVING COUNT(*) = p)`; three
/// constants per assignment give intermediate-result sizes spanning two
/// orders of magnitude. The same generator serves UnTH3J — the paper uses
/// identical templates on the uniform database with different constants.
QueryFamily GenerateTpch3J(const Catalog& catalog, const DatabaseStats& stats,
                           const std::string& family_name,
                           const FamilyRestrictions& r = {});

/// Family SkTH3Js: the simpler variant — R, S, T restricted to Lineitem,
/// Orders and Partsupp, and theta always of the `s.c3 = p` form.
QueryFamily GenerateTpch3Js(const Catalog& catalog,
                            const DatabaseStats& stats,
                            const FamilyRestrictions& r = {});

}  // namespace tabbench

#endif  // TABBENCH_CORE_TPCH_FAMILIES_H_
