#ifndef TABBENCH_CORE_CONFIGURATIONS_H_
#define TABBENCH_CORE_CONFIGURATIONS_H_

#include "catalog/catalog.h"
#include "catalog/configuration.h"

namespace tabbench {

/// The P configuration: primary-key indexes only — no secondary structures
/// (Section 3.2). Applying it is equivalent to Database::ResetToPrimary().
Configuration MakePConfig();

/// The paper's proposed 1C baseline: P plus one single-column index on
/// every indexable column in the schema (Section 3.2.3). "Our results
/// identify a specific index configuration based on single-column indexes
/// as a very useful baseline for comparisons."
Configuration Make1CConfig(const Catalog& catalog);

}  // namespace tabbench

#endif  // TABBENCH_CORE_CONFIGURATIONS_H_
