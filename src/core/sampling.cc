#include "core/sampling.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace tabbench {

Result<QueryFamily> SampleFamily(const QueryFamily& family, Database* db,
                                 size_t target, uint64_t seed) {
  QueryFamily out;
  out.name = family.name;
  const size_t n = family.queries.size();
  if (n <= target) {
    out.queries = family.queries;
    return out;
  }

  // Estimated cost per query (stratification key).
  std::vector<std::pair<double, size_t>> keyed;
  keyed.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto est = db->Estimate(family.queries[i].sql);
    if (!est.ok()) return est.status();
    keyed.emplace_back(*est, i);
  }
  std::sort(keyed.begin(), keyed.end());

  // Decile strata, proportional allocation, deterministic within-stratum
  // sampling.
  Rng rng(seed);
  const size_t strata = 10;
  std::vector<size_t> picked;
  for (size_t s = 0; s < strata; ++s) {
    size_t lo = s * n / strata;
    size_t hi = (s + 1) * n / strata;
    size_t stratum_size = hi - lo;
    if (stratum_size == 0) continue;
    // Proportional share of the target, with rounding that preserves the
    // total (largest-remainder on the fly).
    size_t want = ((s + 1) * target) / strata - (s * target) / strata;
    want = std::min(want, stratum_size);
    std::vector<size_t> idx =
        rng.SampleWithoutReplacement(stratum_size, want);
    for (size_t k : idx) picked.push_back(keyed[lo + k].second);
  }
  std::sort(picked.begin(), picked.end());
  for (size_t i : picked) out.queries.push_back(family.queries[i]);
  return out;
}

}  // namespace tabbench
