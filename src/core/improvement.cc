#include "core/improvement.h"

#include <algorithm>
#include <cassert>

namespace tabbench {

std::vector<double> ActualImprovementRatios(
    const std::vector<QueryTiming>& in_ci,
    const std::vector<QueryTiming>& in_cj) {
  assert(in_ci.size() == in_cj.size());
  std::vector<double> out;
  for (size_t i = 0; i < in_ci.size(); ++i) {
    if (in_ci[i].timed_out || in_cj[i].timed_out) continue;
    double denom = std::max(in_cj[i].seconds, 1e-9);
    out.push_back(in_ci[i].seconds / denom);
  }
  return out;
}

std::vector<double> EstimatedImprovementRatios(
    const std::vector<double>& in_ci, const std::vector<double>& in_cj) {
  assert(in_ci.size() == in_cj.size());
  std::vector<double> out;
  out.reserve(in_ci.size());
  for (size_t i = 0; i < in_ci.size(); ++i) {
    double denom = std::max(in_cj[i], 1e-9);
    out.push_back(in_ci[i] / denom);
  }
  return out;
}

}  // namespace tabbench
