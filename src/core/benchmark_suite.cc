#include "core/benchmark_suite.h"

#include "core/sampling.h"
#include "optimizer/whatif.h"

namespace tabbench {

FamilyExperiment::FamilyExperiment(Database* db, QueryFamily family,
                                   ExperimentOptions opts)
    : db_(db),
      full_family_(std::move(family)),
      full_size_(full_family_.queries.size()),
      opts_(opts) {}

Status FamilyExperiment::Prepare() {
  if (prepared_) return Status::OK();
  // Sampling stratifies by estimated cost on the *initial* configuration.
  TB_RETURN_IF_ERROR(db_->ResetToPrimary());
  Result<QueryFamily> sampled = SampleFamily(
      full_family_, db_, opts_.workload_size, opts_.sample_seed);
  if (!sampled.ok()) return sampled.status();
  workload_ = sampled.TakeValue();
  prepared_ = true;
  return Status::OK();
}

double FamilyExperiment::SpaceBudgetPages() const {
  Configuration one_c = Make1CConfig(db_->catalog());
  double pages = 0.0;
  for (const auto& idx : one_c.indexes) {
    pages += EstimateIndexPages(idx, db_->catalog(), db_->stats(),
                                /*leaf_fill=*/0.9, /*target_rows=*/-1.0);
  }
  return pages;
}

Result<Recommendation> FamilyExperiment::Recommend(AdvisorOptions profile) {
  TB_RETURN_IF_ERROR(Prepare());
  // "All the recommended configurations are obtained using the P
  // configuration as the starting point, the difference in size between 1C
  // and P as the space budget, and no limit on the time the recommender is
  // allowed to run." (Section 3.2.3)
  TB_RETURN_IF_ERROR(db_->ResetToPrimary());
  profile.space_budget_pages = SpaceBudgetPages();
  std::vector<BoundQuery> bound;
  TB_ASSIGN_OR_RETURN(bound, BindWorkload(workload_, db_->catalog()));
  ConfigView view = db_->CurrentView();
  Advisor advisor(view, profile);
  return advisor.Recommend(bound);
}

namespace {

/// Journal file names come from user-facing family/config names; keep them
/// shell- and filesystem-safe.
std::string SanitizeForFilename(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    out.push_back(ok ? c : '_');
  }
  return out.empty() ? std::string("unnamed") : out;
}

}  // namespace

Result<ConfigRunRecord> FamilyExperiment::RunOn(const Configuration& config) {
  TB_RETURN_IF_ERROR(Prepare());
  ConfigRunRecord rec;
  rec.config_name = config.name;
  if (config.indexes.empty() && config.views.empty()) {
    TB_RETURN_IF_ERROR(db_->ResetToPrimary());
  } else {
    TB_ASSIGN_OR_RETURN(rec.build, db_->ApplyConfiguration(config));
  }
  RunOptions run = opts_.run;
  if (!opts_.journal_dir.empty()) {
    // One journal per (family, config) pair, auto-resumed: re-running an
    // interrupted campaign replays every journaled query and only executes
    // the remainder. A completed journal replays entirely — RunOn becomes
    // a cheap, bit-identical re-derivation of the stored result.
    run.journal_path = opts_.journal_dir + "/" +
                       SanitizeForFilename(workload_.name) + "-" +
                       SanitizeForFilename(config.name) + ".tbj";
    run.resume = true;
    run.journal_metadata["family"] = workload_.name;
    run.journal_metadata["config"] = config.name;
  }
  TB_ASSIGN_OR_RETURN(rec.result, RunWorkload(db_, workload_.Sql(), run));
  return rec;
}

Result<std::vector<ConfigRunRecord>> FamilyExperiment::RunStandard(
    const Configuration* recommended) {
  std::vector<ConfigRunRecord> out;
  ConfigRunRecord rec;
  TB_ASSIGN_OR_RETURN(rec, RunOn(MakePConfig()));
  out.push_back(std::move(rec));
  if (recommended != nullptr) {
    ConfigRunRecord r;
    TB_ASSIGN_OR_RETURN(r, RunOn(*recommended));
    out.push_back(std::move(r));
  }
  ConfigRunRecord one_c;
  TB_ASSIGN_OR_RETURN(one_c, RunOn(Make1CConfig(db_->catalog())));
  out.push_back(std::move(one_c));
  return out;
}

Result<std::vector<BoundQuery>> BindWorkload(const QueryFamily& family,
                                             const Catalog& catalog) {
  std::vector<BoundQuery> out;
  out.reserve(family.queries.size());
  for (const auto& q : family.queries) {
    BoundQuery b;
    TB_ASSIGN_OR_RETURN(b, ParseAndBind(q.sql, catalog));
    out.push_back(std::move(b));
  }
  return out;
}

}  // namespace tabbench
