#ifndef TABBENCH_CORE_RUNNER_H_
#define TABBENCH_CORE_RUNNER_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/cfc.h"
#include "engine/database.h"
#include "util/thread_pool.h"
#include "util/cancellation.h"
#include "util/retry.h"

namespace tabbench {

/// Which engine executes each query of a workload run. Both produce
/// bit-identical simulated costs, results, and buffer-pool state (the vec
/// engine's determinism contract; unsupported plan shapes silently fall
/// back to Volcano), so the choice is a wall-clock knob, not a semantic one.
enum class QueryExecutor {
  kVolcano,     // tuple-at-a-time iterators (exec/plan_executor.h)
  kVectorized,  // morsel-driven batch pipelines (exec/vec/vec_executor.h)
};

struct RunOptions {
  /// Runs per query; timings are averaged. The paper performs three runs of
  /// non-timeout queries and one of timeout queries (Section 4.1). Our
  /// executor is deterministic given the buffer state, so one run is the
  /// default; repetitions exercise warm-cache behavior.
  int repetitions = 1;
  /// Collect E(q, C) optimizer estimates alongside the executions.
  bool collect_estimates = false;
  /// Clear the buffer pool before the workload (cold start).
  bool cold_start = true;
  /// Transient-error retry (Status::IsTransient) per query. Backoff is
  /// charged to the query's *simulated* clock, so retried queries pay for
  /// their retries in the CFC, and the 30-minute timeout bounds the whole
  /// retry loop, not each attempt. Default: no retry.
  RetryPolicy retry;
  /// Added to each query's index to form its FaultScope seed, so distinct
  /// workload runs can draw distinct (but reproducible) fault schedules.
  uint64_t fault_scope_salt = 0;
  /// Durable crash recovery (util/run_journal.h): when non-empty, every
  /// completed query's outcome — and the per-attempt charge traces that
  /// make it replayable — is appended and fsync'd to this file before the
  /// next query starts, so a process death loses at most the query in
  /// flight. Empty (the default) journals nothing and records no traces.
  std::string journal_path;
  /// With journal_path set: if the file already holds a journal written
  /// under these same options for this same workload, its completed prefix
  /// is *replayed* (restoring the simulated clock and buffer-pool state bit
  /// for bit via the trace-replay machinery, no query re-execution) and the
  /// run continues from the first unjournaled query, appending to the same
  /// file. A missing file starts a fresh journal; an incompatible one is
  /// refused with kInvalidArgument. Bit-identity of a resumed run requires
  /// cold_start (the interrupted process's warm pool died with it).
  bool resume = false;
  /// Free-form provenance stamped into a fresh journal's header (database
  /// kind, scale, configuration label, …) so `tabbench resume <journal>`
  /// can rebuild the run with no other inputs.
  std::map<std::string, std::string> journal_metadata;
  /// Execution engine per query (see QueryExecutor above).
  QueryExecutor executor = QueryExecutor::kVolcano;
  /// kVectorized only: helper pool for intra-query morsel parallelism.
  /// nullptr runs every morsel on the query's own thread (serial
  /// vectorized). Helpers are submitted through the pool's admission
  /// control, so a loaded pool degrades smoothly toward serial.
  ThreadPool* intra_query_pool = nullptr;
  /// kVectorized only: helper-job cap per morsel phase; 0 = pool width.
  size_t intra_query_parallelism = 0;
};

/// The ResumeFrom(journal) option: journal to `path` and pick up any
/// completed prefix already recorded there.
inline RunOptions ResumeFrom(std::string path, RunOptions base = {}) {
  base.journal_path = std::move(path);
  base.resume = true;
  return base;
}

/// Final error of one isolated (censored) query.
struct QueryFailure {
  size_t query_index = 0;
  int attempts = 1;  // executions performed, including the first
  Status status;     // the non-retryable / retry-exhausting error
};

/// One workload executed on one configuration.
struct WorkloadResult {
  std::vector<QueryTiming> timings;   // per query, paper's A(q_k, C)
  std::vector<double> estimates;      // per query E(q_k, C) when collected
  size_t timeouts = 0;
  /// Queries whose retries were exhausted (or that hit a non-retryable
  /// error) and were censored at the timeout cost — the paper's treatment
  /// of the advisor that "fails outright" (Section 5). Every failure also
  /// counts as a timeout (its timing enters the t_out bin).
  size_t failures = 0;
  /// Total retry attempts across the workload (extra executions beyond
  /// each query's first).
  size_t retries = 0;
  /// Per-query detail for the failures, in workload order.
  std::vector<QueryFailure> failure_details;
  /// Sum over queries of min(time, timeout) — the paper's conservative
  /// lower-bound total (Section 4.3).
  double total_clamped_seconds = 0.0;

  CumulativeFrequency Cfc() const {
    return CumulativeFrequency::FromTimings(timings);
  }
};

/// Runs every query of the workload sequentially on the database's current
/// configuration. Queries that trip the 30-minute simulated timeout are
/// recorded in the `t_out` bin, not errors; queries that *fail* (transient
/// errors retried per RunOptions::retry until exhausted, or any other
/// non-cancellation error) are likewise isolated — censored at the timeout
/// cost with detail in `failure_details` — so a workload run always
/// completes. Only Status::kCancelled aborts the run.
Result<WorkloadResult> RunWorkload(Database* db,
                                   const std::vector<std::string>& sql,
                                   const RunOptions& opts = {});

/// Optimizer estimates only (no execution): E(q, C_current) per query.
Result<std::vector<double>> EstimateWorkload(
    Database* db, const std::vector<std::string>& sql);

/// What-if estimates H(q, C_hyp, C_current) per query.
Result<std::vector<double>> HypotheticalWorkload(
    Database* db, const std::vector<std::string>& sql,
    const Configuration& hypothetical, const HypotheticalRules& rules);

/// Knobs for the parallel front-ends below.
struct ParallelOptions {
  /// Worker pool that executes the fan-out. nullptr degrades every
  /// parallel front-end to its sequential twin (handy for A/B runs).
  ThreadPool* pool = nullptr;
  /// Queries traced in flight per batch of RunWorkloadParallel; bounds
  /// peak trace memory. 0 picks 4x the pool width.
  size_t window = 0;
  /// Cancels the whole run (the Result carries Status::Cancelled).
  CancellationToken cancel;
};

/// Parallel twin of RunWorkload, *bit-identical* in output and in the
/// shared buffer pool's final state.
///
/// Sequential timings depend on the shared pool's warm-cache evolution
/// across queries, which naive parallelism scrambles. The key invariant
/// (see TraceEvent in exec/exec_context.h) is that a query's *charge
/// sequence* — which pages it touches, in what order, and every CPU/spill
/// charge — does not depend on buffer state; only the hit/miss pricing
/// does. So:
///   1. record phase (parallel): workers execute queries concurrently,
///      each against a private cold session pool with timeout enforcement
///      off, recording full charge traces;
///   2. replay phase (sequential, cheap): the traces are replayed in
///      workload order through the database's real pool — pure LRU walks,
///      no query re-execution — re-pricing every touch against the exact
///      pool state the sequential runner would have had, and re-applying
///      the timeout at the recorded check points.
/// The expensive work (planning, joins, aggregation) parallelizes; the
/// order-sensitive part costs one LRU pass per query.
Result<WorkloadResult> RunWorkloadParallel(Database* db,
                                           const std::vector<std::string>& sql,
                                           const ParallelOptions& par,
                                           const RunOptions& opts = {});

/// Parallel twin of EstimateWorkload (planning is read-only and
/// order-independent, so this is a plain deterministic fan-out).
Result<std::vector<double>> EstimateWorkloadParallel(
    Database* db, const std::vector<std::string>& sql,
    const ParallelOptions& par);

/// Parallel twin of HypotheticalWorkload — the advisors' what-if loop is
/// built from exactly these calls.
Result<std::vector<double>> HypotheticalWorkloadParallel(
    Database* db, const std::vector<std::string>& sql,
    const Configuration& hypothetical, const HypotheticalRules& rules,
    const ParallelOptions& par);

}  // namespace tabbench

#endif  // TABBENCH_CORE_RUNNER_H_
