#ifndef TABBENCH_CORE_RUNNER_H_
#define TABBENCH_CORE_RUNNER_H_

#include <string>
#include <vector>

#include "core/cfc.h"
#include "engine/database.h"

namespace tabbench {

struct RunOptions {
  /// Runs per query; timings are averaged. The paper performs three runs of
  /// non-timeout queries and one of timeout queries (Section 4.1). Our
  /// executor is deterministic given the buffer state, so one run is the
  /// default; repetitions exercise warm-cache behavior.
  int repetitions = 1;
  /// Collect E(q, C) optimizer estimates alongside the executions.
  bool collect_estimates = false;
  /// Clear the buffer pool before the workload (cold start).
  bool cold_start = true;
};

/// One workload executed on one configuration.
struct WorkloadResult {
  std::vector<QueryTiming> timings;   // per query, paper's A(q_k, C)
  std::vector<double> estimates;      // per query E(q_k, C) when collected
  size_t timeouts = 0;
  /// Sum over queries of min(time, timeout) — the paper's conservative
  /// lower-bound total (Section 4.3).
  double total_clamped_seconds = 0.0;

  CumulativeFrequency Cfc() const {
    return CumulativeFrequency::FromTimings(timings);
  }
};

/// Runs every query of the workload sequentially on the database's current
/// configuration (queries that trip the 30-minute simulated timeout are
/// recorded in the `t_out` bin, not errors).
Result<WorkloadResult> RunWorkload(Database* db,
                                   const std::vector<std::string>& sql,
                                   const RunOptions& opts = {});

/// Optimizer estimates only (no execution): E(q, C_current) per query.
Result<std::vector<double>> EstimateWorkload(
    Database* db, const std::vector<std::string>& sql);

/// What-if estimates H(q, C_hyp, C_current) per query.
Result<std::vector<double>> HypotheticalWorkload(
    Database* db, const std::vector<std::string>& sql,
    const Configuration& hypothetical, const HypotheticalRules& rules);

}  // namespace tabbench

#endif  // TABBENCH_CORE_RUNNER_H_
