#include "core/report.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/file_util.h"
#include "util/strings.h"

namespace tabbench {

std::string RenderHistogram(const LogHistogram& h, const std::string& title,
                            const std::string& unit) {
  std::string out = title + "\n";
  uint64_t max_count = h.timeouts;
  for (uint64_t c : h.counts) max_count = std::max(max_count, c);
  max_count = std::max<uint64_t>(max_count, 1);
  const int width = 40;

  uint64_t running = h.below_range;
  uint64_t total = h.below_range + h.timeouts;
  for (uint64_t c : h.counts) total += c;
  total = std::max<uint64_t>(total, 1);

  auto bar = [&](uint64_t c) {
    int n = static_cast<int>(static_cast<double>(c) * width / max_count);
    return std::string(static_cast<size_t>(n), '#');
  };
  if (h.below_range > 0) {
    out += StrFormat("  %10s<%-6s %4llu |%s\n", "",
                     (StrFormat("%g", h.edges.front()) + unit).c_str(),
                     static_cast<unsigned long long>(h.below_range),
                     bar(h.below_range).c_str());
  }
  for (size_t i = 0; i < h.counts.size(); ++i) {
    running += h.counts[i];
    out += StrFormat("  [%7g, %7g) %4llu |%-40s cum %3.0f%%\n", h.edges[i],
                     h.edges[i + 1],
                     static_cast<unsigned long long>(h.counts[i]),
                     bar(h.counts[i]).c_str(),
                     100.0 * static_cast<double>(running) /
                         static_cast<double>(total));
  }
  out += StrFormat("  %17s %4llu |%-40s\n", "t_out",
                   static_cast<unsigned long long>(h.timeouts),
                   bar(h.timeouts).c_str());
  return out;
}

std::string RenderCfcComparison(const std::vector<NamedCurve>& curves,
                                std::vector<double> xs,
                                const std::string& title,
                                const std::string& unit) {
  if (xs.empty()) {
    for (double x = 1.0; x <= 1800.0 * 1.01; x *= std::sqrt(10.0)) {
      xs.push_back(x);
    }
    xs.push_back(1800.0);
  }
  std::string out = title + "\n";
  out += StrFormat("  %12s", ("x (" + unit + ")").c_str());
  for (const auto& c : curves) out += StrFormat(" %8s", c.name.c_str());
  out += "\n";
  for (double x : xs) {
    out += StrFormat("  %12.4g", x);
    for (const auto& c : curves) {
      out += StrFormat("  %6.1f%%", 100.0 * c.cfc.At(x));
    }
    out += "\n";
  }
  out += StrFormat("  %12s", "timeouts");
  for (const auto& c : curves) {
    out += StrFormat(" %8zu", c.cfc.timeouts());
  }
  out += "\n";
  return out;
}

std::string RenderGoalCheck(const PerformanceGoal& goal,
                            const std::vector<NamedCurve>& curves) {
  std::string out = "Goal G: " + goal.ToString() + "\n";
  for (const auto& c : curves) {
    double shortfall = goal.Shortfall(c.cfc);
    out += StrFormat("  %-6s %s", c.name.c_str(),
                     goal.SatisfiedBy(c.cfc) ? "SATISFIES" : "fails");
    if (shortfall > 0.0) {
      out += StrFormat(" (worst shortfall %.0f%%)", shortfall * 100.0);
    }
    out += "\n";
  }
  return out;
}

std::string RenderQuantiles(const std::vector<NamedCurve>& curves,
                            const std::vector<double>& fractions) {
  std::string out;
  for (const auto& c : curves) {
    out += StrFormat("  %-6s", c.name.c_str());
    for (double f : fractions) {
      double q = c.cfc.Quantile(f);
      if (std::isinf(q)) {
        out += StrFormat("  p%02.0f=>t_out", f * 100.0);
      } else {
        out += StrFormat("  p%02.0f=%s", f * 100.0, HumanSeconds(q).c_str());
      }
    }
    out += "\n";
  }
  return out;
}

std::string RenderResilience(const WorkloadResult& result,
                             const std::string& title) {
  std::string out = title + "\n";
  out += StrFormat(
      "  queries %zu, timeouts %zu, failures %zu, retries %zu\n",
      result.timings.size(), result.timeouts, result.failures,
      result.retries);
  for (const auto& f : result.failure_details) {
    out += StrFormat("  q%-4zu FAILED after %d attempt%s: %s\n",
                     f.query_index, f.attempts, f.attempts == 1 ? "" : "s",
                     f.status.ToString().c_str());
  }
  if (result.failure_details.empty() && result.failures == 0) {
    out += "  no failed queries\n";
  }
  return out;
}

Status SaveReport(const std::string& text, const std::string& path) {
  return AtomicWriteFile(path, WithCrc32cTrailer(text));
}

Result<std::string> LoadReport(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return Status::NotFound("cannot open " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  return VerifyCrc32cTrailer(buf.str(), path);
}

}  // namespace tabbench
