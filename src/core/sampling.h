#ifndef TABBENCH_CORE_SAMPLING_H_
#define TABBENCH_CORE_SAMPLING_H_

#include "core/query_family.h"
#include "engine/database.h"

namespace tabbench {

/// Samples `target` queries from a family "in a way that the distribution
/// of elapsed times of the larger family was preserved" (Section 4.1.1).
/// The stratification key is the optimizer's estimated cost on the current
/// (P) configuration — the only execution-free proxy for elapsed time —
/// bucketed into deciles, sampled proportionally, deterministically from
/// `seed`.
Result<QueryFamily> SampleFamily(const QueryFamily& family, Database* db,
                                 size_t target, uint64_t seed);

}  // namespace tabbench

#endif  // TABBENCH_CORE_SAMPLING_H_
