#ifndef TABBENCH_CORE_MUTATION_WORKLOAD_H_
#define TABBENCH_CORE_MUTATION_WORKLOAD_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/runner.h"
#include "engine/database.h"
#include "engine/index_build.h"
#include "util/run_journal.h"
#include "util/thread_pool.h"

namespace tabbench {

/// A seeded insert/update/delete/read mix against one base table — the
/// write-heavy workload axis the paper's read-only benchmark lacks. The op
/// stream is a pure function of (spec, database state evolution), so two
/// runs from the same seed are identical op for op; update/delete victims
/// are drawn Zipf-skewed over the live-row set (hot rows churn), which is
/// what physically decays index clustering and ages the histograms.
struct MutationWorkloadSpec {
  uint64_t seed = 1;
  uint32_t num_ops = 0;
  /// Mutated base table (reads may range anywhere via read_pool).
  std::string table;
  double insert_fraction = 0.25;
  double update_fraction = 0.25;
  double delete_fraction = 0.25;  // remainder is reads
  /// Skew of victim choice for updates/deletes: rank 0 (hottest) is the
  /// youngest live row. 0 = uniform churn.
  double zipf_theta = 0.8;
  /// SQL statements sampled (uniformly, seeded) for read ops.
  std::vector<std::string> read_pool;
};

/// One online index build (and optionally its later drop) riding inside a
/// mutation run: started at `start_op`, stepped once per subsequent op, its
/// side log fed by the run's own writes.
struct IndexBuildRequest {
  IndexDef def;
  uint32_t start_op = 0;
  IndexBuildOptions build;
  /// When true the index is also dropped at `drop_op` (after it went live;
  /// a drop request before the build finished is an error in the spec).
  bool then_drop = false;
  uint32_t drop_op = 0;
};

struct MutationWorkloadOptions {
  /// Journal every completed op (one fsync'd record each) and every
  /// index-build transition to this file; empty journals nothing.
  std::string journal_path;
  /// With journal_path: verify-and-continue a journal left by a killed run.
  /// The journaled op prefix is *re-executed* on the (freshly rebuilt)
  /// database and each recomputed record is checked bit-for-bit against the
  /// journaled one — mutations must replay, not skip, to rebuild heap and
  /// index state — then the run continues live past the torn tail. The
  /// healed journal is byte-identical to one from an uninterrupted run.
  bool resume = false;
  std::map<std::string, std::string> journal_metadata;
  /// Per-op FaultScope salt (mirrors RunOptions::fault_scope_salt).
  uint64_t fault_scope_salt = 0;
  /// Collect E(q, C) for read ops — against the *current, possibly stale*
  /// statistics, which is the whole point: the E-vs-A gap widens as churn
  /// outruns ANALYZE.
  bool collect_estimates = false;
  /// Re-collect statistics (charged to the simulated clock as a full
  /// sequential ANALYZE scan) after this many mutations; 0 = never. The
  /// stats_refresh tunable of the staleness experiment.
  uint64_t stats_refresh = 0;
  /// Online index builds/drops to run inside the workload.
  std::vector<IndexBuildRequest> builds;
  /// Non-null: maximal runs of consecutive read ops execute through
  /// RunWorkloadParallel on this pool (bit-identical to serial by its
  /// determinism contract). Mutations and build steps always run on the
  /// calling thread, at the same sequence points in either mode.
  ThreadPool* pool = nullptr;
  /// Parallel read-run trace window (ParallelOptions::window).
  size_t window = 0;
};

enum class MutationOpKind : uint8_t {
  kInsert = 0,
  kUpdate = 1,
  kDelete = 2,
  kRead = 3,
};

struct MutationOpOutcome {
  MutationOpKind kind = MutationOpKind::kInsert;
  double seconds = 0.0;  // simulated, incl. any ANALYZE it triggered
  bool failed = false;
  bool has_estimate = false;
  double estimate = 0.0;  // reads with collect_estimates only
};

struct IndexBuildOutcome {
  std::string name;
  IndexBuildState final_state = IndexBuildState::kPending;
  /// BTree::Fingerprint at install time (and still, if not dropped): the
  /// value the kill-resume harness compares across interrupted and
  /// uninterrupted runs.
  uint64_t fingerprint = 0;
  uint64_t side_log_peak = 0;
  double build_seconds = 0.0;  // simulated clock spent in Step()/drop
};

struct MutationWorkloadResult {
  std::vector<MutationOpOutcome> ops;
  uint64_t inserts = 0, updates = 0, deletes = 0, reads = 0;
  uint64_t analyze_runs = 0;
  double total_seconds = 0.0;        // simulated clock over the whole run
  double read_seconds = 0.0;         // of which: read ops
  double maintenance_seconds = 0.0;  // mutations + ANALYZE + build steps
  /// TotalMutationsSinceStats at the end — how stale the optimizer's view
  /// of the world finished.
  uint64_t final_staleness = 0;
  std::vector<IndexBuildOutcome> build_outcomes;
  /// Mean |log2(E/A)| over estimated, non-failed reads (0 when none): the
  /// paper's E-vs-A divergence, here as a function of write rate and
  /// stats_refresh.
  double mean_abs_log2_gap = 0.0;
};

/// Executes the mixed workload on `db` (already loaded; statistics
/// collected). Serial when opts.pool is null; with a pool, read runs fan
/// out but every journaled byte, simulated cost, and final structure is
/// bit-identical to the serial run — under any fixed TABBENCH_FAULTS
/// schedule, since fault scopes are pure functions of (salt, op index).
Result<MutationWorkloadResult> RunMutationWorkload(
    Database* db, const MutationWorkloadSpec& spec,
    const MutationWorkloadOptions& opts = {});

/// No-lost-record audit of a mutation-workload journal: op records must be
/// exactly 0..n-1 in order; build transitions must be per-build
/// well-ordered (the legal state machine, op_index and clock monotone) and
/// anchored within the op stream. Returns the audited journal on success.
Result<RunJournal> AuditMutationJournal(const std::string& path);

}  // namespace tabbench

#endif  // TABBENCH_CORE_MUTATION_WORKLOAD_H_
