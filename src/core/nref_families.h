#ifndef TABBENCH_CORE_NREF_FAMILIES_H_
#define TABBENCH_CORE_NREF_FAMILIES_H_

#include "core/query_family.h"

namespace tabbench {

/// Family NREF2J (Section 3.2.2): co-occurrence counts of values from the
/// same domain in different tables, both restricted to infrequent values.
///
///   SELECT r.ci1..ci3, r.c1, COUNT(*)
///   FROM R r, S s
///   WHERE r.c1 = s.c2
///     AND r.c1 IN (SELECT c1 FROM R GROUP BY c1 HAVING COUNT(*) < 4)
///     AND s.c2 IN (SELECT c2 FROM S GROUP BY c2 HAVING COUNT(*) < 4)
///   GROUP BY r.ci1..ci3, r.c1
QueryFamily GenerateNref2J(const Catalog& catalog, const DatabaseStats& stats,
                           const FamilyRestrictions& r = {});

/// Family NREF3J (Section 3.2.2): the generalization of Example 1's
/// self-join pattern.
///
///   SELECT r1.ci1..ci3, r1.c1, COUNT(DISTINCT r2.c2)
///   FROM R r1, R r2, S s
///   WHERE r1.c1 = r2.c1 AND r1.c2 = s.c3 AND s.c4 = k
///   GROUP BY r1.ci1..ci3, r1.c1
///
/// Constants k follow the paper's selectivity rule (k1 rarest; k2/k3 one
/// and two orders of magnitude more frequent).
QueryFamily GenerateNref3J(const Catalog& catalog, const DatabaseStats& stats,
                           const FamilyRestrictions& r = {});

}  // namespace tabbench

#endif  // TABBENCH_CORE_NREF_FAMILIES_H_
