#include "core/tpch_families.h"

#include <algorithm>
#include <set>

#include "util/strings.h"

namespace tabbench {

namespace {

bool InPrimaryKey(const TableDef& def, const std::string& col) {
  return std::find(def.primary_key.begin(), def.primary_key.end(), col) !=
         def.primary_key.end();
}



struct TemplateOptions {
  bool allow_in_theta = true;
  std::set<std::string> table_whitelist;  // empty = all
};

QueryFamily Generate(const Catalog& catalog, const DatabaseStats& stats,
                     const std::string& family_name,
                     const FamilyRestrictions& r,
                     const TemplateOptions& topts) {
  QueryFamily family;
  family.name = family_name;

  auto allowed = [&](const std::string& t) {
    return topts.table_whitelist.empty() || topts.table_whitelist.count(t);
  };

  for (const auto& st : catalog.tables()) {  // S: the middle table
    if (!allowed(st.name)) continue;
    std::vector<std::string> s_cols = UsableColumns(catalog, stats, st.name, r);
    for (const auto& rt : catalog.tables()) {  // R: PK/FK partner of S
      if (!allowed(rt.name) || rt.name == st.name) continue;
      // PK/FK correspondence in either direction.
      auto fk = catalog.ForeignKeyJoin(st.name, rt.name);  // S child
      bool s_is_child = !fk.empty();
      if (!s_is_child) fk = catalog.ForeignKeyJoin(rt.name, st.name);
      if (fk.empty()) continue;
      for (const auto& tt : catalog.tables()) {  // T: non-key join partner
        // T must be distinct from S; it may revisit R's table under a
        // different alias (the analogue of NREF3J's self-join pattern).
        if (!allowed(tt.name) || tt.name == st.name) continue;
        const TableDef* sdef = catalog.FindTable(st.name);
        const TableDef* tdef = catalog.FindTable(tt.name);
        std::vector<std::string> t_cols =
            UsableColumns(catalog, stats, tt.name, r);
        for (const auto& c1 : s_cols) {
          if (InPrimaryKey(*sdef, c1)) continue;  // non-key join
          for (const auto& c2 : t_cols) {
            if (InPrimaryKey(*tdef, c2)) continue;
            if (!catalog.JoinCompatible({st.name, c1}, {tt.name, c2})) {
              continue;
            }
            const ColumnStats* t_col = stats.FindColumn(tt.name, c2);
            if (t_col == nullptr) continue;
            double fanout = EstimateJoinFanout(*t_col);
            // Selection columns c3 on S, with the three-constant spread.
            size_t used_c3 = 0;
            for (const auto& c3 : s_cols) {
              if (used_c3 >= 2) break;  // theta columns per assignment
              if (c3 == c1) continue;
              const ColumnStats* c3s = stats.FindColumn(st.name, c3);
              if (c3s == nullptr) continue;
              auto constants = PickConstants(*c3s);
              if (!constants) continue;
              ++used_c3;

              // FK join conjuncts: r is aliased "r", s aliased "s".
              std::vector<std::string> fk_parts;
              for (const auto& [child_col, parent_col] : fk) {
                if (s_is_child) {
                  fk_parts.push_back("r." + parent_col.column + " = s." +
                                     child_col.column);
                } else {
                  fk_parts.push_back("r." + child_col.column + " = s." +
                                     parent_col.column);
                }
              }
              std::string fk_join = StrJoin(fk_parts, " AND ");

              std::vector<std::vector<std::string>> gsets =
                  GroupSets(t_cols, c2, r.group_sets_small, 4);
              for (const auto& gset : gsets) {
                std::vector<std::string> gcols;
                for (const auto& g : gset) gcols.push_back("t." + g);
                if (gcols.empty()) gcols.push_back("t." + c2);
                std::string group = StrJoin(gcols, ", ");

                auto emit = [&](const std::string& theta,
                                const std::string& desc) {
                  FamilyQuery q;
                  q.sql = StrFormat(
                      "SELECT %s, COUNT(*) FROM %s r, %s s, %s t WHERE %s "
                      "AND s.%s = t.%s AND %s GROUP BY %s",
                      group.c_str(), rt.name.c_str(), st.name.c_str(),
                      tt.name.c_str(), fk_join.c_str(), c1.c_str(),
                      c2.c_str(), theta.c_str(), group.c_str());
                  q.binding = StrFormat("R=%s S=%s T=%s c1=%s c2=%s %s",
                                        rt.name.c_str(), st.name.c_str(),
                                        tt.name.c_str(), c1.c_str(),
                                        c2.c_str(), desc.c_str());
                  family.queries.push_back(std::move(q));
                };

                // theta form 1: s.c3 = p for the three constants.
                for (const auto& [k, f] :
                     {std::pair<Value, uint64_t>{constants->k1, constants->f1},
                      {constants->k2, constants->f2},
                      {constants->k3, constants->f3}}) {
                  if (static_cast<double>(f) * fanout >
                      kMaxIntermediateRows) {
                    continue;
                  }
                  emit(StrFormat("s.%s = %s", c3.c_str(),
                                 k.ToString().c_str()),
                       StrFormat("theta:%s=const f=%llu", c3.c_str(),
                                 static_cast<unsigned long long>(f)));
                }
                // theta form 2: frequency-class membership.
                if (topts.allow_in_theta) {
                  for (uint64_t f : {constants->f1, constants->f2}) {
                    double sigma_rows =
                        static_cast<double>(f) *
                        static_cast<double>(c3s->DistinctWithFreqEq(f));
                    if (sigma_rows * fanout > kMaxIntermediateRows) continue;
                    emit(StrFormat("s.%s IN (SELECT %s FROM %s GROUP BY %s "
                                   "HAVING COUNT(*) = %llu)",
                                   c3.c_str(), c3.c_str(), st.name.c_str(),
                                   c3.c_str(),
                                   static_cast<unsigned long long>(f)),
                         StrFormat("theta:%s IN freq=%llu", c3.c_str(),
                                   static_cast<unsigned long long>(f)));
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  return family;
}

}  // namespace

QueryFamily GenerateTpch3J(const Catalog& catalog, const DatabaseStats& stats,
                           const std::string& family_name,
                           const FamilyRestrictions& r) {
  TemplateOptions topts;
  topts.allow_in_theta = true;
  return Generate(catalog, stats, family_name, r, topts);
}

QueryFamily GenerateTpch3Js(const Catalog& catalog,
                            const DatabaseStats& stats,
                            const FamilyRestrictions& r) {
  TemplateOptions topts;
  topts.allow_in_theta = false;
  topts.table_whitelist = {"lineitem", "orders", "partsupp"};
  return Generate(catalog, stats, "SkTH3Js", r, topts);
}

}  // namespace tabbench
