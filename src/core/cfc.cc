#include "core/cfc.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace tabbench {

CumulativeFrequency CumulativeFrequency::FromTimings(
    const std::vector<QueryTiming>& ts) {
  CumulativeFrequency c;
  c.total_ = ts.size();
  for (const auto& t : ts) {
    if (t.timed_out) {
      ++c.timeouts_;
    } else {
      c.sorted_times_.push_back(t.seconds);
    }
  }
  std::sort(c.sorted_times_.begin(), c.sorted_times_.end());
  return c;
}

CumulativeFrequency CumulativeFrequency::FromValues(
    const std::vector<double>& values) {
  CumulativeFrequency c;
  c.total_ = values.size();
  c.sorted_times_ = values;
  std::sort(c.sorted_times_.begin(), c.sorted_times_.end());
  return c;
}

double CumulativeFrequency::At(double x) const {
  if (total_ == 0) return 0.0;
  auto it = std::lower_bound(sorted_times_.begin(), sorted_times_.end(), x);
  return static_cast<double>(it - sorted_times_.begin()) /
         static_cast<double>(total_);
}

double CumulativeFrequency::Quantile(double frac) const {
  if (total_ == 0) return std::numeric_limits<double>::infinity();
  size_t need = static_cast<size_t>(
      std::ceil(frac * static_cast<double>(total_)));
  if (need == 0) need = 1;
  if (need > sorted_times_.size()) {
    return std::numeric_limits<double>::infinity();
  }
  return sorted_times_[need - 1];
}

bool CumulativeFrequency::Dominates(const CumulativeFrequency& other) const {
  // Check at every breakpoint of either curve (slightly past each time, so
  // the strict '<' in the CFC definition is respected).
  bool strictly_above = false;
  auto check = [&](double x) {
    double a = At(std::nextafter(x, std::numeric_limits<double>::max()));
    double b = other.At(std::nextafter(x, std::numeric_limits<double>::max()));
    if (a < b - 1e-12) return false;
    if (a > b + 1e-12) strictly_above = true;
    return true;
  };
  for (double x : sorted_times_) {
    if (!check(x)) return false;
  }
  for (double x : other.sorted_times_) {
    if (!check(x)) return false;
  }
  // Timeout tails: fewer timeouts also counts as (weak) dominance evidence.
  if (timeouts_ > other.timeouts_) return false;
  if (timeouts_ < other.timeouts_) strictly_above = true;
  return strictly_above;
}

namespace {
LogHistogram BuildImpl(const std::vector<QueryTiming>& ts, double lo,
                       double hi, int bins_per_decade) {
  LogHistogram h;
  double step = std::pow(10.0, 1.0 / bins_per_decade);
  for (double e = lo; e < hi * (1.0 + 1e-9); e *= step) h.edges.push_back(e);
  if (h.edges.size() < 2) h.edges = {lo, hi};
  h.counts.assign(h.edges.size() - 1, 0);
  for (const auto& t : ts) {
    if (t.timed_out) {
      ++h.timeouts;
      continue;
    }
    if (t.seconds < h.edges.front()) {
      ++h.below_range;
      continue;
    }
    if (t.seconds >= h.edges.back()) {
      // Clamp into the last bin (pre-timeout stragglers).
      ++h.counts.back();
      continue;
    }
    auto it = std::upper_bound(h.edges.begin(), h.edges.end(), t.seconds);
    size_t bin = static_cast<size_t>(it - h.edges.begin()) - 1;
    ++h.counts[bin];
  }
  return h;
}
}  // namespace

LogHistogram LogHistogram::Build(const std::vector<QueryTiming>& ts, double lo,
                                 double hi, int bins_per_decade) {
  return BuildImpl(ts, lo, hi, bins_per_decade);
}

LogHistogram LogHistogram::FromValues(const std::vector<double>& values,
                                      double lo, double hi,
                                      int bins_per_decade) {
  std::vector<QueryTiming> ts;
  ts.reserve(values.size());
  for (double v : values) ts.push_back(QueryTiming{v, false});
  return BuildImpl(ts, lo, hi, bins_per_decade);
}

}  // namespace tabbench
