#ifndef TABBENCH_CORE_REPORT_H_
#define TABBENCH_CORE_REPORT_H_

#include <string>
#include <vector>

#include "core/cfc.h"
#include "core/goal.h"
#include "core/runner.h"

namespace tabbench {

/// A named CFC curve for side-by-side comparison (P / 1C / R, or the
/// estimate curves EP / ER / E1C / HR / H1C of Fig. 10).
struct NamedCurve {
  std::string name;
  CumulativeFrequency cfc;
};

/// ASCII histogram with the trailing `t_out` bin — the shape of Figures 1,
/// 2 and 11.
std::string RenderHistogram(const LogHistogram& h, const std::string& title,
                            const std::string& unit = "s");

/// Cumulative-frequency comparison table: one row per grid point, one
/// column per configuration; the textual equivalent of Figures 3-10.
/// `xs` empty = a default half-decade grid from 1 to the timeout.
std::string RenderCfcComparison(const std::vector<NamedCurve>& curves,
                                std::vector<double> xs,
                                const std::string& title,
                                const std::string& unit = "s");

/// Goal satisfaction summary: which configurations meet G (Example 2).
std::string RenderGoalCheck(const PerformanceGoal& goal,
                            const std::vector<NamedCurve>& curves);

/// Quantile read-offs ("55% of the queries execute in less than 100
/// seconds" style), for the running commentary the paper attaches to its
/// figures.
std::string RenderQuantiles(const std::vector<NamedCurve>& curves,
                            const std::vector<double>& fractions);

/// Resilience summary of one workload run: timeout/failure/retry counters
/// and per-query failure detail (which query, how many attempts, the final
/// error). Failed queries are censored at the timeout cost in the CFC —
/// this section is where the *reason* survives into the report.
std::string RenderResilience(const WorkloadResult& result,
                             const std::string& title);

/// Writes a rendered report to `path` atomically (temp file + rename), so
/// a crash mid-write can't leave a truncated report behind, with a crc32c
/// trailer line so later bit rot is detectable.
Status SaveReport(const std::string& text, const std::string& path);

/// Reads a report back, verifying and stripping the crc32c trailer.
/// Corruption is kDataLoss with the offending offset; a report saved
/// before checksumming (no trailer) loads as-is.
Result<std::string> LoadReport(const std::string& path);

}  // namespace tabbench

#endif  // TABBENCH_CORE_REPORT_H_
