#include "core/query_family.h"

#include <algorithm>

namespace tabbench {

double EstimateJoinFanout(const ColumnStats& col) {
  if (col.row_count == 0) return 0.0;
  double rows = static_cast<double>(col.row_count);
  double collision = 0.0;
  double mcv_mass = 0.0;
  for (const auto& [v, f] : col.mcvs) {
    double p = static_cast<double>(f) / rows;
    collision += p * p;
    mcv_mass += p;
  }
  double rest_distinct = static_cast<double>(col.num_distinct) -
                         static_cast<double>(col.mcvs.size());
  if (rest_distinct > 0 && mcv_mass < 1.0) {
    collision += (1.0 - mcv_mass) * (1.0 - mcv_mass) / rest_distinct;
  }
  return rows * collision;
}

std::optional<ConstantTriple> PickConstants(const ColumnStats& stats) {
  if (stats.freq_examples.empty()) return std::nullopt;
  ConstantTriple t;
  // k1: the rarest value (highest selectivity).
  t.f1 = stats.freq_examples.front().first;
  t.k1 = stats.freq_examples.front().second;
  // k2, k3: frequencies one and two orders of magnitude greater.
  t.k2 = stats.ExampleWithFreqNear(t.f1 * 10, &t.f2);
  t.k3 = stats.ExampleWithFreqNear(t.f1 * 100, &t.f3);
  // Require an actual spread: k2 meaningfully more frequent than k1.
  if (t.f2 < t.f1 * 3) return std::nullopt;
  return t;
}

std::vector<std::string> UsableColumns(const Catalog& catalog,
                                       const DatabaseStats& stats,
                                       const std::string& table,
                                       const FamilyRestrictions& r) {
  std::vector<std::string> out;
  const TableDef* def = catalog.FindTable(table);
  if (def == nullptr) return out;

  // The paper keeps at most 4 "meaningful" columns per table
  // (Section 4.1.1). Meaningful here = usable in cross-table joins:
  // prioritize columns whose domain also appears in another table,
  // non-key columns first (they enable the families' non-key joins),
  // then key columns, then the rest — stable within each class.
  auto domain_is_cross_table = [&](const std::string& domain) {
    for (const auto& t : catalog.tables()) {
      if (t.name == table) continue;
      for (const auto& c : t.columns) {
        if (c.indexable && c.domain == domain) return true;
      }
    }
    return false;
  };
  auto in_pk = [&](const std::string& col) {
    return std::find(def->primary_key.begin(), def->primary_key.end(),
                     col) != def->primary_key.end();
  };
  for (int klass = 0; klass < 3; ++klass) {
    for (const auto& c : def->columns) {
      if (out.size() >= r.max_columns_per_table) break;
      if (!c.indexable || c.domain.empty()) continue;
      if (std::find(out.begin(), out.end(), c.name) != out.end()) continue;
      bool cross = domain_is_cross_table(c.domain);
      int c_klass = cross ? (in_pk(c.name) ? 1 : 0) : 2;
      if (c_klass == klass) out.push_back(c.name);
    }
  }
  (void)stats;
  return out;
}

std::vector<std::vector<std::string>> GroupSets(
    const std::vector<std::string>& columns, const std::string& exclude,
    size_t num_sets, size_t max_width) {
  std::vector<std::string> pool;
  for (const auto& c : columns) {
    if (c != exclude) pool.push_back(c);
  }
  std::vector<std::vector<std::string>> out;
  if (pool.empty() || num_sets == 0) {
    out.push_back({});  // group by the anchor column alone
    return out;
  }
  // Variant 1: a single extra column. Variant 2: up to max_width columns.
  out.push_back({pool.front()});
  if (num_sets > 1 && pool.size() > 1) {
    std::vector<std::string> wide;
    for (const auto& c : pool) {
      if (wide.size() >= max_width) break;
      wide.push_back(c);
    }
    if (wide.size() > 1) out.push_back(std::move(wide));
  }
  return out;
}

}  // namespace tabbench
