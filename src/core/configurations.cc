#include "core/configurations.h"

namespace tabbench {

Configuration MakePConfig() {
  Configuration c;
  c.name = "P";
  return c;
}

Configuration Make1CConfig(const Catalog& catalog) {
  Configuration c;
  c.name = "1C";
  for (const auto& ref : catalog.IndexableColumns()) {
    IndexDef idx;
    idx.name = "oc_" + ref.table + "_" + ref.column;
    idx.target = ref.table;
    idx.columns = {ref.column};
    c.indexes.push_back(std::move(idx));
  }
  return c;
}

}  // namespace tabbench
