#include "core/nref_families.h"

#include <algorithm>

#include "util/strings.h"

namespace tabbench {

namespace {

std::string GroupList(const std::string& alias,
                      const std::vector<std::string>& cols,
                      const std::string& anchor) {
  std::vector<std::string> parts;
  for (const auto& c : cols) parts.push_back(alias + "." + c);
  parts.push_back(alias + "." + anchor);
  return StrJoin(parts, ", ");
}

bool IsLarge(const DatabaseStats& stats, const std::string& table,
             const FamilyRestrictions& r) {
  const TableStats* ts = stats.FindTable(table);
  return ts != nullptr && ts->row_count > r.large_table_rows;
}

}  // namespace

QueryFamily GenerateNref2J(const Catalog& catalog, const DatabaseStats& stats,
                           const FamilyRestrictions& r) {
  QueryFamily family;
  family.name = "NREF2J";
  for (const auto& rt : catalog.tables()) {
    std::vector<std::string> r_cols =
        UsableColumns(catalog, stats, rt.name, r);
    for (const auto& st : catalog.tables()) {
      if (st.name == rt.name) continue;  // cross-table co-occurrence
      std::vector<std::string> s_cols =
          UsableColumns(catalog, stats, st.name, r);
      for (const auto& c1 : r_cols) {
        for (const auto& c2 : s_cols) {
          if (!catalog.JoinCompatible({rt.name, c1}, {st.name, c2})) continue;
          size_t group_variants = IsLarge(stats, rt.name, r)
                                      ? r.group_sets_large
                                      : r.group_sets_small;
          for (const auto& gset :
               GroupSets(r_cols, c1, group_variants, 3)) {
            std::string group = GroupList("r", gset, c1);
            FamilyQuery q;
            q.sql = StrFormat(
                "SELECT %s, COUNT(*) FROM %s r, %s s WHERE r.%s = s.%s "
                "AND r.%s IN (SELECT %s FROM %s GROUP BY %s "
                "HAVING COUNT(*) < 4) "
                "AND s.%s IN (SELECT %s FROM %s GROUP BY %s "
                "HAVING COUNT(*) < 4) GROUP BY %s",
                group.c_str(), rt.name.c_str(), st.name.c_str(), c1.c_str(),
                c2.c_str(), c1.c_str(), c1.c_str(), rt.name.c_str(),
                c1.c_str(), c2.c_str(), c2.c_str(), st.name.c_str(),
                c2.c_str(), group.c_str());
            q.binding = StrFormat("R=%s c1=%s S=%s c2=%s |g|=%zu",
                                  rt.name.c_str(), c1.c_str(),
                                  st.name.c_str(), c2.c_str(), gset.size());
            family.queries.push_back(std::move(q));
          }
        }
      }
    }
  }
  return family;
}

QueryFamily GenerateNref3J(const Catalog& catalog, const DatabaseStats& stats,
                           const FamilyRestrictions& r) {
  QueryFamily family;
  family.name = "NREF3J";
  for (const auto& rt : catalog.tables()) {
    std::vector<std::string> r_cols =
        UsableColumns(catalog, stats, rt.name, r);
    const bool r_large = IsLarge(stats, rt.name, r);
    for (const auto& c1 : r_cols) {
      // Self-join on c1 requires a non-empty domain (always true for
      // usable columns) and some duplication to be meaningful.
      const ColumnStats* c1s = stats.FindColumn(rt.name, c1);
      if (c1s == nullptr || c1s->num_distinct == 0 ||
          c1s->num_distinct == c1s->row_count) {
        continue;  // unique column: self-join is the identity
      }
      // "Fewer selection criteria on the larger tables" (Section 4.1.1):
      // cap the (c2, S.c3) pairings explored per (R, c1).
      size_t used_c2_pairs = 0;
      const size_t max_c2_pairs = r_large ? 2 : 3;
      for (const auto& c2 : r_cols) {
        if (c2 == c1) continue;
        for (const auto& st : catalog.tables()) {
          if (st.name == rt.name) continue;
          if (used_c2_pairs >= max_c2_pairs) break;
          std::vector<std::string> s_cols =
              UsableColumns(catalog, stats, st.name, r);
          for (const auto& c3 : s_cols) {
            if (used_c2_pairs >= max_c2_pairs) break;
            if (!catalog.JoinCompatible({rt.name, c2}, {st.name, c3})) {
              continue;
            }
            ++used_c2_pairs;
            // Intermediate-size control (Section 3.2.2): the self-join on
            // c1 multiplies every surviving r1 row by the frequency of its
            // c1 value; cap the estimated blow-up.
            const ColumnStats* c1s_fan = stats.FindColumn(rt.name, c1);
            const ColumnStats* c2s_fan = stats.FindColumn(rt.name, c2);
            if (c1s_fan == nullptr || c2s_fan == nullptr) continue;
            double self_fanout = EstimateJoinFanout(*c1s_fan);
            double r1_fanout = EstimateJoinFanout(*c2s_fan);

            // Selection columns on S: fewer criteria on large tables.
            size_t max_c4 = IsLarge(stats, st.name, r) ? 1 : 2;
            size_t used_c4 = 0;
            for (const auto& c4 : s_cols) {
              if (used_c4 >= max_c4) break;
              const ColumnStats* c4s = stats.FindColumn(st.name, c4);
              if (c4s == nullptr) continue;
              auto constants = PickConstants(*c4s);
              if (!constants) continue;
              ++used_c4;
              size_t group_variants =
                  r_large ? r.group_sets_large : r.group_sets_small;
              for (const auto& gset : GroupSets(r_cols, c1, group_variants,
                                                3)) {
                std::string group = GroupList("r1", gset, c1);
                for (const auto& [k, freq] :
                     {std::pair<Value, uint64_t>{constants->k1, constants->f1},
                      {constants->k2, constants->f2},
                      {constants->k3, constants->f3}}) {
                  // Estimated pairs: sigma(S) -> r1 rows -> self-join.
                  // NREF3J aggregates the pairs immediately (COUNT
                  // DISTINCT), so a looser cap than the TPC-H families'
                  // keeps the paper's fast..timeout spectrum.
                  double r1_rows = static_cast<double>(freq) * r1_fanout;
                  if (r1_rows * self_fanout > 4.0 * kMaxIntermediateRows) {
                    continue;
                  }
                  FamilyQuery q;
                  q.sql = StrFormat(
                      "SELECT %s, COUNT(DISTINCT r2.%s) FROM %s r1, %s r2, "
                      "%s s WHERE r1.%s = r2.%s AND r1.%s = s.%s AND "
                      "s.%s = %s GROUP BY %s",
                      group.c_str(), c2.c_str(), rt.name.c_str(),
                      rt.name.c_str(), st.name.c_str(), c1.c_str(),
                      c1.c_str(), c2.c_str(), c3.c_str(), c4.c_str(),
                      k.ToString().c_str(), group.c_str());
                  q.binding = StrFormat(
                      "R=%s c1=%s c2=%s S=%s c3=%s c4=%s f=%llu",
                      rt.name.c_str(), c1.c_str(), c2.c_str(),
                      st.name.c_str(), c3.c_str(), c4.c_str(),
                      static_cast<unsigned long long>(freq));
                  family.queries.push_back(std::move(q));
                }
              }
            }
          }
        }
      }
    }
  }
  return family;
}

}  // namespace tabbench
