#ifndef TABBENCH_CORE_IMPROVEMENT_H_
#define TABBENCH_CORE_IMPROVEMENT_H_

#include <vector>

#include "core/cfc.h"

namespace tabbench {

/// Per-query improvement ratios of Section 5.2. A ratio compares
/// configuration C_i against C_j for one query: value > 1 means C_j is
/// faster. The paper studies three flavors:
///   AIR(q) = A(q, C_i) / A(q, C_j)       actual executions
///   EIR(q) = E(q, C_i) / E(q, C_j)       estimates taken in each target
///   HIR(q) = H(q, C_i, P) / H(q, C_j, P) hypothetical estimates from P
///
/// "Actual improvements involving timeout queries are not considered."
std::vector<double> ActualImprovementRatios(
    const std::vector<QueryTiming>& in_ci,
    const std::vector<QueryTiming>& in_cj);

/// EIR/HIR from per-query estimate vectors.
std::vector<double> EstimatedImprovementRatios(
    const std::vector<double>& in_ci, const std::vector<double>& in_cj);

}  // namespace tabbench

#endif  // TABBENCH_CORE_IMPROVEMENT_H_
