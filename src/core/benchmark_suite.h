#ifndef TABBENCH_CORE_BENCHMARK_SUITE_H_
#define TABBENCH_CORE_BENCHMARK_SUITE_H_

#include <string>
#include <vector>

#include "advisor/advisor.h"
#include "core/configurations.h"
#include "core/query_family.h"
#include "core/runner.h"
#include "engine/database.h"

namespace tabbench {

struct ExperimentOptions {
  /// The paper samples 100 queries per family (Section 4.1.1).
  size_t workload_size = 100;
  uint64_t sample_seed = 77;
  RunOptions run;
  /// Crash recovery for the whole campaign: when non-empty, every RunOn
  /// gets a durable journal at `<journal_dir>/<family>-<config>.tbj`
  /// (resume enabled, provenance metadata stamped), so an experiment
  /// interrupted mid-configuration picks up where it left off instead of
  /// redoing multi-hour runs. The directory must exist.
  std::string journal_dir;
};

/// One configuration applied + one workload executed.
struct ConfigRunRecord {
  std::string config_name;
  BuildReport build;
  WorkloadResult result;
};

/// Orchestrates the paper's protocol for one (database, family) pair:
///   1. sample the family to 100 queries;
///   2. obtain recommendations from the P configuration, with the space
///      budget size(1C) - size(P) (Section 3.2.3);
///   3. build each configuration and execute the workload on it.
class FamilyExperiment {
 public:
  FamilyExperiment(Database* db, QueryFamily family, ExperimentOptions opts);

  /// Samples the workload (no-op if already prepared).
  Status Prepare();

  const QueryFamily& workload() const { return workload_; }
  size_t family_size() const { return full_size_; }
  Database* db() const { return db_; }

  /// The benchmark's space budget, in pages: the estimated footprint of 1C
  /// beyond P.
  double SpaceBudgetPages() const;

  /// Runs the advisor (with the benchmark budget applied to `profile`)
  /// against the workload, from the P configuration. NotFound = the
  /// recommender declined to produce any configuration.
  Result<Recommendation> Recommend(AdvisorOptions profile);

  /// Applies `config` and executes the workload on it.
  Result<ConfigRunRecord> RunOn(const Configuration& config);

  /// Convenience: runs P, 1C (and R when `rec` is non-null), in the
  /// paper's order.
  Result<std::vector<ConfigRunRecord>> RunStandard(
      const Configuration* recommended);

 private:
  Database* db_;
  QueryFamily full_family_;
  size_t full_size_ = 0;
  QueryFamily workload_;
  ExperimentOptions opts_;
  bool prepared_ = false;
};

/// Binds a workload's SQL against the catalog (advisor input).
Result<std::vector<BoundQuery>> BindWorkload(const QueryFamily& family,
                                             const Catalog& catalog);

}  // namespace tabbench

#endif  // TABBENCH_CORE_BENCHMARK_SUITE_H_
