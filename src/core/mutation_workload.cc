#include "core/mutation_workload.h"

#include <sys/stat.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <utility>

#include "util/fault_injection.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace tabbench {
namespace {

/// Fixed Zipf rank domain; ranks fold onto the (changing) live-row set so
/// the sampler is built once instead of per draw.
constexpr size_t kZipfDomain = 4096;

/// Doubles in journal records are recomputed on resume and must match the
/// original bit for bit — an epsilon compare would hide real divergence.
bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Deterministic synthetic row for `def` (one rng draw per column).
Tuple GenRow(const TableDef& def, Rng* rng) {
  std::vector<Value> vals;
  vals.reserve(def.columns.size());
  for (const auto& col : def.columns) {
    switch (col.type) {
      case TypeId::kInt:
        vals.emplace_back(static_cast<int64_t>(rng->Uniform(1'000'000)));
        break;
      case TypeId::kDouble:
        vals.emplace_back(rng->UniformDouble() * 1000.0);
        break;
      case TypeId::kString:
        vals.emplace_back("m" + std::to_string(rng->Uniform(100'000)));
        break;
    }
  }
  return Tuple(std::move(vals));
}

/// Append-or-verify journal sink. While a loaded journal still has
/// unconsumed records (resume's re-execution phase) each recomputed record
/// is checked bit-for-bit against the journaled one; after the prefix is
/// exhausted, records append (and fsync) live. The op stream is
/// deterministic, so "the k-th record" is the same object in either mode.
class JournalSink {
 public:
  JournalSink(RunJournalWriter* writer, const RunJournal* loaded)
      : writer_(writer), loaded_(loaded) {}

  Status Op(const JournalQueryRecord& rec) {
    if (loaded_ != nullptr && next_op_ < loaded_->records.size()) {
      const JournalQueryRecord& want = loaded_->records[next_op_];
      if (want.query_index != rec.query_index ||
          !BitEqual(want.seconds, rec.seconds) ||
          want.timed_out != rec.timed_out || want.failed != rec.failed ||
          want.has_estimate != rec.has_estimate ||
          !BitEqual(want.estimate, rec.estimate)) {
        return Status::DataLoss(
            "resume divergence at op " + std::to_string(rec.query_index) +
            ": recomputed outcome does not match the journal (journaled " +
            FormatDouble(want.seconds) + "s, recomputed " +
            FormatDouble(rec.seconds) + "s)");
      }
      ++next_op_;
      return Status::OK();
    }
    if (writer_ == nullptr) return Status::OK();
    return writer_->Append(rec);
  }

  Status Build(const JournalIndexBuildRecord& rec) {
    if (loaded_ != nullptr && next_build_ < loaded_->index_builds.size()) {
      const JournalIndexBuildRecord& want =
          loaded_->index_builds[next_build_];
      if (want.build_id != rec.build_id || want.state != rec.state ||
          want.op_index != rec.op_index ||
          want.side_log_entries != rec.side_log_entries ||
          !BitEqual(want.clock_seconds, rec.clock_seconds) ||
          want.index_name != rec.index_name || want.target != rec.target ||
          want.columns != rec.columns) {
        return Status::DataLoss(
            "resume divergence at build transition " +
            std::to_string(next_build_) + " (" + rec.index_name +
            " entering state " + std::to_string(int(rec.state)) + ")");
      }
      ++next_build_;
      return Status::OK();
    }
    if (writer_ == nullptr) return Status::OK();
    return writer_->Append(rec);
  }

  /// True once every loaded record and transition has been re-verified.
  bool PrefixDone() const {
    return loaded_ == nullptr || (next_op_ >= loaded_->records.size() &&
                                  next_build_ >= loaded_->index_builds.size());
  }
  size_t verified_ops() const { return next_op_; }

 private:
  RunJournalWriter* writer_;
  const RunJournal* loaded_;
  size_t next_op_ = 0;
  size_t next_build_ = 0;
};

/// One in-flight online build/drop and its bookkeeping.
struct ActiveBuild {
  const IndexBuildRequest* req = nullptr;
  uint32_t build_id = 0;
  std::unique_ptr<OnlineIndexBuild> build;
  bool started = false;
  bool dropped = false;
  uint64_t steps_taken = 0;
  IndexBuildOutcome outcome;
};

JournalHeader MakeHeader(Database* db, const MutationWorkloadSpec& spec,
                         const MutationWorkloadOptions& opts) {
  JournalHeader h;
  h.query_count = spec.num_ops;
  h.repetitions = 1;
  h.collect_estimates = opts.collect_estimates;
  h.cold_start = true;  // the runner always clears the pool at start
  h.fault_scope_salt = opts.fault_scope_salt;
  h.timeout_seconds = db->options().cost.timeout_seconds;
  h.sql = spec.read_pool;
  h.metadata = opts.journal_metadata;
  h.metadata["mutation_seed"] = std::to_string(spec.seed);
  h.metadata["mutation_table"] = spec.table;
  h.metadata["mutation_fractions"] = FormatDouble(spec.insert_fraction) + "/" +
                                     FormatDouble(spec.update_fraction) + "/" +
                                     FormatDouble(spec.delete_fraction);
  h.metadata["mutation_zipf_theta"] = FormatDouble(spec.zipf_theta);
  h.metadata["stats_refresh"] = std::to_string(opts.stats_refresh);
  std::string builds;
  for (const auto& b : opts.builds) {
    if (!builds.empty()) builds += ";";
    builds += b.def.name + "@" + std::to_string(b.start_op);
    if (b.then_drop) builds += "-drop@" + std::to_string(b.drop_op);
  }
  h.metadata["mutation_builds"] = builds;
  return h;
}

Status CheckHeaderCompatible(const JournalHeader& have,
                             const JournalHeader& want) {
  auto mismatch = [](const std::string& what) {
    return Status::InvalidArgument(
        "journal was written under different run options (" + what +
        "); refusing to resume");
  };
  if (have.query_count != want.query_count) return mismatch("num_ops");
  if (have.fault_scope_salt != want.fault_scope_salt) {
    return mismatch("fault_scope_salt");
  }
  if (have.collect_estimates != want.collect_estimates) {
    return mismatch("collect_estimates");
  }
  if (have.sql != want.sql) return mismatch("read_pool");
  for (const char* key :
       {"mutation_seed", "mutation_table", "mutation_fractions",
        "mutation_zipf_theta", "stats_refresh", "mutation_builds"}) {
    auto h = have.metadata.find(key);
    auto w = want.metadata.find(key);
    if (h == have.metadata.end() || w == want.metadata.end() ||
        h->second != w->second) {
      return mismatch(key);
    }
  }
  return Status::OK();
}

/// Legal forward edges of the build/drop state machine (audit + hook).
bool LegalTransition(uint8_t from, uint8_t to) {
  auto f = static_cast<IndexBuildState>(from);
  auto t = static_cast<IndexBuildState>(to);
  if (t == IndexBuildState::kAborted) return true;
  switch (f) {
    case IndexBuildState::kPending:
      return t == IndexBuildState::kScanning;
    case IndexBuildState::kScanning:
      return t == IndexBuildState::kBackfilling;
    case IndexBuildState::kBackfilling:
      return t == IndexBuildState::kCatchingUp;
    case IndexBuildState::kCatchingUp:
      return t == IndexBuildState::kLive;
    case IndexBuildState::kLive:
      return t == IndexBuildState::kDropping;
    case IndexBuildState::kDropping:
      return t == IndexBuildState::kDropped;
    default:
      return false;
  }
}

}  // namespace

Result<MutationWorkloadResult> RunMutationWorkload(
    Database* db, const MutationWorkloadSpec& spec,
    const MutationWorkloadOptions& opts) {
  double frac_sum = spec.insert_fraction + spec.update_fraction +
                    spec.delete_fraction;
  if (spec.insert_fraction < 0 || spec.update_fraction < 0 ||
      spec.delete_fraction < 0 || frac_sum > 1.0 + 1e-9) {
    return Status::InvalidArgument("mutation fractions must be >= 0, sum <= 1");
  }
  const TableDef* tdef = db->catalog().FindTable(spec.table);
  if (tdef == nullptr) {
    return Status::NotFound("mutation table " + spec.table);
  }
  const HeapTable* heap = db->FindHeap(spec.table);
  if (heap == nullptr) {
    return Status::NotFound("mutation table heap " + spec.table);
  }
  if (frac_sum < 1.0 - 1e-9 && spec.read_pool.empty()) {
    return Status::InvalidArgument(
        "read fraction > 0 requires a non-empty read_pool");
  }

  // ---- journal setup: fresh, or verify-and-continue -----------------------
  RunJournal loaded;
  bool verifying = false;
  std::unique_ptr<RunJournalWriter> writer;
  JournalHeader header = MakeHeader(db, spec, opts);
  if (!opts.journal_path.empty()) {
    struct stat st;
    bool exists = ::stat(opts.journal_path.c_str(), &st) == 0;
    if (opts.resume && exists) {
      TB_ASSIGN_OR_RETURN(loaded, LoadRunJournal(opts.journal_path));
      TB_RETURN_IF_ERROR(CheckHeaderCompatible(loaded.header, header));
      verifying = true;
      TB_ASSIGN_OR_RETURN(writer,
                          RunJournalWriter::OpenAppend(opts.journal_path,
                                                       loaded));
    } else {
      TB_ASSIGN_OR_RETURN(writer,
                          RunJournalWriter::Create(opts.journal_path, header));
    }
  }
  JournalSink sink(writer.get(), verifying ? &loaded : nullptr);

  // ---- deterministic run state -------------------------------------------
  // Cold pool: a resumed run re-executes on a freshly rebuilt database, so
  // the original must not depend on pre-run pool contents either.
  db->buffer_pool()->Clear();
  Rng rng(spec.seed);
  ZipfSampler zipf(kZipfDomain, spec.zipf_theta);
  std::vector<Rid> live;  // append order = age order (back = youngest)
  {
    live.reserve(heap->num_rows());
    auto cursor = heap->Scan(nullptr);
    Tuple t;
    Rid rid;
    while (cursor.Next(&t, &rid)) live.push_back(rid);
  }

  MutationWorkloadResult out;
  out.ops.reserve(spec.num_ops);
  uint32_t ops_journaled = 0;
  double total = 0.0;

  // ---- builds -------------------------------------------------------------
  std::vector<ActiveBuild> builds;
  builds.reserve(opts.builds.size());
  for (size_t b = 0; b < opts.builds.size(); ++b) {
    ActiveBuild ab;
    ab.req = &opts.builds[b];
    ab.build_id = static_cast<uint32_t>(b);
    ab.outcome.name = ab.req->def.name;
    builds.push_back(std::move(ab));
  }

  Status hook_error;  // first journal failure seen inside a hook
  auto journal_transition = [&](const ActiveBuild& ab, IndexBuildState st,
                                uint64_t side_log) -> Status {
    JournalIndexBuildRecord rec;
    rec.build_id = ab.build_id;
    rec.state = static_cast<uint8_t>(st);
    rec.op_index = ops_journaled;
    rec.side_log_entries = side_log;
    rec.clock_seconds = total;
    rec.index_name = ab.req->def.name;
    rec.target = ab.req->def.target;
    rec.columns = ab.req->def.columns;
    return sink.Build(rec);
  };

  auto step_ctx = [&]() {
    return db->MakeSessionContext(db->buffer_pool(), db->options().cost);
  };

  // Steps every unfinished build once; `rounds` > 1 after a read batch so
  // build progress per op is the same whether reads were batched or not.
  auto step_builds = [&](uint64_t rounds) -> Status {
    for (uint64_t r = 0; r < rounds; ++r) {
      for (auto& ab : builds) {
        if (!ab.started || ab.build == nullptr || ab.build->done()) continue;
        ExecContext ctx = step_ctx();
        FaultScope scope(opts.fault_scope_salt ^
                         (0x9E3779B97F4A7C15ULL * (ab.build_id + 1)) ^
                         ab.steps_taken);
        ++ab.steps_taken;
        auto st = ab.build->Step(&ctx);
        double spent = ctx.sim_time();
        total += spent;
        out.maintenance_seconds += spent;
        ab.outcome.build_seconds += spent;
        ab.outcome.side_log_peak =
            std::max(ab.outcome.side_log_peak, ab.build->side_log_size());
        if (!st.ok()) {
          // An injected fault aborts this build; the run itself continues
          // (deterministically — the schedule is fixed).
          TB_RETURN_IF_ERROR(ab.build->Abort());
          if (!hook_error.ok()) return hook_error;
          ab.outcome.final_state = IndexBuildState::kAborted;
          continue;
        }
        if (!hook_error.ok()) return hook_error;
        ab.outcome.final_state = *st;
        if (*st == IndexBuildState::kLive && ab.outcome.fingerprint == 0) {
          TB_ASSIGN_OR_RETURN(ab.outcome.fingerprint,
                              db->SecondaryIndexFingerprint(ab.req->def.name));
        }
      }
    }
    return Status::OK();
  };

  auto start_due_builds = [&](uint32_t op) -> Status {
    for (auto& ab : builds) {
      if (ab.started || std::min(ab.req->start_op, spec.num_ops) != op) {
        continue;
      }
      ab.started = true;
      ab.build = std::make_unique<OnlineIndexBuild>(db, ab.req->def,
                                                    ab.req->build);
      ab.build->set_transition_hook(
          [&ab, &journal_transition, &hook_error](IndexBuildState st,
                                                  uint64_t side_log) {
            Status s = journal_transition(ab, st, side_log);
            if (!s.ok() && hook_error.ok()) hook_error = s;
            return s;
          });
      ExecContext ctx = step_ctx();
      Status s = ab.build->Start(&ctx);
      double spent = ctx.sim_time();
      total += spent;
      out.maintenance_seconds += spent;
      ab.outcome.build_seconds += spent;
      if (!s.ok()) {
        TB_RETURN_IF_ERROR(ab.build->Abort());
        if (!hook_error.ok()) return hook_error;
        ab.outcome.final_state = IndexBuildState::kAborted;
        continue;
      }
      if (!hook_error.ok()) return hook_error;
      ab.outcome.final_state = ab.build->state();
    }
    return Status::OK();
  };

  auto drop_due_builds = [&](uint32_t op, bool at_end) -> Status {
    for (auto& ab : builds) {
      if (!ab.req->then_drop || ab.dropped) continue;
      if (!at_end && ab.req->drop_op != op) continue;
      if (ab.build == nullptr ||
          ab.outcome.final_state != IndexBuildState::kLive) {
        if (at_end) continue;  // build never finished; nothing to drop
        return Status::InvalidArgument(
            "drop_op " + std::to_string(op) + " for " + ab.req->def.name +
            " but the build is not live");
      }
      TB_RETURN_IF_ERROR(
          journal_transition(ab, IndexBuildState::kDropping,
                             ab.build->side_log_size()));
      ExecContext ctx = step_ctx();
      {
        FaultScope scope(opts.fault_scope_salt ^
                         (0xC2B2AE3D27D4EB4FULL * (ab.build_id + 1)));
        TB_RETURN_IF_ERROR(db->DropSecondaryIndex(ab.req->def.name, &ctx));
      }
      double spent = ctx.sim_time();
      total += spent;
      out.maintenance_seconds += spent;
      ab.outcome.build_seconds += spent;
      ab.dropped = true;
      ab.outcome.final_state = IndexBuildState::kDropped;
      TB_RETURN_IF_ERROR(
          journal_transition(ab, IndexBuildState::kDropped, 0));
    }
    return Status::OK();
  };

  // ---- read batching ------------------------------------------------------
  std::vector<std::string> batch_sql;
  std::vector<uint32_t> batch_ops;  // global op index per batch entry
  auto flush_reads = [&]() -> Status {
    if (batch_sql.empty()) return Status::OK();
    RunOptions ro;
    ro.repetitions = 1;
    ro.collect_estimates = opts.collect_estimates;
    ro.cold_start = false;  // mid-run: the pool is part of the state
    ro.fault_scope_salt = opts.fault_scope_salt + batch_ops.front();
    WorkloadResult wr;
    if (opts.pool != nullptr) {
      ParallelOptions par;
      par.pool = opts.pool;
      par.window = opts.window;
      TB_ASSIGN_OR_RETURN(wr,
                          RunWorkloadParallel(db, batch_sql, par, ro));
    } else {
      TB_ASSIGN_OR_RETURN(wr, RunWorkload(db, batch_sql, ro));
    }
    for (size_t i = 0; i < batch_sql.size(); ++i) {
      MutationOpOutcome oo;
      oo.kind = MutationOpKind::kRead;
      oo.seconds = wr.timings[i].seconds;
      oo.failed = wr.timings[i].failed;
      if (opts.collect_estimates && i < wr.estimates.size()) {
        oo.has_estimate = true;
        oo.estimate = wr.estimates[i];
      }
      total += oo.seconds;
      out.read_seconds += oo.seconds;
      ++out.reads;

      JournalQueryRecord rec;
      rec.query_index = batch_ops[i];
      rec.seconds = oo.seconds;
      rec.timed_out = wr.timings[i].timed_out;
      rec.failed = oo.failed;
      rec.has_estimate = oo.has_estimate;
      rec.estimate = oo.estimate;
      TB_RETURN_IF_ERROR(sink.Op(rec));
      ++ops_journaled;
      out.ops.push_back(oo);
    }
    uint64_t rounds = batch_sql.size();
    batch_sql.clear();
    batch_ops.clear();
    return step_builds(rounds);
  };

  // ---- main loop ----------------------------------------------------------
  const double p_ins = spec.insert_fraction;
  const double p_upd = p_ins + spec.update_fraction;
  const double p_del = p_upd + spec.delete_fraction;

  for (uint32_t op = 0; op < spec.num_ops; ++op) {
    // Build lifecycle points are sequence points: flush pending reads first
    // so op interleaving is identical in serial and parallel mode.
    bool build_boundary = false;
    for (const auto& ab : builds) {
      if (!ab.started && std::min(ab.req->start_op, spec.num_ops) == op) {
        build_boundary = true;
      }
      if (ab.req->then_drop && !ab.dropped && ab.req->drop_op == op) {
        build_boundary = true;
      }
    }
    if (build_boundary) {
      TB_RETURN_IF_ERROR(flush_reads());
      TB_RETURN_IF_ERROR(drop_due_builds(op, /*at_end=*/false));
      TB_RETURN_IF_ERROR(start_due_builds(op));
    }

    double draw = rng.UniformDouble();
    MutationOpKind kind = draw < p_ins   ? MutationOpKind::kInsert
                          : draw < p_upd ? MutationOpKind::kUpdate
                          : draw < p_del ? MutationOpKind::kDelete
                                         : MutationOpKind::kRead;
    if ((kind == MutationOpKind::kUpdate ||
         kind == MutationOpKind::kDelete) &&
        live.empty()) {
      kind = MutationOpKind::kInsert;
    }

    if (kind == MutationOpKind::kRead) {
      size_t which = static_cast<size_t>(rng.Uniform(spec.read_pool.size()));
      batch_sql.push_back(spec.read_pool[which]);
      batch_ops.push_back(op);
      continue;
    }

    // Mutations execute at sequence points, on this thread, in op order.
    TB_RETURN_IF_ERROR(flush_reads());
    MutationOpOutcome oo;
    oo.kind = kind;
    {
      FaultScope scope(opts.fault_scope_salt + op);
      switch (kind) {
        case MutationOpKind::kInsert: {
          Tuple row = GenRow(*tdef, &rng);
          Rid rid;
          auto r = db->TimedInsert(spec.table, std::move(row), &rid);
          if (r.ok()) {
            oo.seconds = *r;
            live.push_back(rid);
          } else {
            oo.failed = true;
          }
          ++out.inserts;
          break;
        }
        case MutationOpKind::kUpdate: {
          size_t rank = zipf.Sample(&rng);
          size_t idx = live.size() - 1 - (rank % live.size());
          Tuple row = GenRow(*tdef, &rng);
          Rid new_rid;
          auto r = db->TimedUpdate(spec.table, live[idx], std::move(row),
                                   &new_rid);
          if (r.ok()) {
            oo.seconds = *r;
            live.erase(live.begin() + static_cast<ptrdiff_t>(idx));
            live.push_back(new_rid);  // the new version is the youngest row
          } else {
            oo.failed = true;
            // A fault may have landed after the heap tombstone: the victim
            // rid is unreliable either way, so retire it from the live set
            // (identically in every run — the schedule is fixed).
            live.erase(live.begin() + static_cast<ptrdiff_t>(idx));
          }
          ++out.updates;
          break;
        }
        case MutationOpKind::kDelete: {
          size_t rank = zipf.Sample(&rng);
          size_t idx = live.size() - 1 - (rank % live.size());
          auto r = db->TimedDelete(spec.table, live[idx]);
          if (r.ok()) {
            oo.seconds = *r;
          } else {
            oo.failed = true;
          }
          live.erase(live.begin() + static_cast<ptrdiff_t>(idx));
          ++out.deletes;
          break;
        }
        case MutationOpKind::kRead:
          break;  // unreachable
      }
    }
    total += oo.seconds;
    out.maintenance_seconds += oo.seconds;

    // stats_refresh: the ANALYZE the churn eventually forces, charged to
    // the op that tripped it.
    if (opts.stats_refresh > 0 &&
        db->TotalMutationsSinceStats() >= opts.stats_refresh) {
      ExecContext ctx = step_ctx();
      TB_RETURN_IF_ERROR(db->CollectStatisticsCharged(&ctx));
      oo.seconds += ctx.sim_time();
      total += ctx.sim_time();
      out.maintenance_seconds += ctx.sim_time();
      ++out.analyze_runs;
    }

    JournalQueryRecord rec;
    rec.query_index = op;
    rec.seconds = oo.seconds;
    rec.failed = oo.failed;
    TB_RETURN_IF_ERROR(sink.Op(rec));
    ++ops_journaled;
    out.ops.push_back(oo);
    TB_RETURN_IF_ERROR(step_builds(1));
  }

  TB_RETURN_IF_ERROR(flush_reads());
  TB_RETURN_IF_ERROR(start_due_builds(spec.num_ops));

  // Drain unfinished builds: the workload is over, so each step can only
  // shrink the remaining work; bound the loop defensively anyway.
  for (uint64_t guard = 0; guard < 1u << 22; ++guard) {
    bool any = false;
    for (const auto& ab : builds) {
      if (ab.started && ab.build != nullptr && !ab.build->done()) any = true;
    }
    if (!any) break;
    TB_RETURN_IF_ERROR(step_builds(1));
  }
  TB_RETURN_IF_ERROR(drop_due_builds(spec.num_ops, /*at_end=*/true));

  if (verifying && !sink.PrefixDone()) {
    return Status::DataLoss(
        "journal holds more records than the run produced (" +
        std::to_string(loaded.records.size()) + " ops journaled, " +
        std::to_string(sink.verified_ops()) + " verified)");
  }

  // ---- summary ------------------------------------------------------------
  out.total_seconds = total;
  out.final_staleness = db->TotalMutationsSinceStats();
  double gap_sum = 0.0;
  uint64_t gap_n = 0;
  for (const auto& oo : out.ops) {
    if (oo.kind != MutationOpKind::kRead || oo.failed || !oo.has_estimate) {
      continue;
    }
    if (oo.estimate > 0.0 && oo.seconds > 0.0) {
      gap_sum += std::fabs(std::log2(oo.estimate / oo.seconds));
      ++gap_n;
    }
  }
  out.mean_abs_log2_gap = gap_n > 0 ? gap_sum / static_cast<double>(gap_n)
                                    : 0.0;
  for (auto& ab : builds) out.build_outcomes.push_back(std::move(ab.outcome));
  return out;
}

Result<RunJournal> AuditMutationJournal(const std::string& path) {
  RunJournal j;
  TB_ASSIGN_OR_RETURN(j, LoadRunJournal(path));
  // No lost op: records are exactly 0..n-1, in order, no more than the
  // header promised.
  if (j.records.size() > j.header.query_count) {
    return Status::DataLoss("journal holds " +
                            std::to_string(j.records.size()) +
                            " op records but the header promised at most " +
                            std::to_string(j.header.query_count));
  }
  for (size_t i = 0; i < j.records.size(); ++i) {
    if (j.records[i].query_index != i) {
      return Status::DataLoss("op record " + std::to_string(i) +
                              " carries index " +
                              std::to_string(j.records[i].query_index) +
                              "; a record was lost or reordered");
    }
  }
  // Build transitions: legal state machine per build, op anchors and clock
  // monotone (per build and globally, since appends follow op order).
  std::map<uint32_t, const JournalIndexBuildRecord*> last_of;
  uint32_t prev_op = 0;
  for (const auto& rec : j.index_builds) {
    if (rec.index_name.empty() || rec.target.empty()) {
      return Status::DataLoss("build transition with empty name/target");
    }
    if (rec.op_index > j.records.size()) {
      return Status::DataLoss(
          "build transition for " + rec.index_name + " anchored at op " +
          std::to_string(rec.op_index) + " but only " +
          std::to_string(j.records.size()) + " op records exist");
    }
    if (rec.op_index < prev_op) {
      return Status::DataLoss("build transitions out of append order");
    }
    prev_op = rec.op_index;
    auto it = last_of.find(rec.build_id);
    if (it == last_of.end()) {
      if (rec.state != static_cast<uint8_t>(IndexBuildState::kPending)) {
        return Status::DataLoss("build " + std::to_string(rec.build_id) +
                                " does not begin at `pending`");
      }
    } else {
      const JournalIndexBuildRecord& prev = *it->second;
      if (!LegalTransition(prev.state, rec.state)) {
        return Status::DataLoss(
            "illegal transition " + std::to_string(int(prev.state)) + " -> " +
            std::to_string(int(rec.state)) + " for build " +
            std::to_string(rec.build_id));
      }
      if (rec.op_index < prev.op_index ||
          rec.clock_seconds < prev.clock_seconds) {
        return Status::DataLoss("non-monotone anchors for build " +
                                std::to_string(rec.build_id));
      }
      if (rec.index_name != prev.index_name || rec.target != prev.target ||
          rec.columns != prev.columns) {
        return Status::DataLoss("build " + std::to_string(rec.build_id) +
                                " changed identity mid-stream");
      }
    }
    last_of[rec.build_id] = &rec;
  }
  return j;
}

}  // namespace tabbench
