#include "core/goal.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "util/strings.h"

namespace tabbench {

PerformanceGoal PerformanceGoal::FromSteps(std::vector<Step> steps) {
  PerformanceGoal g;
  std::sort(steps.begin(), steps.end(),
            [](const Step& a, const Step& b) {
              return a.from_seconds < b.from_seconds;
            });
  for (size_t i = 1; i < steps.size(); ++i) {
    assert(steps[i].fraction >= steps[i - 1].fraction &&
           "goal must be monotone");
  }
  g.steps_ = std::move(steps);
  return g;
}

PerformanceGoal PerformanceGoal::PaperExample2() {
  return FromSteps({{10.0, 0.10}, {60.0, 0.50}, {1800.0, 0.90}});
}

double PerformanceGoal::At(double x) const {
  double g = 0.0;
  for (const auto& s : steps_) {
    if (x >= s.from_seconds) g = s.fraction;
  }
  return g;
}

bool PerformanceGoal::SatisfiedBy(const CumulativeFrequency& cfc) const {
  return Shortfall(cfc) <= 0.0;
}

double PerformanceGoal::Shortfall(const CumulativeFrequency& cfc) const {
  // G jumps to s.fraction at s.from_seconds; since CFC uses strict '<',
  // the binding comparison for "x% within t seconds" is CFC at just past t.
  double worst = 0.0;
  for (const auto& s : steps_) {
    double reached = cfc.At(
        std::nextafter(s.from_seconds, std::numeric_limits<double>::max()));
    worst = std::max(worst, s.fraction - reached);
  }
  return worst;
}

std::string PerformanceGoal::ToString() const {
  std::vector<std::string> parts;
  for (const auto& s : steps_) {
    parts.push_back(StrFormat("%.0f%% within %s", s.fraction * 100.0,
                              HumanSeconds(s.from_seconds).c_str()));
  }
  return StrJoin(parts, ", ");
}

double ImprovementRatio(double cost_before, double cost_after) {
  if (cost_after <= 0.0) return std::numeric_limits<double>::infinity();
  return cost_before / cost_after;
}

}  // namespace tabbench
