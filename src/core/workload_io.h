#ifndef TABBENCH_CORE_WORKLOAD_IO_H_
#define TABBENCH_CORE_WORKLOAD_IO_H_

#include <string>

#include "core/query_family.h"
#include "util/status.h"

namespace tabbench {

/// Plain-text workload files — the reproducible artifact the paper itself
/// published ("Files available at http://www.cs.toronto.edu/~consens/tab/",
/// footnote 1). Format, line-oriented:
///
///   # tabbench workload v1
///   # family: NREF2J
///   -- R=taxonomy c1=lineage S=source c2=p_name |g|=2
///   SELECT ... ;
///
/// `--` lines carry the binding annotation of the query that follows; a
/// query is one line of SQL terminated by `;`. `#` lines are header
/// comments (the family name is recovered from `# family:`).
Status SaveFamily(const QueryFamily& family, const std::string& path);

Result<QueryFamily> LoadFamily(const std::string& path);

/// Serialization to/from a string (testing, embedding).
std::string FamilyToString(const QueryFamily& family);
Result<QueryFamily> FamilyFromString(const std::string& text);

}  // namespace tabbench

#endif  // TABBENCH_CORE_WORKLOAD_IO_H_
