#ifndef TABBENCH_TYPES_TUPLE_H_
#define TABBENCH_TYPES_TUPLE_H_

#include <string>
#include <vector>

#include "types/value.h"

namespace tabbench {

/// A row of values. Column order matches the owning table / operator schema.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  size_t size() const { return values_.size(); }
  const Value& at(size_t i) const { return values_[i]; }
  Value& at(size_t i) { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  void Append(Value v) { values_.push_back(std::move(v)); }

  /// Concatenation of two tuples (join output).
  static Tuple Concat(const Tuple& a, const Tuple& b);

  /// Projection onto the given column positions.
  Tuple Project(const std::vector<size_t>& cols) const;

  bool operator==(const Tuple& o) const { return values_ == o.values_; }

  size_t Hash() const;
  size_t ByteSize() const;
  std::string ToString() const;

 private:
  std::vector<Value> values_;
};

struct TupleHash {
  size_t operator()(const Tuple& t) const { return t.Hash(); }
};

/// Key for hash-based grouping/joins: a projection of a tuple.
using GroupKey = Tuple;

}  // namespace tabbench

#endif  // TABBENCH_TYPES_TUPLE_H_
