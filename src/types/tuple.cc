#include "types/tuple.h"

namespace tabbench {

Tuple Tuple::Concat(const Tuple& a, const Tuple& b) {
  std::vector<Value> out;
  out.reserve(a.size() + b.size());
  for (const auto& v : a.values()) out.push_back(v);
  for (const auto& v : b.values()) out.push_back(v);
  return Tuple(std::move(out));
}

Tuple Tuple::Project(const std::vector<size_t>& cols) const {
  std::vector<Value> out;
  out.reserve(cols.size());
  for (size_t c : cols) out.push_back(values_[c]);
  return Tuple(std::move(out));
}

size_t Tuple::Hash() const {
  size_t h = 14695981039346656037ULL;
  for (const auto& v : values_) {
    h ^= v.Hash();
    h *= 1099511628211ULL;
  }
  return h;
}

size_t Tuple::ByteSize() const {
  size_t n = 0;
  for (const auto& v : values_) n += v.ByteSize();
  return n;
}

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace tabbench
