#ifndef TABBENCH_TYPES_VALUE_H_
#define TABBENCH_TYPES_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace tabbench {

/// Column data types. The benchmark schemas only need integers, doubles and
/// strings; NULL is a distinct runtime state of Value, not a type.
enum class TypeId : uint8_t {
  kInt = 0,
  kDouble = 1,
  kString = 2,
};

const char* TypeName(TypeId t);

/// A single SQL value: NULL, INT64, DOUBLE, or STRING.
///
/// Values are totally ordered within a type (NULL sorts first); comparing
/// values of different non-null types is a programming error guarded by
/// assert, since the binder type-checks all predicates.
class Value {
 public:
  Value() : v_(Null{}) {}
  explicit Value(int64_t i) : v_(i) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(std::string s) : v_(std::move(s)) {}
  static Value Null_() { return Value(); }

  bool is_null() const { return std::holds_alternative<Null>(v_); }
  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }

  int64_t as_int() const { return std::get<int64_t>(v_); }
  double as_double() const { return std::get<double>(v_); }
  const std::string& as_string() const { return std::get<std::string>(v_); }

  /// Three-way comparison: -1, 0, +1. NULL < any non-null; NULL == NULL
  /// (this is the *sort* order, used by indexes and group-by; SQL ternary
  /// logic is not needed for the benchmark's equality-only predicates).
  int Compare(const Value& other) const;

  bool operator==(const Value& o) const { return Compare(o) == 0; }
  bool operator!=(const Value& o) const { return Compare(o) != 0; }
  bool operator<(const Value& o) const { return Compare(o) < 0; }
  bool operator<=(const Value& o) const { return Compare(o) <= 0; }
  bool operator>(const Value& o) const { return Compare(o) > 0; }
  bool operator>=(const Value& o) const { return Compare(o) >= 0; }

  size_t Hash() const;

  /// SQL-literal rendering: NULL, 42, 3.5, 'text' (quotes escaped).
  std::string ToString() const;

  /// Approximate in-memory footprint in bytes, used for size accounting.
  size_t ByteSize() const;

 private:
  struct Null {
    bool operator==(const Null&) const { return true; }
  };
  std::variant<Null, int64_t, double, std::string> v_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace tabbench

#endif  // TABBENCH_TYPES_VALUE_H_
