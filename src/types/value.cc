#include "types/value.h"

#include <cassert>
#include <cstdio>
#include <functional>

#include "util/strings.h"

namespace tabbench {

const char* TypeName(TypeId t) {
  switch (t) {
    case TypeId::kInt:
      return "INT";
    case TypeId::kDouble:
      return "DOUBLE";
    case TypeId::kString:
      return "STRING";
  }
  return "?";
}

int Value::Compare(const Value& other) const {
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  assert(v_.index() == other.v_.index() && "cross-type comparison");
  if (is_int()) {
    int64_t a = as_int(), b = other.as_int();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (is_double()) {
    double a = as_double(), b = other.as_double();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  int c = as_string().compare(other.as_string());
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

size_t Value::Hash() const {
  if (is_null()) return 0x9e3779b97f4a7c15ULL;
  if (is_int()) return std::hash<int64_t>()(as_int());
  if (is_double()) return std::hash<double>()(as_double());
  return std::hash<std::string>()(as_string());
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int()) return std::to_string(as_int());
  if (is_double()) return StrFormat("%g", as_double());
  std::string out = "'";
  for (char c : as_string()) {
    if (c == '\'') out += "''";
    else out += c;
  }
  out += "'";
  return out;
}

size_t Value::ByteSize() const {
  if (is_null()) return 1;
  if (is_int()) return 8;
  if (is_double()) return 8;
  return 2 + as_string().size();
}

}  // namespace tabbench
