#include "engine/database.h"

#include <algorithm>

#include "optimizer/planner.h"
#include "sql/parser.h"
#include "storage/stats_collector.h"
#include "util/fault_injection.h"
#include "util/strings.h"

namespace tabbench {

Database::Database(DatabaseOptions options)
    : options_(options), pool_(options.buffer_pool_pages) {}

Database::~Database() = default;

Status Database::CreateTable(const TableDef& def) {
  TB_RETURN_IF_ERROR(catalog_.AddTable(def));
  std::vector<TypeId> types;
  for (const auto& c : def.columns) types.push_back(c.type);
  tables_[def.name] = std::make_unique<HeapTable>(
      def.name, TupleCodec(std::move(types)), &store_);
  return Status::OK();
}

Status Database::Insert(const std::string& table, Tuple row) {
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("table " + table);
  const TableDef* def = catalog_.FindTable(table);
  if (row.size() != def->num_columns()) {
    return Status::InvalidArgument(
        StrFormat("arity mismatch inserting into %s: got %zu want %zu",
                  table.c_str(), row.size(), def->num_columns()));
  }
  it->second->Append(row);
  return Status::OK();
}

Status Database::FinishLoad() {
  TB_FAULT_POINT("engine.finish_load");
  TB_RETURN_IF_ERROR(CollectStatistics());
  // Automatic PK indexes: present in every configuration (the paper's P).
  pk_indexes_.clear();
  for (const auto& def : catalog_.tables()) {
    if (def.primary_key.empty()) continue;
    IndexDef idx;
    idx.name = def.name + "_pk";
    idx.target = def.name;
    idx.columns = def.primary_key;
    idx.is_primary = true;
    ExecContext ctx(&store_, &pool_, options_.cost);
    TB_RETURN_IF_ERROR(BuildIndex(idx, &ctx, &pk_indexes_));
  }
  current_config_.name = "P";
  current_config_.indexes.clear();
  current_config_.views.clear();
  return Status::OK();
}

Status Database::CollectStatistics() {
  for (const auto& [name, heap] : tables_) {
    const TableDef* def = catalog_.FindTable(name);
    std::vector<std::string> cols;
    for (const auto& c : def->columns) cols.push_back(c.name);
    stats_.tables[name] = CollectTableStats(*heap, cols);
  }
  stats_ready_ = true;
  mutations_since_stats_.clear();
  return Status::OK();
}

IndexKey Database::ExtractKey(const std::vector<int>& key_cols,
                              const Tuple& row) {
  IndexKey key;
  key.reserve(key_cols.size());
  for (int pos : key_cols) key.push_back(row.at(static_cast<size_t>(pos)));
  return key;
}

Result<double> Database::TimedInsert(const std::string& table, Tuple row,
                                     Rid* out_rid) {
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("table " + table);
  const TableDef* def = catalog_.FindTable(table);
  if (row.size() != def->num_columns()) {
    return Status::InvalidArgument(
        StrFormat("arity mismatch inserting into %s: got %zu want %zu",
                  table.c_str(), row.size(), def->num_columns()));
  }
  HeapTable* heap = it->second.get();
  ExecContext ctx(&store_, &pool_, options_.cost);
  // Single-row DML is random I/O throughout.
  PageTouchFn touch = [&ctx](PageId id) { ctx.TouchPageRandom(id); };

  // Heap append: touches (and possibly allocates) the tail page.
  size_t pages_before = heap->num_pages();
  Rid rid;
  TB_ASSIGN_OR_RETURN(rid, heap->Insert(row, touch));
  if (heap->num_pages() != pages_before) ctx.ChargeIoPages(1);  // page write
  ctx.ChargeTuples(1);

  // Index maintenance on every index of this table (PK + secondary).
  auto maintain = [&](std::vector<std::unique_ptr<BuiltIndex>>* indexes)
      -> Status {
    for (auto& bi : *indexes) {
      if (bi->def.target != table) continue;
      TB_RETURN_IF_ERROR(
          bi->btree->Insert(ExtractKey(bi->info.key_cols, row), rid, touch));
      ctx.ChargeTuples(1);
      // A leaf write accompanies every maintained index entry.
      ctx.ChargeIoPages(1);
    }
    return Status::OK();
  };
  TB_RETURN_IF_ERROR(maintain(&pk_indexes_));
  TB_RETURN_IF_ERROR(maintain(&secondary_indexes_));

  ++mutations_since_stats_[table];
  TableMutation m;
  m.kind = TableMutation::Kind::kInsert;
  m.table = table;
  m.rid = rid;
  m.row = std::move(row);
  NotifyMutation(m);
  if (out_rid != nullptr) *out_rid = rid;
  return ctx.sim_time();
}

Result<double> Database::TimedDelete(const std::string& table,
                                     const Rid& rid) {
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("table " + table);
  HeapTable* heap = it->second.get();
  ExecContext ctx(&store_, &pool_, options_.cost);
  PageTouchFn touch = [&ctx](PageId id) { ctx.TouchPageRandom(id); };

  // The old values are needed to find the row's index entries.
  Tuple row;
  TB_ASSIGN_OR_RETURN(row, heap->Fetch(rid, touch));
  TB_RETURN_IF_ERROR(heap->Delete(rid, touch));
  ctx.ChargeTuples(1);
  ctx.ChargeIoPages(1);  // tombstone write

  auto maintain = [&](std::vector<std::unique_ptr<BuiltIndex>>* indexes)
      -> Status {
    for (auto& bi : *indexes) {
      if (bi->def.target != table) continue;
      TB_RETURN_IF_ERROR(
          bi->btree->Delete(ExtractKey(bi->info.key_cols, row), rid, touch));
      ctx.ChargeTuples(1);
      ctx.ChargeIoPages(1);
    }
    return Status::OK();
  };
  TB_RETURN_IF_ERROR(maintain(&pk_indexes_));
  TB_RETURN_IF_ERROR(maintain(&secondary_indexes_));

  ++mutations_since_stats_[table];
  TableMutation m;
  m.kind = TableMutation::Kind::kDelete;
  m.table = table;
  m.old_rid = rid;
  m.old_row = std::move(row);
  NotifyMutation(m);
  return ctx.sim_time();
}

Result<double> Database::TimedUpdate(const std::string& table, const Rid& rid,
                                     Tuple new_row, Rid* out_new_rid) {
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("table " + table);
  const TableDef* def = catalog_.FindTable(table);
  if (new_row.size() != def->num_columns()) {
    return Status::InvalidArgument(
        StrFormat("arity mismatch updating %s: got %zu want %zu",
                  table.c_str(), new_row.size(), def->num_columns()));
  }
  HeapTable* heap = it->second.get();
  ExecContext ctx(&store_, &pool_, options_.cost);
  PageTouchFn touch = [&ctx](PageId id) { ctx.TouchPageRandom(id); };

  Tuple old_row;
  TB_ASSIGN_OR_RETURN(old_row, heap->Fetch(rid, touch));
  TB_RETURN_IF_ERROR(heap->Delete(rid, touch));
  size_t pages_before = heap->num_pages();
  Rid new_rid;
  TB_ASSIGN_OR_RETURN(new_rid, heap->Insert(new_row, touch));
  if (heap->num_pages() != pages_before) ctx.ChargeIoPages(1);
  ctx.ChargeIoPages(1);  // tombstone write
  ctx.ChargeTuples(1);

  auto maintain = [&](std::vector<std::unique_ptr<BuiltIndex>>* indexes)
      -> Status {
    for (auto& bi : *indexes) {
      if (bi->def.target != table) continue;
      TB_RETURN_IF_ERROR(bi->btree->Update(
          ExtractKey(bi->info.key_cols, old_row), rid,
          ExtractKey(bi->info.key_cols, new_row), new_rid, touch));
      ctx.ChargeTuples(1);
      ctx.ChargeIoPages(1);
    }
    return Status::OK();
  };
  TB_RETURN_IF_ERROR(maintain(&pk_indexes_));
  TB_RETURN_IF_ERROR(maintain(&secondary_indexes_));

  ++mutations_since_stats_[table];
  TableMutation m;
  m.kind = TableMutation::Kind::kUpdate;
  m.table = table;
  m.rid = new_rid;
  m.row = std::move(new_row);
  m.old_rid = rid;
  m.old_row = std::move(old_row);
  NotifyMutation(m);
  if (out_new_rid != nullptr) *out_new_rid = new_rid;
  return ctx.sim_time();
}

uint64_t Database::AddMutationObserver(
    const std::string& table, std::function<void(const TableMutation&)> fn) {
  MutationObserver ob;
  ob.token = next_observer_token_++;
  ob.table = table;
  ob.fn = std::move(fn);
  mutation_observers_.push_back(std::move(ob));
  return mutation_observers_.back().token;
}

void Database::RemoveMutationObserver(uint64_t token) {
  for (auto it = mutation_observers_.begin(); it != mutation_observers_.end();
       ++it) {
    if (it->token == token) {
      mutation_observers_.erase(it);
      return;
    }
  }
}

void Database::NotifyMutation(const TableMutation& m) {
  for (const auto& ob : mutation_observers_) {
    if (ob.table == m.table) ob.fn(m);
  }
}

uint64_t Database::MutationsSinceStats(const std::string& table) const {
  auto it = mutations_since_stats_.find(table);
  return it == mutations_since_stats_.end() ? 0 : it->second;
}

uint64_t Database::TotalMutationsSinceStats() const {
  uint64_t total = 0;
  for (const auto& [table, n] : mutations_since_stats_) total += n;
  return total;
}

Status Database::CollectStatisticsCharged(ExecContext* ctx) {
  // ANALYZE pays a sequential scan of every base heap.
  for (const auto& [name, heap] : tables_) {
    for (PageId pid : heap->pages()) ctx->TouchPage(pid);
    ctx->ChargeTuples(heap->num_rows());
  }
  return CollectStatistics();
}

// ----------------------------------------------------------------- queries

Result<QueryResult> Database::Run(const std::string& sql) {
  TB_FAULT_POINT("engine.query");
  if (!stats_ready_) {
    return Status::Internal("statistics not collected; call FinishLoad()");
  }
  PhysicalPlan plan;
  TB_ASSIGN_OR_RETURN(plan, Plan(sql));
  ExecContext ctx(&store_, &pool_, options_.cost);
  return ExecutePlan(plan, *this, &ctx);
}

ExecContext Database::MakeSessionContext(BufferPool* session_pool,
                                         CostParams params) const {
  // Query execution never writes through the context's store handle; the
  // cast only threads the shared simulated disk into a read-only context.
  return ExecContext(const_cast<PageStore*>(&store_), session_pool, params);
}

Result<QueryResult> Database::RunWithContext(const std::string& sql,
                                             ExecContext* ctx) const {
  TB_FAULT_POINT("engine.query");
  if (!stats_ready_) {
    return Status::Internal("statistics not collected; call FinishLoad()");
  }
  PhysicalPlan plan;
  TB_ASSIGN_OR_RETURN(plan, Plan(sql));
  return ExecutePlan(plan, *this, ctx);
}

Result<QueryResult> Database::RunWithContextVectorized(
    const std::string& sql, ExecContext* ctx,
    const vec::VecExecOptions& vec) const {
  TB_FAULT_POINT("engine.query");
  if (!stats_ready_) {
    return Status::Internal("statistics not collected; call FinishLoad()");
  }
  PhysicalPlan plan;
  TB_ASSIGN_OR_RETURN(plan, Plan(sql));
  auto r = vec::ExecutePlanVectorized(plan, *this, ctx, vec);
  // The vec compiler rejects unsupported shapes before charging anything,
  // so the Volcano executor can run the query from a clean context.
  if (!r.ok() && r.status().IsUnsupported()) {
    return ExecutePlan(plan, *this, ctx);
  }
  return r;
}

Result<Database::AnalyzedRun> Database::RunAnalyze(const std::string& sql) {
  if (!stats_ready_) {
    return Status::Internal("statistics not collected; call FinishLoad()");
  }
  AnalyzedRun out;
  TB_ASSIGN_OR_RETURN(out.plan, Plan(sql));
  ExecContext ctx(&store_, &pool_, options_.cost);
  TB_ASSIGN_OR_RETURN(out.result, ExecutePlanAnalyze(&out.plan, *this, &ctx));
  return out;
}

Result<PhysicalPlan> Database::Plan(const std::string& sql) const {
  BoundQuery q;
  TB_ASSIGN_OR_RETURN(q, ParseAndBind(sql, catalog_));
  ConfigView view = CurrentView();
  return PlanQuery(q, view);
}

Result<double> Database::Estimate(const std::string& sql) const {
  PhysicalPlan plan;
  TB_ASSIGN_OR_RETURN(plan, Plan(sql));
  return plan.est_cost;
}

Result<double> Database::HypotheticalEstimate(
    const std::string& sql, const Configuration& hypothetical,
    const HypotheticalRules& rules) const {
  BoundQuery q;
  TB_ASSIGN_OR_RETURN(q, ParseAndBind(sql, catalog_));
  ConfigView base = CurrentView();
  DatabaseStats degraded;
  if (rules.uniform_value_assumption) {
    degraded = DegradeToUniform(stats_);
    base.stats = &degraded;
  }
  ConfigView hyp;
  TB_ASSIGN_OR_RETURN(hyp, MakeHypotheticalView(hypothetical, base, rules));
  return EstimateCost(q, hyp);
}

ConfigView Database::CurrentView() const {
  ConfigView view;
  view.catalog = &catalog_;
  view.stats = &stats_;
  view.params = options_.cost;
  auto add = [&view](const BuiltIndex& bi) {
    PhysicalIndex pi;
    pi.def = bi.def;
    pi.physical_name = bi.def.name;
    pi.height = static_cast<double>(bi.btree->height());
    pi.leaf_pages = static_cast<double>(bi.btree->num_leaf_pages());
    pi.entries = std::max<double>(1.0, static_cast<double>(bi.btree->num_entries()));
    pi.distinct_keys =
        std::max<double>(1.0, static_cast<double>(bi.btree->num_distinct_keys()));
    pi.clustering_factor = static_cast<double>(bi.btree->clustering_factor());
    pi.hypothetical = false;
    pi.allow_index_only = true;
    view.indexes.push_back(std::move(pi));
  };
  for (const auto& bi : pk_indexes_) add(*bi);
  for (const auto& bi : secondary_indexes_) add(*bi);
  for (const auto& bv : views_) {
    PhysicalView pv;
    pv.def = bv->def;
    pv.physical_name = bv->def.name;
    pv.rows = std::max<double>(1.0, static_cast<double>(bv->heap->num_rows()));
    pv.pages = std::max<double>(1.0, static_cast<double>(bv->heap->num_pages()));
    pv.hypothetical = false;
    view.views.push_back(std::move(pv));
  }
  return view;
}

// ---------------------------------------------------------------- plumbing

uint64_t Database::BasePages() const {
  uint64_t pages = 0;
  for (const auto& [name, heap] : tables_) pages += heap->num_pages();
  for (const auto& bi : pk_indexes_) pages += bi->btree->num_pages();
  return pages;
}

uint64_t Database::SecondaryPages() const {
  uint64_t pages = 0;
  for (const auto& bi : secondary_indexes_) pages += bi->btree->num_pages();
  for (const auto& bv : views_) pages += bv->heap->num_pages();
  return pages;
}

uint64_t Database::TableRowCount(const std::string& table) const {
  auto it = tables_.find(table);
  return it == tables_.end() ? 0 : it->second->num_rows();
}

const HeapTable* Database::FindHeap(const std::string& name) const {
  auto it = tables_.find(name);
  if (it != tables_.end()) return it->second.get();
  for (const auto& bv : views_) {
    if (bv->def.name == name) return bv->heap.get();
  }
  return nullptr;
}

const Database::BuiltIndex* Database::FindBuiltIndex(
    const std::string& name) const {
  for (const auto& bi : pk_indexes_) {
    if (bi->def.name == name) return bi.get();
  }
  for (const auto& bi : secondary_indexes_) {
    if (bi->def.name == name) return bi.get();
  }
  return nullptr;
}

const IndexInfo* Database::FindIndex(const std::string& name) const {
  const BuiltIndex* bi = FindBuiltIndex(name);
  return bi == nullptr ? nullptr : &bi->info;
}

Result<const HeapTable*> Database::GetHeap(const std::string& name) const {
  const HeapTable* h = FindHeap(name);
  if (h == nullptr) return Status::NotFound("heap " + name);
  return h;
}

}  // namespace tabbench
