#ifndef TABBENCH_ENGINE_INDEX_BUILD_H_
#define TABBENCH_ENGINE_INDEX_BUILD_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "engine/database.h"
#include "storage/btree.h"
#include "storage/page_store.h"

namespace tabbench {

/// States of an online (non-blocking) secondary-index build, plus the two
/// teardown states of an online drop. The forward path is strictly
///
///   pending -> scanning -> backfilling -> catching-up -> live
///
/// with `aborted` reachable from any non-terminal state. Each transition is
/// journaled as an fsync'd JournalIndexBuildRecord by the mutation runner,
/// which is what makes a SIGKILL at any point resumable to a byte-identical
/// index: the work itself is deterministic, and the journal pins how far
/// the run's op/transition stream got.
enum class IndexBuildState : uint8_t {
  kPending = 0,
  kScanning = 1,
  kBackfilling = 2,
  kCatchingUp = 3,
  kLive = 4,
  kDropping = 5,
  kDropped = 6,
  kAborted = 7,
};

const char* IndexBuildStateName(IndexBuildState s);

struct IndexBuildOptions {
  /// Rows consumed per Step() quantum (scan rows, backfill is one quantum,
  /// catch-up side-log entries). Small quanta interleave more workload ops
  /// mid-build — exactly what the chaos schedules want to stress.
  uint64_t rows_per_step = 512;
};

/// An incremental, crash-safe CREATE INDEX that runs *while* the write
/// workload does. The classic three-phase online build:
///
///   1. scanning: bounded snapshot scan of the target heap (rows that
///      existed when the build started); concurrent writes land in a side
///      log via the Database's mutation-observer hook.
///   2. backfilling: sort + bulk-build the snapshot into a private B+-tree
///      (same cost model as the offline builder).
///   3. catching-up: drain the side log into the tree — inserts for rows
///      that arrived mid-build, deletes for scanned rows that died (a
///      delete for a row the scan never saw is a harmless no-op).
///
/// When the log drains, the tree installs atomically into the database's
/// secondary-index set (`live`). Every phase advances in bounded Step()
/// quanta charged to the caller's ExecContext, so maintenance cost flows
/// through the simulated clock and the runner fully controls interleaving —
/// the determinism the serial ≡ parallel and kill-resume contracts rest on.
class OnlineIndexBuild {
 public:
  /// Fires as each state is entered, before any work in that state; the
  /// runner's hook journals the transition (and may die there — that is the
  /// kill-resume harness's crash site). A failing hook aborts the build.
  using TransitionFn =
      std::function<Status(IndexBuildState entered, uint64_t side_log_size)>;

  OnlineIndexBuild(Database* db, IndexDef def, IndexBuildOptions options = {});
  ~OnlineIndexBuild();

  OnlineIndexBuild(const OnlineIndexBuild&) = delete;
  OnlineIndexBuild& operator=(const OnlineIndexBuild&) = delete;

  void set_transition_hook(TransitionFn fn) { hook_ = std::move(fn); }

  /// pending -> scanning: validates the target, snapshots the scan bound,
  /// and registers the side-log observer. Charges nothing yet.
  Status Start(ExecContext* ctx);

  /// Runs one bounded quantum of the current phase, charging its I/O and
  /// CPU to `ctx`; advances the state machine when the phase completes and
  /// returns the (possibly new) state. Fault points:
  /// `engine.index_build.scan` / `.backfill` / `.catchup` / `.install`.
  Result<IndexBuildState> Step(ExecContext* ctx);

  /// Drops the private tree and detaches the observer; fires the `aborted`
  /// transition. Used on unrecoverable step failure.
  Status Abort();

  IndexBuildState state() const { return state_; }
  bool done() const {
    return state_ == IndexBuildState::kLive ||
           state_ == IndexBuildState::kAborted;
  }
  uint64_t side_log_size() const { return side_log_.size(); }
  const IndexDef& def() const { return def_; }

 private:
  struct SideLogEntry {
    TableMutation::Kind kind = TableMutation::Kind::kInsert;
    IndexKey key;      // insert / update-new
    Rid rid;
    IndexKey old_key;  // delete / update-old
    Rid old_rid;
  };

  Status EnterState(IndexBuildState s);
  void OnMutation(const TableMutation& m);
  Status StepScan(ExecContext* ctx);
  Status StepBackfill(ExecContext* ctx);
  Status StepCatchUp(ExecContext* ctx);
  void DetachObserver();

  Database* db_;
  IndexDef def_;
  IndexBuildOptions options_;
  TransitionFn hook_;
  IndexBuildState state_ = IndexBuildState::kPending;

  std::vector<int> key_cols_;
  double key_width_ = 0.0;
  const HeapTable* heap_ = nullptr;
  uint64_t observer_token_ = 0;
  bool observing_ = false;

  /// Scan snapshot: rows at rid >= bound existed only after the build
  /// started (the heap is append-only) and belong to the side log.
  Rid scan_bound_;
  /// Live cursor carried across Step() quanta; its touch callback charges
  /// through ctx_, re-pointed at the caller's context on every Step.
  std::optional<HeapTable::Cursor> cursor_;
  ExecContext* ctx_ = nullptr;
  std::vector<std::pair<IndexKey, Rid>> snapshot_;
  std::vector<SideLogEntry> side_log_;
  size_t side_log_applied_ = 0;
  std::unique_ptr<BTree> tree_;
};

/// Result of a what-if (shadow) index build: the real scan + sort work
/// charged to `ctx`, building into a private PageStore that is freed on
/// return — nothing installs. This is the crash-safe "semi-automatic
/// tuning" primitive: the service runs these as background jobs under
/// admission control, and a killed shard just reruns the job elsewhere.
struct ShadowIndexBuildResult {
  uint64_t entries = 0;
  uint64_t pages = 0;
  uint64_t height = 0;
  /// Content+shape fingerprint (BTree::Fingerprint): two shadow builds of
  /// the same definition over the same data agree bit for bit, which is
  /// what the deterministic-replay chaos audit compares across failovers.
  uint64_t fingerprint = 0;
  double sim_seconds = 0.0;
};

Result<ShadowIndexBuildResult> ShadowIndexBuild(const Database& db,
                                                const IndexDef& def,
                                                ExecContext* ctx);

}  // namespace tabbench

#endif  // TABBENCH_ENGINE_INDEX_BUILD_H_
