#include "engine/index_build.h"

#include <algorithm>
#include <cmath>

#include "util/fault_injection.h"

namespace tabbench {

const char* IndexBuildStateName(IndexBuildState s) {
  switch (s) {
    case IndexBuildState::kPending:
      return "pending";
    case IndexBuildState::kScanning:
      return "scanning";
    case IndexBuildState::kBackfilling:
      return "backfilling";
    case IndexBuildState::kCatchingUp:
      return "catching-up";
    case IndexBuildState::kLive:
      return "live";
    case IndexBuildState::kDropping:
      return "dropping";
    case IndexBuildState::kDropped:
      return "dropped";
    case IndexBuildState::kAborted:
      return "aborted";
  }
  return "?";
}

OnlineIndexBuild::OnlineIndexBuild(Database* db, IndexDef def,
                                   IndexBuildOptions options)
    : db_(db), def_(std::move(def)), options_(options) {}

OnlineIndexBuild::~OnlineIndexBuild() { DetachObserver(); }

Status OnlineIndexBuild::EnterState(IndexBuildState s) {
  state_ = s;
  if (hook_) {
    TB_RETURN_IF_ERROR(hook_(s, side_log_.size()));
  }
  return Status::OK();
}

void OnlineIndexBuild::DetachObserver() {
  if (observing_) {
    db_->RemoveMutationObserver(observer_token_);
    observing_ = false;
  }
}

void OnlineIndexBuild::OnMutation(const TableMutation& m) {
  SideLogEntry e;
  e.kind = m.kind;
  switch (m.kind) {
    case TableMutation::Kind::kInsert:
      e.key = Database::ExtractKey(key_cols_, m.row);
      e.rid = m.rid;
      break;
    case TableMutation::Kind::kDelete:
      e.old_key = Database::ExtractKey(key_cols_, m.old_row);
      e.old_rid = m.old_rid;
      break;
    case TableMutation::Kind::kUpdate:
      e.old_key = Database::ExtractKey(key_cols_, m.old_row);
      e.old_rid = m.old_rid;
      e.key = Database::ExtractKey(key_cols_, m.row);
      e.rid = m.rid;
      break;
  }
  side_log_.push_back(std::move(e));
}

Status OnlineIndexBuild::Start(ExecContext* /*ctx*/) {
  if (state_ != IndexBuildState::kPending) {
    return Status::InvalidArgument("index build already started");
  }
  TB_RETURN_IF_ERROR(EnterState(IndexBuildState::kPending));
  if (db_->FindIndex(def_.name) != nullptr) {
    return Status::AlreadyExists("index " + def_.name);
  }
  Database::IndexKeySpec spec;
  TB_ASSIGN_OR_RETURN(spec, db_->ResolveIndexKey(def_));
  key_cols_ = std::move(spec.key_cols);
  key_width_ = spec.key_width;
  heap_ = db_->FindHeap(def_.target);
  if (heap_ == nullptr) {
    return Status::NotFound("index target " + def_.target);
  }

  // Snapshot the scan bound: the heap is append-only, so any row at
  // rid >= bound was written after this instant and reaches the tree only
  // through the side log — each row has exactly one source.
  if (heap_->num_pages() == 0) {
    scan_bound_ = Rid{0, 0};
  } else {
    size_t last = heap_->num_pages() - 1;
    const Page* tail = db_->store_.GetPage(heap_->pages()[last]);
    scan_bound_ = Rid{static_cast<uint32_t>(last),
                      static_cast<uint32_t>(tail->num_slots)};
  }
  observer_token_ = db_->AddMutationObserver(
      def_.target, [this](const TableMutation& m) { OnMutation(m); });
  observing_ = true;

  cursor_.emplace(heap_->Scan([this](PageId id) { ctx_->TouchPage(id); }));
  snapshot_.reserve(heap_->num_rows());
  tree_ = std::make_unique<BTree>(
      def_.name, def_.columns.size(),
      static_cast<size_t>(std::max(4.0, key_width_)), &db_->store_);
  return EnterState(IndexBuildState::kScanning);
}

Result<IndexBuildState> OnlineIndexBuild::Step(ExecContext* ctx) {
  ctx_ = ctx;
  Status s = Status::OK();
  switch (state_) {
    case IndexBuildState::kScanning:
      s = StepScan(ctx);
      break;
    case IndexBuildState::kBackfilling:
      s = StepBackfill(ctx);
      break;
    case IndexBuildState::kCatchingUp:
      s = StepCatchUp(ctx);
      break;
    default:
      return Status::InvalidArgument(
          std::string("index build not steppable in state ") +
          IndexBuildStateName(state_));
  }
  ctx_ = nullptr;
  TB_RETURN_IF_ERROR(s);
  return state_;
}

Status OnlineIndexBuild::StepScan(ExecContext* ctx) {
  TB_FAULT_POINT("engine.index_build.scan");
  Tuple t;
  Rid rid;
  for (uint64_t i = 0; i < options_.rows_per_step; ++i) {
    if (!cursor_->Next(&t, &rid)) break;
    if (!(rid < scan_bound_)) break;  // past the snapshot: side-log territory
    ctx->ChargeTuples(1);
    snapshot_.emplace_back(Database::ExtractKey(key_cols_, t), rid);
    if (i + 1 == options_.rows_per_step) return Status::OK();  // quantum spent
  }
  cursor_.reset();
  return EnterState(IndexBuildState::kBackfilling);
}

Status OnlineIndexBuild::StepBackfill(ExecContext* ctx) {
  TB_FAULT_POINT("engine.index_build.backfill");
  // Same external-sort charge as the offline builder (config_builder.cc).
  double n = static_cast<double>(snapshot_.size());
  if (n > 1) {
    ctx->ChargeHashOps(static_cast<uint64_t>(n * std::log2(n)));
    double bytes = n * (key_width_ + 8.0);
    double pages = bytes / static_cast<double>(kPageSize);
    if (pages > static_cast<double>(ctx->params().work_mem_pages)) {
      ctx->ChargeIoPages(static_cast<uint64_t>(2.0 * pages));
    }
  }
  std::sort(snapshot_.begin(), snapshot_.end(),
            [](const auto& a, const auto& b) {
              int c = CompareKeys(a.first, b.first);
              if (c != 0) return c < 0;
              return a.second < b.second;
            });
  tree_->BulkBuild(std::move(snapshot_));
  snapshot_.clear();
  ctx->ChargeIoPages(tree_->num_pages());  // writing out the tree
  return EnterState(IndexBuildState::kCatchingUp);
}

Status OnlineIndexBuild::StepCatchUp(ExecContext* ctx) {
  TB_FAULT_POINT("engine.index_build.catchup");
  PageTouchFn touch = [ctx](PageId id) { ctx->TouchPageRandom(id); };
  for (uint64_t i = 0;
       i < options_.rows_per_step && side_log_applied_ < side_log_.size();
       ++i, ++side_log_applied_) {
    const SideLogEntry& e = side_log_[side_log_applied_];
    ctx->ChargeTuples(1);
    switch (e.kind) {
      case TableMutation::Kind::kInsert:
        TB_RETURN_IF_ERROR(tree_->Insert(e.key, e.rid, touch));
        ctx->ChargeIoPages(1);
        break;
      case TableMutation::Kind::kDelete: {
        // The scan may never have seen this row (tombstoned before the
        // cursor arrived, or born and killed inside the side log): a miss
        // is a no-op, not corruption.
        Status s = tree_->Delete(e.old_key, e.old_rid, touch);
        if (!s.ok() && !s.IsNotFound()) return s;
        ctx->ChargeIoPages(1);
        break;
      }
      case TableMutation::Kind::kUpdate: {
        Status s = tree_->Delete(e.old_key, e.old_rid, touch);
        if (!s.ok() && !s.IsNotFound()) return s;
        TB_RETURN_IF_ERROR(tree_->Insert(e.key, e.rid, touch));
        ctx->ChargeIoPages(1);
        break;
      }
    }
  }
  if (side_log_applied_ < side_log_.size()) return Status::OK();

  // Side log drained: install atomically. Workload ops only run between
  // Step() quanta (the runner is the only mutator), so nothing can slip
  // into the log between the check above and the install below.
  TB_FAULT_POINT("engine.index_build.install");
  TB_RETURN_IF_ERROR(db_->InstallSecondaryIndex(def_, std::move(tree_),
                                                std::vector<int>(key_cols_)));
  DetachObserver();
  return EnterState(IndexBuildState::kLive);
}

Status OnlineIndexBuild::Abort() {
  if (done() || state_ == IndexBuildState::kPending) {
    state_ = IndexBuildState::kAborted;
    return Status::OK();
  }
  DetachObserver();
  cursor_.reset();
  snapshot_.clear();
  side_log_.clear();
  side_log_applied_ = 0;
  if (tree_ != nullptr) {
    tree_->Drop();
    tree_.reset();
  }
  return EnterState(IndexBuildState::kAborted);
}

Result<ShadowIndexBuildResult> ShadowIndexBuild(const Database& db,
                                                const IndexDef& def,
                                                ExecContext* ctx) {
  double start = ctx->sim_time();
  Database::IndexKeySpec spec;
  TB_ASSIGN_OR_RETURN(spec, db.ResolveIndexKey(def));
  const HeapTable* heap = db.FindHeap(def.target);
  if (heap == nullptr) return Status::NotFound("index target " + def.target);

  std::vector<std::pair<IndexKey, Rid>> entries;
  entries.reserve(heap->num_rows());
  auto cursor = heap->Scan([ctx](PageId id) { ctx->TouchPage(id); });
  Tuple t;
  Rid rid;
  uint64_t seen = 0;
  while (cursor.Next(&t, &rid)) {
    ctx->ChargeTuples(1);
    // Shadow builds run as cancellable background jobs: poll so a watchdog
    // cancel or shard kill tears the scan down promptly.
    if ((++seen & 0x3ff) == 0) TB_RETURN_IF_ERROR(ctx->CheckTimeout());
    IndexKey key;
    key.reserve(spec.key_cols.size());
    for (int pos : spec.key_cols) key.push_back(t.at(static_cast<size_t>(pos)));
    entries.emplace_back(std::move(key), rid);
  }

  double n = static_cast<double>(entries.size());
  if (n > 1) {
    ctx->ChargeHashOps(static_cast<uint64_t>(n * std::log2(n)));
    double bytes = n * (spec.key_width + 8.0);
    double pages = bytes / static_cast<double>(kPageSize);
    if (pages > static_cast<double>(ctx->params().work_mem_pages)) {
      ctx->ChargeIoPages(static_cast<uint64_t>(2.0 * pages));
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              int c = CompareKeys(a.first, b.first);
              if (c != 0) return c < 0;
              return a.second < b.second;
            });

  // Private store: the shadow tree never touches the database's pages, so
  // a cancelled or killed job leaves no trace to clean up.
  PageStore shadow_store;
  ShadowIndexBuildResult out;
  out.entries = static_cast<uint64_t>(entries.size());
  {
    BTree tree(def.name + ".shadow", def.columns.size(),
               static_cast<size_t>(std::max(4.0, spec.key_width)),
               &shadow_store);
    tree.BulkBuild(std::move(entries));
    ctx->ChargeIoPages(tree.num_pages());
    out.pages = tree.num_pages();
    out.height = tree.height();
    out.fingerprint = tree.Fingerprint();
    tree.Drop();
  }
  out.sim_seconds = ctx->sim_time() - start;
  return out;
}

}  // namespace tabbench
