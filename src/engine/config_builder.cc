#include <algorithm>
#include <cmath>

#include "engine/database.h"
#include "exec/operators.h"
#include "optimizer/planner.h"
#include "util/fault_injection.h"
#include "util/strings.h"

namespace tabbench {

namespace {
/// Configuration builds are long-running DDL, not queries: they are not
/// subject to the 30-minute query timeout (paper Table 1 reports build
/// times of up to 2860 minutes).
CostParams BuildParams(CostParams p) {
  p.timeout_seconds = 1e18;
  return p;
}
}  // namespace

Status Database::BuildIndex(const IndexDef& def, ExecContext* ctx,
                            std::vector<std::unique_ptr<BuiltIndex>>* out) {
  if (FindBuiltIndex(def.name) != nullptr) {
    return Status::AlreadyExists("index " + def.name);
  }
  const HeapTable* heap = FindHeap(def.target);
  if (heap == nullptr) {
    return Status::NotFound("index target " + def.target);
  }

  // Resolve key columns to heap positions and estimate the key width.
  std::vector<int> key_cols;
  double key_width = 0.0;
  const TableDef* tdef = catalog_.FindTable(def.target);
  if (tdef != nullptr) {
    for (const auto& c : def.columns) {
      int pos = tdef->ColumnIndex(c);
      if (pos < 0) {
        return Status::NotFound("column " + c + " in " + def.target);
      }
      key_cols.push_back(pos);
      key_width += tdef->columns[static_cast<size_t>(pos)].avg_width;
    }
  } else {
    // Index over a materialized view: columns are view column names.
    const BuiltView* view = nullptr;
    for (const auto& bv : views_) {
      if (bv->def.name == def.target) view = bv.get();
    }
    if (view == nullptr) return Status::NotFound("view " + def.target);
    for (const auto& c : def.columns) {
      int pos = -1;
      for (size_t i = 0; i < view->def.projection.size(); ++i) {
        if (view->def.projection[i].view_name == c) {
          pos = static_cast<int>(i);
          break;
        }
      }
      if (pos < 0) {
        return Status::NotFound("view column " + c + " in " + def.target);
      }
      key_cols.push_back(pos);
      const TableDef* base =
          catalog_.FindTable(view->def.projection[static_cast<size_t>(pos)].table);
      int bc = base == nullptr
                   ? -1
                   : base->ColumnIndex(
                         view->def.projection[static_cast<size_t>(pos)].column);
      key_width += (base != nullptr && bc >= 0)
                       ? base->columns[static_cast<size_t>(bc)].avg_width
                       : 8;
    }
  }

  // Scan the heap extracting (key, rid) pairs.
  std::vector<std::pair<IndexKey, Rid>> entries;
  entries.reserve(heap->num_rows());
  auto cursor = heap->Scan([ctx](PageId id) { ctx->TouchPage(id); });
  Tuple t;
  Rid rid;
  while (cursor.Next(&t, &rid)) {
    ctx->ChargeTuples(1);
    IndexKey key;
    key.reserve(key_cols.size());
    for (int pos : key_cols) key.push_back(t.at(static_cast<size_t>(pos)));
    entries.emplace_back(std::move(key), rid);
  }

  // External sort charge: n log2(n) comparisons plus a spill pass when the
  // run exceeds work memory.
  double n = static_cast<double>(entries.size());
  if (n > 1) {
    ctx->ChargeHashOps(static_cast<uint64_t>(n * std::log2(n)));
    double bytes = n * (key_width + 8.0);
    double pages = bytes / static_cast<double>(kPageSize);
    if (pages > static_cast<double>(ctx->params().work_mem_pages)) {
      ctx->ChargeIoPages(static_cast<uint64_t>(2.0 * pages));
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              int c = CompareKeys(a.first, b.first);
              if (c != 0) return c < 0;
              return a.second < b.second;
            });

  auto bi = std::make_unique<BuiltIndex>();
  bi->def = def;
  bi->btree = std::make_unique<BTree>(
      def.name, def.columns.size(),
      static_cast<size_t>(std::max(4.0, key_width)), &store_);
  bi->btree->BulkBuild(std::move(entries));
  // Writing out the tree.
  ctx->ChargeIoPages(bi->btree->num_pages());
  bi->info.btree = bi->btree.get();
  bi->info.heap = heap;
  bi->info.key_cols = key_cols;
  out->push_back(std::move(bi));
  return Status::OK();
}

Result<Database::IndexKeySpec> Database::ResolveIndexKey(
    const IndexDef& def) const {
  // Online builds target base tables (views are static snapshots; an index
  // over one is built atomically by ApplyConfiguration).
  const TableDef* tdef = catalog_.FindTable(def.target);
  if (tdef == nullptr) {
    return Status::NotFound("index target table " + def.target);
  }
  IndexKeySpec spec;
  for (const auto& c : def.columns) {
    int pos = tdef->ColumnIndex(c);
    if (pos < 0) {
      return Status::NotFound("column " + c + " in " + def.target);
    }
    spec.key_cols.push_back(pos);
    spec.key_width += tdef->columns[static_cast<size_t>(pos)].avg_width;
  }
  return spec;
}

Status Database::InstallSecondaryIndex(IndexDef def,
                                       std::unique_ptr<BTree> btree,
                                       std::vector<int> key_cols) {
  if (FindBuiltIndex(def.name) != nullptr) {
    return Status::AlreadyExists("index " + def.name);
  }
  const HeapTable* heap = FindHeap(def.target);
  if (heap == nullptr) {
    return Status::NotFound("index target " + def.target);
  }
  auto bi = std::make_unique<BuiltIndex>();
  bi->def = def;
  bi->btree = std::move(btree);
  bi->info.btree = bi->btree.get();
  bi->info.heap = heap;
  bi->info.key_cols = std::move(key_cols);
  secondary_indexes_.push_back(std::move(bi));
  current_config_.indexes.push_back(std::move(def));
  return Status::OK();
}

Status Database::DropSecondaryIndex(const std::string& name,
                                    ExecContext* ctx) {
  TB_FAULT_POINT("engine.index_build.drop");
  for (auto it = secondary_indexes_.begin(); it != secondary_indexes_.end();
       ++it) {
    if ((*it)->def.name != name) continue;
    if (ctx != nullptr) {
      // Unlinking the tree rewrites its page allocation metadata.
      ctx->ChargeIoPages((*it)->btree->num_pages());
    }
    (*it)->btree->Drop();
    secondary_indexes_.erase(it);
    for (auto cit = current_config_.indexes.begin();
         cit != current_config_.indexes.end(); ++cit) {
      if (cit->name == name) {
        current_config_.indexes.erase(cit);
        break;
      }
    }
    return Status::OK();
  }
  return Status::NotFound("secondary index " + name);
}

Result<uint64_t> Database::SecondaryIndexFingerprint(
    const std::string& name) const {
  for (const auto& bi : secondary_indexes_) {
    if (bi->def.name == name) return bi->btree->Fingerprint();
  }
  return Status::NotFound("secondary index " + name);
}

Status Database::BuildView(const ViewDef& def, ExecContext* ctx,
                           std::vector<std::unique_ptr<BuiltView>>* out) {
  for (const auto& bv : views_) {
    if (bv->def.name == def.name) {
      return Status::AlreadyExists("view " + def.name);
    }
  }
  // Synthesize the defining query: SELECT projection FROM tables WHERE joins.
  BoundQuery q;
  for (const auto& t : def.tables) {
    if (catalog_.FindTable(t) == nullptr) {
      return Status::NotFound("view base table " + t);
    }
    q.relations.push_back(t);
    q.aliases.push_back(t);
  }
  auto resolve = [&](const std::string& table,
                     const std::string& column) -> Result<BoundColumn> {
    BoundColumn c;
    for (int r = 0; r < q.num_relations(); ++r) {
      if (q.relations[static_cast<size_t>(r)] != table) continue;
      const TableDef* tdef = catalog_.FindTable(table);
      int ci = tdef->ColumnIndex(column);
      if (ci < 0) return Status::NotFound("column " + column);
      c.rel = r;
      c.col = ci;
      c.table = table;
      c.column = column;
      c.type = tdef->columns[static_cast<size_t>(ci)].type;
      return c;
    }
    return Status::NotFound("view table " + table);
  };
  for (const auto& j : def.joins) {
    BoundJoin bj;
    TB_ASSIGN_OR_RETURN(bj.left, resolve(j.left_table, j.left_column));
    TB_ASSIGN_OR_RETURN(bj.right, resolve(j.right_table, j.right_column));
    q.joins.push_back(std::move(bj));
  }
  std::vector<TypeId> types;
  for (const auto& pc : def.projection) {
    BoundSelectItem s;
    s.kind = BoundSelectItem::Kind::kColumn;
    TB_ASSIGN_OR_RETURN(s.column, resolve(pc.table, pc.column));
    types.push_back(s.column.type);
    q.select.push_back(std::move(s));
  }

  ConfigView view = CurrentView();
  PhysicalPlan plan;
  TB_ASSIGN_OR_RETURN(plan, PlanQuery(q, view));

  auto bv = std::make_unique<BuiltView>();
  bv->def = def;
  bv->types = types;
  bv->heap =
      std::make_unique<HeapTable>(def.name, TupleCodec(types), &store_);

  // Stream the defining query straight into the view heap.
  InSets empty_sets;
  std::unique_ptr<Operator> root;
  TB_ASSIGN_OR_RETURN(root, BuildOperator(*plan.root, *this, empty_sets, ctx));
  TB_RETURN_IF_ERROR(root->Open());
  Tuple t;
  for (;;) {
    auto more = root->Next(&t);
    if (!more.ok()) return more.status();
    if (!*more) break;
    bv->heap->Append(t);
  }
  ctx->ChargeIoPages(bv->heap->num_pages());  // writing the view out
  out->push_back(std::move(bv));
  return Status::OK();
}

Result<BuildReport> Database::ApplyConfiguration(const Configuration& config) {
  TB_FAULT_POINT("engine.apply_config");
  TB_RETURN_IF_ERROR(ResetToPrimary());
  BuildReport report;
  ExecContext ctx(&store_, &pool_, BuildParams(options_.cost));

  // Views first so that indexes over them can find their heaps.
  for (const auto& vd : config.views) {
    double before = ctx.sim_time();
    TB_RETURN_IF_ERROR(BuildView(vd, &ctx, &views_));
    ObjectBuild ob;
    ob.name = vd.name;
    ob.kind = ObjectBuild::Kind::kView;
    ob.pages = views_.back()->heap->num_pages();
    ob.build_seconds = ctx.sim_time() - before;
    report.secondary_pages += ob.pages;
    report.objects.push_back(std::move(ob));
  }
  for (const auto& idx : config.indexes) {
    if (idx.is_primary) continue;
    double before = ctx.sim_time();
    TB_RETURN_IF_ERROR(BuildIndex(idx, &ctx, &secondary_indexes_));
    ObjectBuild ob;
    ob.name = idx.name;
    ob.kind = ObjectBuild::Kind::kIndex;
    ob.pages = secondary_indexes_.back()->btree->num_pages();
    ob.build_seconds = ctx.sim_time() - before;
    report.secondary_pages += ob.pages;
    report.objects.push_back(std::move(ob));
  }
  report.build_seconds = ctx.sim_time();
  current_config_ = config;
  // Builds churn the cache; benchmark runs start cold, as the paper's
  // dedicated-machine runs effectively did after configuration builds.
  pool_.Clear();
  return report;
}

Status Database::ResetToPrimary() {
  for (auto& bi : secondary_indexes_) bi->btree->Drop();
  secondary_indexes_.clear();
  for (auto& bv : views_) bv->heap->Drop();
  views_.clear();
  current_config_.name = "P";
  current_config_.indexes.clear();
  current_config_.views.clear();
  pool_.Clear();
  return Status::OK();
}

}  // namespace tabbench
