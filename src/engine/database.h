#ifndef TABBENCH_ENGINE_DATABASE_H_
#define TABBENCH_ENGINE_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/configuration.h"
#include "exec/exec_context.h"
#include "exec/plan_executor.h"
#include "exec/vec/vec_executor.h"
#include "optimizer/config_view.h"
#include "optimizer/whatif.h"
#include "sql/binder.h"
#include "storage/btree.h"
#include "storage/buffer_pool.h"
#include "storage/heap_table.h"
#include "storage/page_store.h"
#include "stats/table_stats.h"
#include "util/status.h"

namespace tabbench {

struct DatabaseOptions {
  /// Buffer-pool capacity. The default keeps the paper's regime: raw data an
  /// order of magnitude larger than memory (Section 3.2.1).
  size_t buffer_pool_pages = 1536;
  CostParams cost;
};

/// One built object of a configuration (Table 1 accounting).
struct ObjectBuild {
  std::string name;
  enum class Kind { kIndex, kView } kind = Kind::kIndex;
  uint64_t pages = 0;
  double build_seconds = 0.0;
};

/// Result of applying a configuration: per-object and total build cost.
struct BuildReport {
  std::vector<ObjectBuild> objects;
  double build_seconds = 0.0;
  /// Pages of secondary indexes + materialized views (excludes base data
  /// and PK indexes).
  uint64_t secondary_pages = 0;
};

/// The RDBMS facade: storage, statistics, optimizer, executor, and
/// physical-design state, behind one handle. This is the "system" that the
/// benchmark configures and measures.
class Database : public ObjectResolver {
 public:
  explicit Database(DatabaseOptions options = {});
  ~Database() override;

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // ------------------------------------------------------------- schema/load
  Status CreateTable(const TableDef& def);
  /// Bulk append during initial load (not timed).
  Status Insert(const std::string& table, Tuple row);
  /// Creates the automatic primary-key indexes (the P configuration's only
  /// indexes) and collects statistics. Call once after loading.
  Status FinishLoad();

  /// Timed single-row insert: appends to the heap and maintains every index
  /// on the table, charging I/O/CPU to a fresh context sharing the buffer
  /// pool. Returns simulated seconds (the Section 4.4 experiment).
  Result<double> TimedInsert(const std::string& table, Tuple row);

  // ----------------------------------------------------------- configurations
  /// Builds `config` on top of the primary-key baseline, dropping any
  /// previously applied secondary configuration first. Views are
  /// materialized by executing their defining join; indexes are bulk-built
  /// from a scan + sort. All work is charged to simulated time.
  Result<BuildReport> ApplyConfiguration(const Configuration& config);

  /// Drops all secondary indexes and views (back to P).
  Status ResetToPrimary();

  const Configuration& current_config() const { return current_config_; }

  // ------------------------------------------------------------------ queries
  /// Parses, binds, optimizes against the current configuration, and
  /// executes. The buffer pool stays warm across calls (queries run
  /// back-to-back as in the paper's workload runs).
  Result<QueryResult> Run(const std::string& sql);

  /// Builds an ExecContext whose page accounting goes to `session_pool` — a
  /// session's private buffer-pool view — instead of the shared pool. The
  /// storage it routes over is the database's (read-only under queries).
  ExecContext MakeSessionContext(BufferPool* session_pool,
                                 CostParams params) const;

  /// Like Run, but executes in the caller-provided context (private session
  /// pool, per-job deadline/cancellation, optional trace recording). Purely
  /// read-only with respect to the database: many threads may call this
  /// concurrently — each with its own context — as long as no DDL,
  /// configuration change, or insert runs at the same time. This is the
  /// execution path of the concurrent WorkloadService (src/service/) and of
  /// the parallel workload runners (src/core/runner.h).
  Result<QueryResult> RunWithContext(const std::string& sql,
                                     ExecContext* ctx) const;

  /// Like RunWithContext, but runs the morsel-driven vectorized engine
  /// (src/exec/vec/) when the plan shape supports it, with `vec` carrying
  /// the thread pool and per-query parallelism budget. Unsupported plan
  /// shapes fall back to the Volcano executor transparently. Simulated
  /// costs, results, pool state, and timeout behavior are bit-identical to
  /// RunWithContext either way (the vec engine's determinism contract).
  Result<QueryResult> RunWithContextVectorized(
      const std::string& sql, ExecContext* ctx,
      const vec::VecExecOptions& vec) const;

  /// Optimizes only; returns the chosen plan with E(q, C_current).
  /// Read-only and safe to call concurrently (planning consults only the
  /// catalog, statistics, and built-structure metadata).
  Result<PhysicalPlan> Plan(const std::string& sql) const;

  /// EXPLAIN ANALYZE: executes and returns both the result and the plan
  /// annotated with measured per-operator cardinalities (the paper's
  /// missing "observe" step, Section 6).
  struct AnalyzedRun {
    QueryResult result;
    PhysicalPlan plan;
  };
  Result<AnalyzedRun> RunAnalyze(const std::string& sql);

  /// E(q, C_current): the optimizer's estimate in the built configuration.
  /// Concurrency-safe like Plan().
  Result<double> Estimate(const std::string& sql) const;

  /// H(q, C_h, C_current): what-if estimate of a configuration that is NOT
  /// built, derived per `rules` (Section 5 of the paper). Concurrency-safe
  /// like Plan().
  Result<double> HypotheticalEstimate(const std::string& sql,
                                      const Configuration& hypothetical,
                                      const HypotheticalRules& rules) const;

  /// Planner view of the currently built configuration, with measured
  /// index/view statistics.
  ConfigView CurrentView() const;

  // ----------------------------------------------------------------- plumbing
  Catalog* mutable_catalog() { return &catalog_; }
  const Catalog& catalog() const { return catalog_; }
  const DatabaseStats& stats() const { return stats_; }
  BufferPool* buffer_pool() { return &pool_; }
  const BufferPool& buffer_pool() const { return pool_; }
  /// Hit/miss accounting of the shared pool since the last Clear().
  BufferPoolStats buffer_stats() const { return pool_.stats(); }
  const DatabaseOptions& options() const { return options_; }

  /// Pages of base heaps + primary-key indexes (the P footprint).
  uint64_t BasePages() const;
  /// Pages of currently built secondary indexes + views.
  uint64_t SecondaryPages() const;
  uint64_t TableRowCount(const std::string& table) const;

  /// Re-collects statistics (after inserts).
  Status CollectStatistics();

  // ObjectResolver:
  const HeapTable* FindHeap(const std::string& name) const override;
  const IndexInfo* FindIndex(const std::string& name) const override;

 private:
  struct BuiltIndex {
    IndexDef def;
    std::unique_ptr<BTree> btree;
    IndexInfo info;
  };
  struct BuiltView {
    ViewDef def;
    std::unique_ptr<HeapTable> heap;
    std::vector<TypeId> types;
  };

  Status BuildIndex(const IndexDef& def, ExecContext* ctx,
                    std::vector<std::unique_ptr<BuiltIndex>>* out);
  Status BuildView(const ViewDef& def, ExecContext* ctx,
                   std::vector<std::unique_ptr<BuiltView>>* out);
  Result<const HeapTable*> GetHeap(const std::string& name) const;
  const BuiltIndex* FindBuiltIndex(const std::string& name) const;

  DatabaseOptions options_;
  Catalog catalog_;
  PageStore store_;
  BufferPool pool_;
  std::map<std::string, std::unique_ptr<HeapTable>> tables_;
  DatabaseStats stats_;
  bool stats_ready_ = false;

  std::vector<std::unique_ptr<BuiltIndex>> pk_indexes_;
  std::vector<std::unique_ptr<BuiltIndex>> secondary_indexes_;
  std::vector<std::unique_ptr<BuiltView>> views_;
  Configuration current_config_;
};

}  // namespace tabbench

#endif  // TABBENCH_ENGINE_DATABASE_H_
