#ifndef TABBENCH_ENGINE_DATABASE_H_
#define TABBENCH_ENGINE_DATABASE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/configuration.h"
#include "exec/exec_context.h"
#include "exec/plan_executor.h"
#include "exec/vec/vec_executor.h"
#include "optimizer/config_view.h"
#include "optimizer/whatif.h"
#include "sql/binder.h"
#include "storage/btree.h"
#include "storage/buffer_pool.h"
#include "storage/heap_table.h"
#include "storage/page_store.h"
#include "stats/table_stats.h"
#include "util/status.h"

namespace tabbench {

struct DatabaseOptions {
  /// Buffer-pool capacity. The default keeps the paper's regime: raw data an
  /// order of magnitude larger than memory (Section 3.2.1).
  size_t buffer_pool_pages = 1536;
  CostParams cost;
};

/// One built object of a configuration (Table 1 accounting).
struct ObjectBuild {
  std::string name;
  enum class Kind { kIndex, kView } kind = Kind::kIndex;
  uint64_t pages = 0;
  double build_seconds = 0.0;
};

/// Result of applying a configuration: per-object and total build cost.
struct BuildReport {
  std::vector<ObjectBuild> objects;
  double build_seconds = 0.0;
  /// Pages of secondary indexes + materialized views (excludes base data
  /// and PK indexes).
  uint64_t secondary_pages = 0;
};

/// One committed write against a base table, as seen by a mutation
/// observer (an online index build capturing its side log). For an update,
/// the row moved: the heap is append-only, so the new version lives at a
/// fresh Rid and `old_rid`/`old_row` describe the tombstoned version.
struct TableMutation {
  enum class Kind : uint8_t { kInsert = 0, kDelete = 1, kUpdate = 2 };
  Kind kind = Kind::kInsert;
  std::string table;
  Rid rid;        // inserted / new-version row (insert, update)
  Tuple row;      // its values
  Rid old_rid;    // deleted / old-version row (delete, update)
  Tuple old_row;  // its values
};

/// The RDBMS facade: storage, statistics, optimizer, executor, and
/// physical-design state, behind one handle. This is the "system" that the
/// benchmark configures and measures.
class Database : public ObjectResolver {
 public:
  explicit Database(DatabaseOptions options = {});
  ~Database() override;

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // ------------------------------------------------------------- schema/load
  Status CreateTable(const TableDef& def);
  /// Bulk append during initial load (not timed).
  Status Insert(const std::string& table, Tuple row);
  /// Creates the automatic primary-key indexes (the P configuration's only
  /// indexes) and collects statistics. Call once after loading.
  Status FinishLoad();

  /// Timed single-row insert: appends to the heap and maintains every index
  /// on the table, charging I/O/CPU to a fresh context sharing the buffer
  /// pool. Returns simulated seconds (the Section 4.4 experiment). `rid`
  /// (optional) receives the new row's address.
  Result<double> TimedInsert(const std::string& table, Tuple row,
                             Rid* rid = nullptr);

  /// Timed single-row delete: tombstones the heap row and removes its entry
  /// from every index on the table. NotFound if `rid` is dead or out of
  /// range. Same clock contract as TimedInsert.
  Result<double> TimedDelete(const std::string& table, const Rid& rid);

  /// Timed single-row update: tombstone + re-append (the heap is
  /// append-only), with every index entry moved from the old (key, rid) to
  /// the new. `new_rid` (optional) receives the row's new address — updates
  /// physically relocate rows, which is what decays index clustering under
  /// churn. Same clock contract as TimedInsert.
  Result<double> TimedUpdate(const std::string& table, const Rid& rid,
                             Tuple new_row, Rid* new_rid = nullptr);

  // -------------------------------------------------------- mutation plumbing
  /// Registers an observer for committed writes against `table` (an online
  /// index build capturing its side log). Returns a token for removal.
  /// Observers fire after the heap and every installed index were updated.
  uint64_t AddMutationObserver(const std::string& table,
                               std::function<void(const TableMutation&)> fn);
  void RemoveMutationObserver(uint64_t token);

  /// Writes against `table` (and all tables) committed since statistics
  /// were last collected — the staleness signal the stats_refresh policy
  /// trips on, and the divergence knob behind the paper's E-vs-A gap.
  uint64_t MutationsSinceStats(const std::string& table) const;
  uint64_t TotalMutationsSinceStats() const;

  /// CollectStatistics with the work charged to `ctx`: a sequential scan of
  /// every heap (page touches + per-row CPU), the cost a real ANALYZE pays.
  /// Resets the staleness counters.
  Status CollectStatisticsCharged(ExecContext* ctx);

  // ----------------------------------------------------------- configurations
  /// Builds `config` on top of the primary-key baseline, dropping any
  /// previously applied secondary configuration first. Views are
  /// materialized by executing their defining join; indexes are bulk-built
  /// from a scan + sort. All work is charged to simulated time.
  Result<BuildReport> ApplyConfiguration(const Configuration& config);

  /// Drops all secondary indexes and views (back to P).
  Status ResetToPrimary();

  // ------------------------------------------------- online index lifecycle
  /// Resolved key layout of an index over a base table: heap column
  /// positions and the estimated encoded key width (fanout sizing).
  struct IndexKeySpec {
    std::vector<int> key_cols;
    double key_width = 0.0;
  };
  Result<IndexKeySpec> ResolveIndexKey(const IndexDef& def) const;

  /// Installs a finished secondary index (an online build reaching `live`):
  /// wires it into the planner's view and appends its def to the current
  /// configuration. AlreadyExists if the name is taken.
  Status InstallSecondaryIndex(IndexDef def, std::unique_ptr<BTree> btree,
                               std::vector<int> key_cols);

  /// Drops one secondary index by name (the online drop lifecycle; also
  /// removes it from the current configuration). Charges the page frees to
  /// `ctx` when non-null. Fault point: `engine.index_build.drop`.
  Status DropSecondaryIndex(const std::string& name, ExecContext* ctx);

  /// Content+shape fingerprint (BTree::Fingerprint) of a built secondary
  /// index — what the kill-resume harness compares between an interrupted
  /// and an uninterrupted build. NotFound if no such index is built.
  Result<uint64_t> SecondaryIndexFingerprint(const std::string& name) const;

  const Configuration& current_config() const { return current_config_; }

  // ------------------------------------------------------------------ queries
  /// Parses, binds, optimizes against the current configuration, and
  /// executes. The buffer pool stays warm across calls (queries run
  /// back-to-back as in the paper's workload runs).
  Result<QueryResult> Run(const std::string& sql);

  /// Builds an ExecContext whose page accounting goes to `session_pool` — a
  /// session's private buffer-pool view — instead of the shared pool. The
  /// storage it routes over is the database's (read-only under queries).
  ExecContext MakeSessionContext(BufferPool* session_pool,
                                 CostParams params) const;

  /// Like Run, but executes in the caller-provided context (private session
  /// pool, per-job deadline/cancellation, optional trace recording). Purely
  /// read-only with respect to the database: many threads may call this
  /// concurrently — each with its own context — as long as no DDL,
  /// configuration change, or insert runs at the same time. This is the
  /// execution path of the concurrent WorkloadService (src/service/) and of
  /// the parallel workload runners (src/core/runner.h).
  Result<QueryResult> RunWithContext(const std::string& sql,
                                     ExecContext* ctx) const;

  /// Like RunWithContext, but runs the morsel-driven vectorized engine
  /// (src/exec/vec/) when the plan shape supports it, with `vec` carrying
  /// the thread pool and per-query parallelism budget. Unsupported plan
  /// shapes fall back to the Volcano executor transparently. Simulated
  /// costs, results, pool state, and timeout behavior are bit-identical to
  /// RunWithContext either way (the vec engine's determinism contract).
  Result<QueryResult> RunWithContextVectorized(
      const std::string& sql, ExecContext* ctx,
      const vec::VecExecOptions& vec) const;

  /// Optimizes only; returns the chosen plan with E(q, C_current).
  /// Read-only and safe to call concurrently (planning consults only the
  /// catalog, statistics, and built-structure metadata).
  Result<PhysicalPlan> Plan(const std::string& sql) const;

  /// EXPLAIN ANALYZE: executes and returns both the result and the plan
  /// annotated with measured per-operator cardinalities (the paper's
  /// missing "observe" step, Section 6).
  struct AnalyzedRun {
    QueryResult result;
    PhysicalPlan plan;
  };
  Result<AnalyzedRun> RunAnalyze(const std::string& sql);

  /// E(q, C_current): the optimizer's estimate in the built configuration.
  /// Concurrency-safe like Plan().
  Result<double> Estimate(const std::string& sql) const;

  /// H(q, C_h, C_current): what-if estimate of a configuration that is NOT
  /// built, derived per `rules` (Section 5 of the paper). Concurrency-safe
  /// like Plan().
  Result<double> HypotheticalEstimate(const std::string& sql,
                                      const Configuration& hypothetical,
                                      const HypotheticalRules& rules) const;

  /// Planner view of the currently built configuration, with measured
  /// index/view statistics.
  ConfigView CurrentView() const;

  // ----------------------------------------------------------------- plumbing
  Catalog* mutable_catalog() { return &catalog_; }
  const Catalog& catalog() const { return catalog_; }
  const DatabaseStats& stats() const { return stats_; }
  BufferPool* buffer_pool() { return &pool_; }
  const BufferPool& buffer_pool() const { return pool_; }
  /// Hit/miss accounting of the shared pool since the last Clear().
  BufferPoolStats buffer_stats() const { return pool_.stats(); }
  const DatabaseOptions& options() const { return options_; }

  /// Pages of base heaps + primary-key indexes (the P footprint).
  uint64_t BasePages() const;
  /// Pages of currently built secondary indexes + views.
  uint64_t SecondaryPages() const;
  uint64_t TableRowCount(const std::string& table) const;

  /// Re-collects statistics (after inserts).
  Status CollectStatistics();

  // ObjectResolver:
  const HeapTable* FindHeap(const std::string& name) const override;
  const IndexInfo* FindIndex(const std::string& name) const override;

 private:
  /// The online build drives private pieces directly: it allocates its tree
  /// in store_ and extracts keys with ExtractKey for its side log.
  friend class OnlineIndexBuild;

  struct BuiltIndex {
    IndexDef def;
    std::unique_ptr<BTree> btree;
    IndexInfo info;
  };
  struct BuiltView {
    ViewDef def;
    std::unique_ptr<HeapTable> heap;
    std::vector<TypeId> types;
  };

  Status BuildIndex(const IndexDef& def, ExecContext* ctx,
                    std::vector<std::unique_ptr<BuiltIndex>>* out);
  Status BuildView(const ViewDef& def, ExecContext* ctx,
                   std::vector<std::unique_ptr<BuiltView>>* out);
  Result<const HeapTable*> GetHeap(const std::string& name) const;
  const BuiltIndex* FindBuiltIndex(const std::string& name) const;

  /// Extracts this index's key from a full heap row.
  static IndexKey ExtractKey(const std::vector<int>& key_cols,
                             const Tuple& row);
  void NotifyMutation(const TableMutation& m);

  DatabaseOptions options_;
  Catalog catalog_;
  PageStore store_;
  BufferPool pool_;
  std::map<std::string, std::unique_ptr<HeapTable>> tables_;
  DatabaseStats stats_;
  bool stats_ready_ = false;

  struct MutationObserver {
    uint64_t token = 0;
    std::string table;
    std::function<void(const TableMutation&)> fn;
  };
  std::vector<MutationObserver> mutation_observers_;
  uint64_t next_observer_token_ = 1;
  std::map<std::string, uint64_t> mutations_since_stats_;

  std::vector<std::unique_ptr<BuiltIndex>> pk_indexes_;
  std::vector<std::unique_ptr<BuiltIndex>> secondary_indexes_;
  std::vector<std::unique_ptr<BuiltView>> views_;
  Configuration current_config_;
};

}  // namespace tabbench

#endif  // TABBENCH_ENGINE_DATABASE_H_
