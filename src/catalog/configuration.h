#ifndef TABBENCH_CATALOG_CONFIGURATION_H_
#define TABBENCH_CATALOG_CONFIGURATION_H_

#include <string>
#include <vector>

namespace tabbench {

/// Definition of a (B+-tree) index over 1..4 columns of a base table or a
/// materialized view. The paper observed no recommended index wider than 4
/// columns (Tables 2 and 3); we allow arbitrary width but advisors cap at 4.
struct IndexDef {
  std::string name;
  /// Base-table name, or a view name for indexes over materialized views.
  std::string target;
  std::vector<std::string> columns;
  /// True for the automatically-created primary-key index (P configuration).
  bool is_primary = false;

  bool operator==(const IndexDef& o) const {
    return target == o.target && columns == o.columns;
  }
};

/// A column of a materialized view, referencing `table.column` of one of the
/// view's base tables.
struct ViewColumn {
  std::string table;
  std::string column;
  /// Name of the column inside the view ("<table>_<column>" by default).
  std::string view_name;
};

/// An equi-join predicate between two base tables of a view.
struct ViewJoin {
  std::string left_table, left_column;
  std::string right_table, right_column;
};

/// Definition of a materialized view: the join of `tables` under the
/// conjunction of `joins`, projected onto `projection`. Single-table views
/// (vertical partitions of one table) have empty `joins`.
///
/// This structural form — rather than arbitrary SQL — is exactly what the
/// paper's recommenders produced ("materialized views over joins of base
/// tables", Section 3.2.3) and what the planner's view-matching understands.
struct ViewDef {
  std::string name;
  std::vector<std::string> tables;
  std::vector<ViewJoin> joins;
  std::vector<ViewColumn> projection;

  /// Index of the view column that exposes `table.column`, or -1.
  int ViewColumnIndex(const std::string& table,
                      const std::string& column) const;
};

/// A physical-design configuration C_i (Section 2.2): the set of secondary
/// indexes and materialized views layered on top of the base tables.
/// Primary-key indexes always exist and belong to every configuration.
struct Configuration {
  std::string name;
  std::vector<IndexDef> indexes;
  std::vector<ViewDef> views;

  bool HasIndex(const IndexDef& def) const;
  /// Number of secondary (non-PK) indexes with exactly `width` columns on
  /// `target` (Table 2 / Table 3 accounting).
  int CountIndexes(const std::string& target, int width) const;
};

}  // namespace tabbench

#endif  // TABBENCH_CATALOG_CONFIGURATION_H_
