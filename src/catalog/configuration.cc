#include "catalog/configuration.h"

namespace tabbench {

int ViewDef::ViewColumnIndex(const std::string& table,
                             const std::string& column) const {
  for (size_t i = 0; i < projection.size(); ++i) {
    if (projection[i].table == table && projection[i].column == column) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

bool Configuration::HasIndex(const IndexDef& def) const {
  for (const auto& idx : indexes) {
    if (idx == def) return true;
  }
  return false;
}

int Configuration::CountIndexes(const std::string& target, int width) const {
  int n = 0;
  for (const auto& idx : indexes) {
    if (idx.is_primary) continue;
    if (idx.target == target &&
        static_cast<int>(idx.columns.size()) == width) {
      ++n;
    }
  }
  return n;
}

}  // namespace tabbench
