#ifndef TABBENCH_CATALOG_TABLE_DEF_H_
#define TABBENCH_CATALOG_TABLE_DEF_H_

#include <string>
#include <vector>

#include "types/value.h"

namespace tabbench {

/// A column in a base table.
///
/// `domain` is the paper's notion of a *semantic domain* (Section 3.2.2):
/// "grouping columns in the schema by domains, and allowing joins on
/// attributes in the same domain only". Two columns are join-compatible iff
/// they carry the same non-empty domain tag.
///
/// `indexable` marks columns eligible for index creation; the paper ignores
/// non-indexable columns (e.g. the multi-KB protein `sequence` text) both in
/// queries and in the 1C baseline.
struct ColumnDef {
  std::string name;
  TypeId type = TypeId::kInt;
  std::string domain;
  bool indexable = true;

  /// Average encoded width in bytes, used to size pages/indexes before data
  /// exists (e.g. for hypothetical-configuration sizing).
  int avg_width = 8;
};

/// A foreign-key constraint: `columns` of this table reference
/// `ref_columns` of `ref_table`.
struct ForeignKeyDef {
  std::vector<std::string> columns;
  std::string ref_table;
  std::vector<std::string> ref_columns;
};

/// Schema of a base table. Primary keys are named columns; the storage layer
/// creates the PK index automatically (the paper's P configuration).
struct TableDef {
  std::string name;
  std::vector<ColumnDef> columns;
  std::vector<std::string> primary_key;
  std::vector<ForeignKeyDef> foreign_keys;

  /// Index of the named column, or -1.
  int ColumnIndex(const std::string& col_name) const;
  const ColumnDef& column(size_t i) const { return columns[i]; }
  size_t num_columns() const { return columns.size(); }

  /// Positions of all indexable columns.
  std::vector<int> IndexableColumns() const;

  /// Positions of the primary-key columns, in PK order.
  std::vector<int> PrimaryKeyColumns() const;
};

}  // namespace tabbench

#endif  // TABBENCH_CATALOG_TABLE_DEF_H_
