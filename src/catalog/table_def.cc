#include "catalog/table_def.h"

namespace tabbench {

int TableDef::ColumnIndex(const std::string& col_name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == col_name) return static_cast<int>(i);
  }
  return -1;
}

std::vector<int> TableDef::IndexableColumns() const {
  std::vector<int> out;
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].indexable) out.push_back(static_cast<int>(i));
  }
  return out;
}

std::vector<int> TableDef::PrimaryKeyColumns() const {
  std::vector<int> out;
  for (const auto& pk : primary_key) {
    int idx = ColumnIndex(pk);
    if (idx >= 0) out.push_back(idx);
  }
  return out;
}

}  // namespace tabbench
