#include "catalog/catalog.h"

namespace tabbench {

Status Catalog::AddTable(TableDef def) {
  if (def.name.empty()) {
    return Status::InvalidArgument("table name must not be empty");
  }
  if (by_name_.count(def.name)) {
    return Status::AlreadyExists("table " + def.name);
  }
  for (const auto& pk : def.primary_key) {
    if (def.ColumnIndex(pk) < 0) {
      return Status::InvalidArgument("PK column " + pk + " not in table " +
                                     def.name);
    }
  }
  for (const auto& fk : def.foreign_keys) {
    if (fk.columns.size() != fk.ref_columns.size()) {
      return Status::InvalidArgument("FK arity mismatch on " + def.name);
    }
    for (const auto& c : fk.columns) {
      if (def.ColumnIndex(c) < 0) {
        return Status::InvalidArgument("FK column " + c + " not in table " +
                                       def.name);
      }
    }
  }
  by_name_[def.name] = tables_.size();
  tables_.push_back(std::move(def));
  return Status::OK();
}

const TableDef* Catalog::FindTable(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return nullptr;
  return &tables_[it->second];
}

Result<const TableDef*> Catalog::GetTable(const std::string& name) const {
  const TableDef* t = FindTable(name);
  if (t == nullptr) return Status::NotFound("table " + name);
  return t;
}

std::vector<ColumnRef> Catalog::IndexableColumns() const {
  std::vector<ColumnRef> out;
  for (const auto& t : tables_) {
    for (const auto& c : t.columns) {
      if (c.indexable) out.push_back({t.name, c.name});
    }
  }
  return out;
}

std::string Catalog::DomainOf(const ColumnRef& ref) const {
  const TableDef* t = FindTable(ref.table);
  if (t == nullptr) return "";
  int i = t->ColumnIndex(ref.column);
  if (i < 0) return "";
  return t->columns[static_cast<size_t>(i)].domain;
}

bool Catalog::JoinCompatible(const ColumnRef& a, const ColumnRef& b) const {
  const TableDef* ta = FindTable(a.table);
  const TableDef* tb = FindTable(b.table);
  if (ta == nullptr || tb == nullptr) return false;
  int ia = ta->ColumnIndex(a.column);
  int ib = tb->ColumnIndex(b.column);
  if (ia < 0 || ib < 0) return false;
  const ColumnDef& ca = ta->columns[static_cast<size_t>(ia)];
  const ColumnDef& cb = tb->columns[static_cast<size_t>(ib)];
  return ca.indexable && cb.indexable && !ca.domain.empty() &&
         ca.domain == cb.domain;
}

std::vector<std::pair<ColumnRef, ColumnRef>> Catalog::JoinCompatiblePairs(
    bool include_self_joins) const {
  std::vector<std::pair<ColumnRef, ColumnRef>> out;
  std::vector<ColumnRef> cols = IndexableColumns();
  for (size_t i = 0; i < cols.size(); ++i) {
    for (size_t j = i; j < cols.size(); ++j) {
      if (cols[i].table == cols[j].table && !include_self_joins) continue;
      if (i == j && !include_self_joins) continue;
      if (JoinCompatible(cols[i], cols[j])) {
        out.emplace_back(cols[i], cols[j]);
      }
    }
  }
  return out;
}

std::vector<std::pair<ColumnRef, ColumnRef>> Catalog::ForeignKeyJoin(
    const std::string& child, const std::string& parent) const {
  std::vector<std::pair<ColumnRef, ColumnRef>> out;
  const TableDef* tc = FindTable(child);
  if (tc == nullptr) return out;
  for (const auto& fk : tc->foreign_keys) {
    if (fk.ref_table != parent) continue;
    for (size_t i = 0; i < fk.columns.size(); ++i) {
      out.emplace_back(ColumnRef{child, fk.columns[i]},
                       ColumnRef{parent, fk.ref_columns[i]});
    }
    return out;  // first matching FK wins
  }
  return out;
}

}  // namespace tabbench
