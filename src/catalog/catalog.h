#ifndef TABBENCH_CATALOG_CATALOG_H_
#define TABBENCH_CATALOG_CATALOG_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "catalog/configuration.h"
#include "catalog/table_def.h"
#include "util/status.h"

namespace tabbench {

/// A fully-resolved reference to a column of a base table.
struct ColumnRef {
  std::string table;
  std::string column;

  bool operator==(const ColumnRef& o) const {
    return table == o.table && column == o.column;
  }
  bool operator<(const ColumnRef& o) const {
    return std::tie(table, column) < std::tie(o.table, o.column);
  }
  std::string ToString() const { return table + "." + column; }
};

/// The schema registry: base-table definitions, semantic domains, and
/// constraint metadata. Shared, read-only during query processing.
class Catalog {
 public:
  Status AddTable(TableDef def);

  const TableDef* FindTable(const std::string& name) const;
  Result<const TableDef*> GetTable(const std::string& name) const;
  const std::vector<TableDef>& tables() const { return tables_; }

  /// All (table, column) pairs whose column is indexable — the columns that
  /// receive an index in the paper's 1C baseline configuration.
  std::vector<ColumnRef> IndexableColumns() const;

  /// Domain of a column ("" if the table/column does not exist).
  std::string DomainOf(const ColumnRef& ref) const;

  /// True iff both columns exist, both are indexable, and they share the
  /// same non-empty semantic domain (the paper's join-compatibility rule).
  bool JoinCompatible(const ColumnRef& a, const ColumnRef& b) const;

  /// All columns of `table` that are join-compatible with columns of other
  /// tables (or of `table` itself when self_join is true).
  std::vector<std::pair<ColumnRef, ColumnRef>> JoinCompatiblePairs(
      bool include_self_joins) const;

  /// The PK/FK join predicates between `child` and `parent` tables, i.e. the
  /// column correspondences declared by a foreign key of `child` referencing
  /// `parent`. Empty if no FK links them.
  std::vector<std::pair<ColumnRef, ColumnRef>> ForeignKeyJoin(
      const std::string& child, const std::string& parent) const;

 private:
  std::vector<TableDef> tables_;
  std::map<std::string, size_t> by_name_;
};

}  // namespace tabbench

#endif  // TABBENCH_CATALOG_CATALOG_H_
