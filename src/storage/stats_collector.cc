#include "storage/stats_collector.h"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace tabbench {

namespace {

ColumnStats BuildColumnStats(std::vector<Value> values, uint64_t row_count,
                             const StatsOptions& opts) {
  ColumnStats cs;
  cs.row_count = row_count;
  // Partition out NULLs.
  std::vector<Value> non_null;
  non_null.reserve(values.size());
  for (auto& v : values) {
    if (v.is_null()) {
      ++cs.null_count;
    } else {
      non_null.push_back(std::move(v));
    }
  }
  if (non_null.empty()) return cs;
  std::sort(non_null.begin(), non_null.end());
  cs.min = non_null.front();
  cs.max = non_null.back();

  // Value frequencies (runs in the sorted vector).
  std::vector<std::pair<Value, uint64_t>> freqs;
  for (size_t i = 0; i < non_null.size();) {
    size_t j = i;
    while (j < non_null.size() && non_null[j] == non_null[i]) ++j;
    freqs.emplace_back(non_null[i], static_cast<uint64_t>(j - i));
    i = j;
  }
  cs.num_distinct = freqs.size();

  // Frequency-of-frequency summary, with one example value per frequency
  // (used by the workload generators' constant-selection rules).
  std::map<uint64_t, uint64_t> fof;
  std::map<uint64_t, Value> fex;
  for (const auto& [v, f] : freqs) {
    fof[f] += 1;
    fex.try_emplace(f, v);
  }
  cs.freq_of_freq.assign(fof.begin(), fof.end());
  cs.freq_examples.assign(fex.begin(), fex.end());
  constexpr size_t kMaxFreqExamples = 96;
  if (cs.freq_examples.size() > kMaxFreqExamples) {
    // Keep a log-spaced subset across the frequency range.
    std::vector<std::pair<uint64_t, Value>> kept;
    size_t n = cs.freq_examples.size();
    for (size_t i = 0; i < kMaxFreqExamples; ++i) {
      size_t pos = i * (n - 1) / (kMaxFreqExamples - 1);
      if (kept.empty() || kept.back().first != cs.freq_examples[pos].first) {
        kept.push_back(cs.freq_examples[pos]);
      }
    }
    cs.freq_examples = std::move(kept);
  }

  // MCVs: top-k by frequency (ties broken by value order for determinism).
  std::vector<size_t> order(freqs.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (freqs[a].second != freqs[b].second) {
      return freqs[a].second > freqs[b].second;
    }
    return freqs[a].first < freqs[b].first;
  });
  size_t num_mcv = std::min(opts.num_mcvs, freqs.size());
  std::vector<bool> is_mcv(freqs.size(), false);
  for (size_t i = 0; i < num_mcv; ++i) {
    cs.mcvs.push_back(freqs[order[i]]);
    is_mcv[order[i]] = true;
  }

  // Histogram over the non-MCV remainder (sorted expansion).
  std::vector<Value> rest;
  rest.reserve(non_null.size());
  for (size_t i = 0; i < freqs.size(); ++i) {
    if (is_mcv[i]) continue;
    for (uint64_t r = 0; r < freqs[i].second; ++r) rest.push_back(freqs[i].first);
  }
  cs.histogram = EquiDepthHistogram::Build(rest, opts.histogram_buckets);
  return cs;
}

}  // namespace

TableStats CollectTableStats(const HeapTable& table,
                             const std::vector<std::string>& column_names,
                             const StatsOptions& opts) {
  TableStats ts;
  ts.row_count = table.num_rows();
  ts.pages = table.num_pages();
  ts.avg_row_bytes =
      table.num_rows() == 0
          ? 0.0
          : static_cast<double>(table.total_bytes()) /
                static_cast<double>(table.num_rows());

  const size_t ncols = column_names.size();
  // One pass per column keeps peak memory to a single column's values.
  for (size_t c = 0; c < ncols; ++c) {
    std::vector<Value> values;
    values.reserve(table.num_rows());
    auto cursor = table.Scan(/*touch=*/nullptr);
    Tuple t;
    while (cursor.Next(&t, nullptr)) {
      values.push_back(t.at(c));
    }
    ts.columns[column_names[c]] =
        BuildColumnStats(std::move(values), table.num_rows(), opts);
  }
  return ts;
}

}  // namespace tabbench
