#include "storage/buffer_pool.h"

#include <cassert>

namespace tabbench {

BufferPool::BufferPool(size_t capacity_pages)
    : capacity_(capacity_pages == 0 ? 1 : capacity_pages) {}

bool BufferPool::Touch(PageId id) {
  auto it = map_.find(id);
  if (it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    ++hits_;
    return true;
  }
  ++misses_;
  if (map_.size() >= capacity_) {
    PageId victim = lru_.back();
    lru_.pop_back();
    map_.erase(victim);
  }
  lru_.push_front(id);
  map_[id] = lru_.begin();
  return false;
}

void BufferPool::Evict(PageId id) {
  auto it = map_.find(id);
  if (it == map_.end()) return;
  lru_.erase(it->second);
  map_.erase(it);
}

void BufferPool::Clear() {
  lru_.clear();
  map_.clear();
  ResetCounters();
}

void BufferPool::SetCapacity(size_t capacity_pages) {
  capacity_ = capacity_pages == 0 ? 1 : capacity_pages;
  while (map_.size() > capacity_) {
    PageId victim = lru_.back();
    lru_.pop_back();
    map_.erase(victim);
  }
}

}  // namespace tabbench
