#include "storage/heap_table.h"

#include <cassert>
#include <cstring>

#include "util/fault_injection.h"

namespace tabbench {

namespace {
void PutRecord(Page* page, const std::vector<uint8_t>& rec) {
  uint16_t len = static_cast<uint16_t>(rec.size());
  std::memcpy(page->data + page->used, &len, 2);
  std::memcpy(page->data + page->used + 2, rec.data(), rec.size());
  page->used += 2 + static_cast<uint32_t>(rec.size());
  page->num_slots += 1;
}
}  // namespace

HeapTable::HeapTable(std::string name, TupleCodec codec, PageStore* store)
    : name_(std::move(name)), codec_(std::move(codec)), store_(store) {}

Rid HeapTable::Append(const Tuple& t) {
  std::vector<uint8_t> rec;
  codec_.Encode(t, &rec);
  assert(rec.size() + 2 <= kPageSize && "record larger than a page");
  if (pages_.empty() ||
      store_->GetPage(pages_.back())->used + rec.size() + 2 > kPageSize) {
    pages_.push_back(store_->Allocate());
  }
  Page* page = store_->GetPage(pages_.back());
  uint32_t slot = page->num_slots;
  PutRecord(page, rec);
  ++num_rows_;
  total_bytes_ += rec.size();
  return Rid{static_cast<uint32_t>(pages_.size() - 1), slot};
}

Result<Rid> HeapTable::Insert(const Tuple& t, const PageTouchFn& touch) {
  TB_FAULT_POINT("storage.heap_insert");
  Rid rid = Append(t);
  if (touch) touch(pages_[rid.page_ordinal]);
  return rid;
}

bool HeapTable::IsDeleted(size_t page_ordinal, size_t slot) const {
  return page_ordinal < deleted_.size() && slot < deleted_[page_ordinal].size() &&
         deleted_[page_ordinal][slot] != 0;
}

bool HeapTable::IsLive(const Rid& rid) const {
  if (rid.page_ordinal >= pages_.size()) return false;
  const Page* page = store_->GetPage(pages_[rid.page_ordinal]);
  if (rid.slot >= page->num_slots) return false;
  return !IsDeleted(rid.page_ordinal, rid.slot);
}

Status HeapTable::Delete(const Rid& rid, const PageTouchFn& touch) {
  TB_FAULT_POINT("storage.heap_delete");
  if (rid.page_ordinal >= pages_.size()) {
    return Status::NotFound("rid page out of range in " + name_);
  }
  PageId pid = pages_[rid.page_ordinal];
  if (touch) touch(pid);
  const Page* page = store_->GetPage(pid);
  if (rid.slot >= page->num_slots) {
    return Status::NotFound("rid slot out of range in " + name_);
  }
  if (IsDeleted(rid.page_ordinal, rid.slot)) {
    return Status::NotFound("row already deleted in " + name_);
  }
  if (deleted_.size() <= rid.page_ordinal) deleted_.resize(pages_.size());
  auto& bitmap = deleted_[rid.page_ordinal];
  if (bitmap.size() <= rid.slot) bitmap.resize(page->num_slots, 0);
  bitmap[rid.slot] = 1;
  --num_rows_;
  ++num_deleted_;
  return Status::OK();
}

Result<Tuple> HeapTable::Fetch(const Rid& rid, const PageTouchFn& touch) const {
  TB_FAULT_POINT("storage.heap_fetch");
  if (rid.page_ordinal >= pages_.size()) {
    return Status::NotFound("rid page out of range in " + name_);
  }
  if (IsDeleted(rid.page_ordinal, rid.slot)) {
    return Status::NotFound("row deleted in " + name_);
  }
  PageId pid = pages_[rid.page_ordinal];
  if (touch) touch(pid);
  const Page* page = store_->GetPage(pid);
  if (rid.slot >= page->num_slots) {
    return Status::NotFound("rid slot out of range in " + name_);
  }
  size_t off = 0;
  for (uint32_t s = 0; s < rid.slot; ++s) {
    uint16_t len;
    std::memcpy(&len, page->data + off, 2);
    off += 2 + len;
  }
  off += 2;  // skip the record's own length header
  return codec_.Decode(page->data, &off);
}

HeapTable::Cursor::Cursor(const HeapTable* table, PageTouchFn touch)
    : table_(table), touch_(std::move(touch)) {}

bool HeapTable::Cursor::Next(Tuple* t, Rid* rid) {
  while (page_ordinal_ < table_->pages_.size()) {
    PageId pid = table_->pages_[page_ordinal_];
    const Page* page = table_->store_->GetPage(pid);
    if (slot_ == 0) {
      // Once per scanned page, like the I/O it models; latched because a
      // cursor cannot propagate Status.
      TB_FAULT_TRIGGER("storage.heap_scan");
      if (touch_) touch_(pid);
    }
    if (slot_ < page->num_slots) {
      if (table_->IsDeleted(page_ordinal_, slot_)) {
        // Tombstone: still decode past the record bytes (records are
        // back-to-back), but don't surface the row.
        uint16_t len;
        std::memcpy(&len, page->data + offset_, 2);
        offset_ += 2u + len;
        ++slot_;
        continue;
      }
      offset_ += 2;  // record length header
      *t = table_->codec_.Decode(page->data, &offset_);
      if (rid != nullptr) {
        *rid = Rid{static_cast<uint32_t>(page_ordinal_),
                   static_cast<uint32_t>(slot_)};
      }
      ++slot_;
      return true;
    }
    ++page_ordinal_;
    slot_ = 0;
    offset_ = 0;
  }
  return false;
}

void HeapTable::Drop() {
  for (PageId pid : pages_) store_->Free(pid);
  pages_.clear();
  deleted_.clear();
  num_rows_ = 0;
  num_deleted_ = 0;
  total_bytes_ = 0;
}

}  // namespace tabbench
