#include "storage/page_store.h"

#include <cassert>

#include "util/fault_injection.h"

namespace tabbench {

PageId PageStore::Allocate() {
  // Latched: Allocate cannot return Status; a firing fault surfaces at the
  // executor's next safe point (util/fault_injection.h).
  TB_FAULT_TRIGGER("storage.page_alloc");
  pages_.push_back(std::make_unique<Page>());
  ++live_pages_;
  return pages_.size() - 1;
}

Page* PageStore::GetPage(PageId id) {
  assert(id < pages_.size() && pages_[id] != nullptr);
  return pages_[id].get();
}

const Page* PageStore::GetPage(PageId id) const {
  TB_FAULT_TRIGGER("storage.page_read");
  assert(id < pages_.size() && pages_[id] != nullptr);
  return pages_[id].get();
}

void PageStore::Free(PageId id) {
  assert(id < pages_.size());
  if (pages_[id] != nullptr) {
    pages_[id].reset();
    --live_pages_;
  }
}

}  // namespace tabbench
