#include "storage/page_store.h"

#include <cassert>

namespace tabbench {

PageId PageStore::Allocate() {
  pages_.push_back(std::make_unique<Page>());
  ++live_pages_;
  return pages_.size() - 1;
}

Page* PageStore::GetPage(PageId id) {
  assert(id < pages_.size() && pages_[id] != nullptr);
  return pages_[id].get();
}

const Page* PageStore::GetPage(PageId id) const {
  assert(id < pages_.size() && pages_[id] != nullptr);
  return pages_[id].get();
}

void PageStore::Free(PageId id) {
  assert(id < pages_.size());
  if (pages_[id] != nullptr) {
    pages_[id].reset();
    --live_pages_;
  }
}

}  // namespace tabbench
