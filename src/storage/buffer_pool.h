#ifndef TABBENCH_STORAGE_BUFFER_POOL_H_
#define TABBENCH_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "storage/page_store.h"

namespace tabbench {

/// Point-in-time accounting snapshot of one buffer pool.
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  size_t resident = 0;
  size_t capacity = 0;

  uint64_t accesses() const { return hits + misses; }
  /// Hits over accesses; 0 before any access.
  double HitRatio() const {
    uint64_t total = accesses();
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

/// LRU buffer pool. Tracks *which* pages are resident; the page bytes live
/// in the PageStore (memory is the simulated disk), so the pool's job is
/// purely to decide hit vs. miss for cost accounting — mirroring the paper's
/// setup where "the raw data size is an order of magnitude larger than the
/// main memory of the computers utilized" (Section 3.2.1).
///
/// Not internally synchronized: a pool is a single-threaded object. The
/// concurrent service layer gives every session its own pool view
/// (src/service/session.h) rather than locking this hot path.
class BufferPool {
 public:
  explicit BufferPool(size_t capacity_pages);

  /// Records an access to `id`. Returns true on hit; on miss the page is
  /// brought in (evicting the LRU page if full) and false is returned.
  bool Touch(PageId id);

  /// Forgets a page (e.g. when an index is dropped).
  void Evict(PageId id);

  /// Drops everything (cold cache between benchmark runs) and zeroes the
  /// hit/miss counters — a cleared pool starts a fresh accounting epoch.
  void Clear();

  /// Resizes the pool (the DBA knob). Shrinking evicts LRU pages.
  void SetCapacity(size_t capacity_pages);

  size_t capacity() const { return capacity_; }
  size_t resident() const { return map_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  void ResetCounters() { hits_ = misses_ = 0; }
  BufferPoolStats stats() const {
    return {hits_, misses_, resident(), capacity_};
  }

 private:
  size_t capacity_;
  std::list<PageId> lru_;  // front = most recent
  std::unordered_map<PageId, std::list<PageId>::iterator> map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace tabbench

#endif  // TABBENCH_STORAGE_BUFFER_POOL_H_
