#include "storage/tuple_codec.h"

#include <cassert>
#include <cstring>

namespace tabbench {

namespace {
void PutU64(uint64_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}
uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}
void PutU32(uint32_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}
uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}
}  // namespace

void TupleCodec::Encode(const Tuple& t, std::vector<uint8_t>* out) const {
  assert(t.size() == types_.size());
  for (size_t i = 0; i < types_.size(); ++i) {
    const Value& v = t.at(i);
    if (v.is_null()) {
      out->push_back(0);
      continue;
    }
    out->push_back(1);
    switch (types_[i]) {
      case TypeId::kInt:
        PutU64(static_cast<uint64_t>(v.as_int()), out);
        break;
      case TypeId::kDouble: {
        uint64_t bits;
        double d = v.as_double();
        std::memcpy(&bits, &d, 8);
        PutU64(bits, out);
        break;
      }
      case TypeId::kString: {
        const std::string& s = v.as_string();
        PutU32(static_cast<uint32_t>(s.size()), out);
        out->insert(out->end(), s.begin(), s.end());
        break;
      }
    }
  }
}

Tuple TupleCodec::Decode(const uint8_t* data, size_t* offset) const {
  std::vector<Value> vals;
  vals.reserve(types_.size());
  size_t off = *offset;
  for (TypeId t : types_) {
    uint8_t tag = data[off++];
    if (tag == 0) {
      vals.emplace_back();
      continue;
    }
    switch (t) {
      case TypeId::kInt:
        vals.emplace_back(static_cast<int64_t>(GetU64(data + off)));
        off += 8;
        break;
      case TypeId::kDouble: {
        uint64_t bits = GetU64(data + off);
        off += 8;
        double d;
        std::memcpy(&d, &bits, 8);
        vals.emplace_back(d);
        break;
      }
      case TypeId::kString: {
        uint32_t len = GetU32(data + off);
        off += 4;
        vals.emplace_back(
            std::string(reinterpret_cast<const char*>(data + off), len));
        off += len;
        break;
      }
    }
  }
  *offset = off;
  return Tuple(std::move(vals));
}

size_t TupleCodec::EncodedSize(const Tuple& t) const {
  size_t n = 0;
  for (size_t i = 0; i < types_.size(); ++i) {
    const Value& v = t.at(i);
    n += 1;
    if (v.is_null()) continue;
    switch (types_[i]) {
      case TypeId::kInt:
      case TypeId::kDouble:
        n += 8;
        break;
      case TypeId::kString:
        n += 4 + v.as_string().size();
        break;
    }
  }
  return n;
}

}  // namespace tabbench
