#ifndef TABBENCH_STORAGE_TUPLE_CODEC_H_
#define TABBENCH_STORAGE_TUPLE_CODEC_H_

#include <cstdint>
#include <vector>

#include "types/tuple.h"
#include "types/value.h"

namespace tabbench {

/// Row serialization for heap pages. Format, per column:
///   1 tag byte: 0 = NULL, 1 = present
///   INT / DOUBLE: 8 bytes little-endian
///   STRING: uint32 length + bytes
class TupleCodec {
 public:
  explicit TupleCodec(std::vector<TypeId> column_types)
      : types_(std::move(column_types)) {}

  /// Appends the encoded row to `out`.
  void Encode(const Tuple& t, std::vector<uint8_t>* out) const;

  /// Decodes one row starting at `data`; advances `*offset` past it.
  Tuple Decode(const uint8_t* data, size_t* offset) const;

  /// Encoded size of a row, without encoding it.
  size_t EncodedSize(const Tuple& t) const;

  const std::vector<TypeId>& types() const { return types_; }

 private:
  std::vector<TypeId> types_;
};

}  // namespace tabbench

#endif  // TABBENCH_STORAGE_TUPLE_CODEC_H_
