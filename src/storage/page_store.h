#ifndef TABBENCH_STORAGE_PAGE_STORE_H_
#define TABBENCH_STORAGE_PAGE_STORE_H_

#include <cstdint>
#include <memory>
#include <vector>

namespace tabbench {

/// Disk page size. 8 KiB, the common unit in 2005-era commercial systems.
inline constexpr size_t kPageSize = 8192;

using PageId = uint64_t;
inline constexpr PageId kInvalidPageId = ~PageId{0};

/// A disk page: a fixed-size byte buffer.
struct Page {
  uint8_t data[kPageSize];
  /// Bytes used (append-only heap pages track their fill level here).
  uint32_t used = 0;
  /// Number of records on the page.
  uint32_t num_slots = 0;
};

/// The simulated disk: an append-only collection of pages. All *timed*
/// access goes through the buffer pool / ExecContext so that misses are
/// charged to simulated elapsed time; the store itself is a dumb byte array.
class PageStore {
 public:
  PageStore() = default;
  PageStore(const PageStore&) = delete;
  PageStore& operator=(const PageStore&) = delete;

  PageId Allocate();
  Page* GetPage(PageId id);
  const Page* GetPage(PageId id) const;

  /// Releases a page's buffer (drop index/view). The id is never reused.
  void Free(PageId id);

  size_t allocated_pages() const { return live_pages_; }

 private:
  std::vector<std::unique_ptr<Page>> pages_;
  size_t live_pages_ = 0;
};

}  // namespace tabbench

#endif  // TABBENCH_STORAGE_PAGE_STORE_H_
