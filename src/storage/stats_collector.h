#ifndef TABBENCH_STORAGE_STATS_COLLECTOR_H_
#define TABBENCH_STORAGE_STATS_COLLECTOR_H_

#include <string>
#include <vector>

#include "stats/table_stats.h"
#include "storage/heap_table.h"

namespace tabbench {

/// Options for statistics collection.
struct StatsOptions {
  size_t histogram_buckets = 64;
  size_t num_mcvs = 16;
};

/// Builds full statistics for a table by scanning it once per column.
/// `column_names` must parallel the table's codec column order.
/// This is the paper's "collect statistics before obtaining the
/// recommendations and before running the queries" step (Section 3.2.3).
TableStats CollectTableStats(const HeapTable& table,
                             const std::vector<std::string>& column_names,
                             const StatsOptions& opts = {});

}  // namespace tabbench

#endif  // TABBENCH_STORAGE_STATS_COLLECTOR_H_
