#include "storage/btree.h"

#include <algorithm>
#include <cassert>

#include "util/fault_injection.h"

namespace tabbench {

int CompareKeys(const IndexKey& a, const IndexKey& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

bool KeyHasPrefix(const IndexKey& key, const IndexKey& prefix) {
  if (prefix.size() > key.size()) return false;
  for (size_t i = 0; i < prefix.size(); ++i) {
    if (key[i] != prefix[i]) return false;
  }
  return true;
}

struct BTree::Node {
  PageId page_id = kInvalidPageId;
  bool is_leaf = true;
  // Leaf: keys_/rids_ are parallel entry arrays. Internal: keys_[i] is the
  // smallest key reachable under children_[i+1]; children_.size() ==
  // keys_.size() + 1.
  std::vector<IndexKey> keys;
  std::vector<Rid> rids;
  std::vector<std::unique_ptr<Node>> children;
  Node* next_leaf = nullptr;
};

BTree::BTree(std::string name, size_t num_key_columns, size_t key_width_bytes,
             PageStore* store)
    : name_(std::move(name)),
      num_key_columns_(num_key_columns),
      store_(store) {
  const size_t entry_bytes = std::max<size_t>(key_width_bytes, 4) + 8;
  leaf_capacity_ = std::max<size_t>(8, (kPageSize - 64) / entry_bytes);
  internal_capacity_ =
      std::max<size_t>(8, (kPageSize - 64) / (std::max<size_t>(key_width_bytes, 4) + 8));
  root_ = MakeNode(/*leaf=*/true);
}

BTree::~BTree() { Drop(); }

std::unique_ptr<BTree::Node> BTree::MakeNode(bool leaf) {
  auto n = std::make_unique<Node>();
  n->is_leaf = leaf;
  n->page_id = store_->Allocate();
  ++num_pages_;
  return n;
}

BTree::Node* BTree::FindLeaf(const IndexKey& prefix,
                             const PageTouchFn& touch) const {
  // Once per descent; latched (util/fault_injection.h).
  TB_FAULT_TRIGGER("storage.btree_descend");
  Node* node = root_.get();
  for (;;) {
    if (touch) touch(node->page_id);
    if (node->is_leaf) return node;
    // Descend to the first child that can contain `prefix`: the last
    // separator strictly below it. Strictness matters for duplicates — when
    // a run of equal keys straddles two leaves the separator equals the key,
    // and a non-strict comparison would skip the left part of the run. The
    // iterator walks rightward through the leaf chain from here.
    size_t i = 0;
    while (i < node->keys.size() && CompareKeys(node->keys[i], prefix) < 0) {
      ++i;
    }
    node = node->children[i].get();
  }
}

void BTree::Insert(const IndexKey& key, const Rid& rid,
                   const PageTouchFn& touch) {
  assert(key.size() == num_key_columns_);
  IndexKey split_key;
  std::unique_ptr<Node> split_node;
  InsertRec(root_.get(), key, rid, touch, &split_key, &split_node);
  if (split_node != nullptr) {
    auto new_root = MakeNode(/*leaf=*/false);
    new_root->keys.push_back(std::move(split_key));
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split_node));
    root_ = std::move(new_root);
    if (touch) touch(root_->page_id);
  }
  ++num_entries_;
  InvalidateStatsCache();
}

void BTree::InsertRec(Node* node, const IndexKey& key, const Rid& rid,
                      const PageTouchFn& touch, IndexKey* split_key,
                      std::unique_ptr<Node>* split_node) {
  if (touch) touch(node->page_id);
  if (node->is_leaf) {
    auto it = std::upper_bound(
        node->keys.begin(), node->keys.end(), key,
        [](const IndexKey& a, const IndexKey& b) { return CompareKeys(a, b) < 0; });
    size_t pos = static_cast<size_t>(it - node->keys.begin());
    node->keys.insert(it, key);
    node->rids.insert(node->rids.begin() + static_cast<long>(pos), rid);
    if (node->keys.size() > leaf_capacity_) {
      // Split: move the upper half into a new right sibling.
      size_t mid = node->keys.size() / 2;
      auto right = MakeNode(/*leaf=*/true);
      right->keys.assign(node->keys.begin() + static_cast<long>(mid),
                         node->keys.end());
      right->rids.assign(node->rids.begin() + static_cast<long>(mid),
                         node->rids.end());
      node->keys.resize(mid);
      node->rids.resize(mid);
      right->next_leaf = node->next_leaf;
      node->next_leaf = right.get();
      *split_key = right->keys.front();
      if (touch) touch(right->page_id);
      *split_node = std::move(right);
    }
    return;
  }
  size_t i = 0;
  while (i < node->keys.size() && CompareKeys(node->keys[i], key) <= 0) ++i;
  IndexKey child_split_key;
  std::unique_ptr<Node> child_split;
  InsertRec(node->children[i].get(), key, rid, touch, &child_split_key,
            &child_split);
  if (child_split != nullptr) {
    node->keys.insert(node->keys.begin() + static_cast<long>(i),
                      std::move(child_split_key));
    node->children.insert(node->children.begin() + static_cast<long>(i) + 1,
                          std::move(child_split));
    if (node->keys.size() > internal_capacity_) {
      size_t mid = node->keys.size() / 2;
      auto right = MakeNode(/*leaf=*/false);
      *split_key = node->keys[mid];
      right->keys.assign(node->keys.begin() + static_cast<long>(mid) + 1,
                         node->keys.end());
      for (size_t c = mid + 1; c < node->children.size(); ++c) {
        right->children.push_back(std::move(node->children[c]));
      }
      node->keys.resize(mid);
      node->children.resize(mid + 1);
      if (touch) touch(right->page_id);
      *split_node = std::move(right);
    }
  }
}

void BTree::BulkBuild(std::vector<std::pair<IndexKey, Rid>> sorted_entries) {
  // Rebuild from scratch: pack leaves to ~90% fill, then stack internals.
  Drop();
  num_entries_ = sorted_entries.size();
  InvalidateStatsCache();
  const size_t leaf_fill = std::max<size_t>(4, leaf_capacity_ * 9 / 10);

  std::vector<std::unique_ptr<Node>> level;
  Node* prev_leaf = nullptr;
  for (size_t i = 0; i < sorted_entries.size();) {
    auto leaf = MakeNode(/*leaf=*/true);
    size_t end = std::min(i + leaf_fill, sorted_entries.size());
    for (size_t j = i; j < end; ++j) {
      leaf->keys.push_back(std::move(sorted_entries[j].first));
      leaf->rids.push_back(sorted_entries[j].second);
    }
    if (prev_leaf != nullptr) prev_leaf->next_leaf = leaf.get();
    prev_leaf = leaf.get();
    level.push_back(std::move(leaf));
    i = end;
  }
  if (level.empty()) {
    root_ = MakeNode(/*leaf=*/true);
    return;
  }
  const size_t internal_fill = std::max<size_t>(4, internal_capacity_ * 9 / 10);
  while (level.size() > 1) {
    std::vector<std::unique_ptr<Node>> parents;
    for (size_t i = 0; i < level.size();) {
      auto parent = MakeNode(/*leaf=*/false);
      size_t end = std::min(i + internal_fill + 1, level.size());
      for (size_t j = i; j < end; ++j) {
        if (j > i) {
          // Separator: smallest key under this child.
          Node* c = level[j].get();
          while (!c->is_leaf) c = c->children.front().get();
          parent->keys.push_back(c->keys.front());
        }
        parent->children.push_back(std::move(level[j]));
      }
      parents.push_back(std::move(parent));
      i = end;
    }
    level = std::move(parents);
  }
  root_ = std::move(level.front());
}

BTree::Iterator BTree::SeekPrefix(const IndexKey& prefix,
                                  const PageTouchFn& touch) const {
  Iterator it;
  it.tree_ = this;
  it.prefix_ = prefix;
  it.touch_ = touch;
  Node* leaf = FindLeaf(prefix, touch);
  it.leaf_ = leaf;
  it.touched_current_ = true;  // FindLeaf already reported this leaf.
  // Position at the first entry >= prefix within the leaf.
  auto pos = std::lower_bound(
      leaf->keys.begin(), leaf->keys.end(), prefix,
      [](const IndexKey& a, const IndexKey& b) { return CompareKeys(a, b) < 0; });
  it.idx_ = static_cast<size_t>(pos - leaf->keys.begin());
  return it;
}

BTree::Iterator BTree::ScanAll(const PageTouchFn& touch) const {
  Iterator it;
  it.tree_ = this;
  it.touch_ = touch;
  Node* node = root_.get();
  for (;;) {
    if (touch) touch(node->page_id);
    if (node->is_leaf) break;
    node = node->children.front().get();
  }
  it.leaf_ = node;
  it.idx_ = 0;
  it.touched_current_ = true;
  return it;
}

bool BTree::Iterator::Next(IndexKey* key, Rid* rid) {
  const Node* leaf = static_cast<const Node*>(leaf_);
  for (;;) {
    if (leaf == nullptr) return false;
    if (!touched_current_) {
      if (touch_) touch_(leaf->page_id);
      touched_current_ = true;
    }
    if (idx_ < leaf->keys.size()) {
      const IndexKey& k = leaf->keys[idx_];
      if (!prefix_.empty()) {
        if (!KeyHasPrefix(k, prefix_)) {
          // Entries are sorted; once past the prefix range we are done.
          if (CompareKeys(k, prefix_) > 0) return false;
          ++idx_;
          continue;
        }
      }
      *key = k;
      *rid = leaf->rids[idx_];
      ++idx_;
      return true;
    }
    leaf = leaf->next_leaf;
    leaf_ = leaf;
    idx_ = 0;
    touched_current_ = false;
  }
}

void BTree::FillStatsCache() const {
  if (cache_valid_) return;
  // Single leaf-chain walk computes both cached metrics.
  uint64_t distinct = 0, clustering = 0;
  const Node* node = root_.get();
  while (!node->is_leaf) node = node->children.front().get();
  const IndexKey* prev_key = nullptr;
  const Rid* prev_rid = nullptr;
  for (const Node* leaf = node; leaf != nullptr; leaf = leaf->next_leaf) {
    for (size_t i = 0; i < leaf->keys.size(); ++i) {
      if (prev_key == nullptr || CompareKeys(*prev_key, leaf->keys[i]) != 0) {
        ++distinct;
      }
      if (prev_rid == nullptr ||
          prev_rid->page_ordinal != leaf->rids[i].page_ordinal) {
        ++clustering;
      }
      prev_key = &leaf->keys[i];
      prev_rid = &leaf->rids[i];
    }
  }
  cached_distinct_ = distinct;
  cached_clustering_ = clustering;
  cache_valid_ = true;
}

void BTree::InvalidateStatsCache() {
  MutexLock lock(&cache_mu_);
  cache_valid_ = false;
}

uint64_t BTree::num_distinct_keys() const {
  MutexLock lock(&cache_mu_);
  FillStatsCache();
  return cached_distinct_;
}

uint64_t BTree::clustering_factor() const {
  MutexLock lock(&cache_mu_);
  FillStatsCache();
  return cached_clustering_;
}

size_t BTree::height() const {
  size_t h = 1;
  const Node* node = root_.get();
  while (!node->is_leaf) {
    ++h;
    node = node->children.front().get();
  }
  return h;
}

size_t BTree::num_leaf_pages() const {
  const Node* node = root_.get();
  while (!node->is_leaf) node = node->children.front().get();
  size_t n = 0;
  for (const Node* leaf = node; leaf != nullptr; leaf = leaf->next_leaf) ++n;
  return n;
}

void BTree::Drop() {
  // Free pages via a post-order traversal.
  if (root_ == nullptr) return;
  std::vector<Node*> stack{root_.get()};
  while (!stack.empty()) {
    Node* n = stack.back();
    stack.pop_back();
    store_->Free(n->page_id);
    for (auto& c : n->children) stack.push_back(c.get());
  }
  root_.reset();
  num_pages_ = 0;
  num_entries_ = 0;
  InvalidateStatsCache();
}

}  // namespace tabbench
