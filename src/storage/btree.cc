#include "storage/btree.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "util/crc32c.h"
#include "util/fault_injection.h"

namespace tabbench {

int CompareKeys(const IndexKey& a, const IndexKey& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

bool KeyHasPrefix(const IndexKey& key, const IndexKey& prefix) {
  if (prefix.size() > key.size()) return false;
  for (size_t i = 0; i < prefix.size(); ++i) {
    if (key[i] != prefix[i]) return false;
  }
  return true;
}

struct BTree::Node {
  PageId page_id = kInvalidPageId;
  bool is_leaf = true;
  // Leaf: keys_/rids_ are parallel entry arrays. Internal: keys_[i] is the
  // smallest key reachable under children_[i+1]; children_.size() ==
  // keys_.size() + 1.
  std::vector<IndexKey> keys;
  std::vector<Rid> rids;
  std::vector<std::unique_ptr<Node>> children;
  Node* next_leaf = nullptr;
};

BTree::BTree(std::string name, size_t num_key_columns, size_t key_width_bytes,
             PageStore* store)
    : name_(std::move(name)),
      num_key_columns_(num_key_columns),
      store_(store) {
  const size_t entry_bytes = std::max<size_t>(key_width_bytes, 4) + 8;
  leaf_capacity_ = std::max<size_t>(8, (kPageSize - 64) / entry_bytes);
  internal_capacity_ =
      std::max<size_t>(8, (kPageSize - 64) / (std::max<size_t>(key_width_bytes, 4) + 8));
  MutexLock lock(&mu_);
  root_ = MakeNode(/*leaf=*/true);
}

BTree::~BTree() { Drop(); }

std::unique_ptr<BTree::Node> BTree::MakeNode(bool leaf) {
  auto n = std::make_unique<Node>();
  n->is_leaf = leaf;
  n->page_id = store_->Allocate();
  ++num_pages_;
  return n;
}

void BTree::FreeNode(Node* node) {
  store_->Free(node->page_id);
  --num_pages_;
}

BTree::Node* BTree::FindLeaf(const IndexKey& prefix,
                             const PageTouchFn& touch) const {
  // Once per descent; latched (util/fault_injection.h).
  TB_FAULT_TRIGGER("storage.btree_descend");
  Node* node = root_.get();
  for (;;) {
    if (touch) touch(node->page_id);
    if (node->is_leaf) return node;
    // Descend to the first child that can contain `prefix`: the last
    // separator strictly below it. Strictness matters for duplicates — when
    // a run of equal keys straddles two leaves the separator equals the key,
    // and a non-strict comparison would skip the left part of the run. The
    // iterator walks rightward through the leaf chain from here.
    size_t i = 0;
    while (i < node->keys.size() && CompareKeys(node->keys[i], prefix) < 0) {
      ++i;
    }
    node = node->children[i].get();
  }
}

Status BTree::Insert(const IndexKey& key, const Rid& rid,
                     const PageTouchFn& touch) {
  MutexLock lock(&mu_);
  return InsertLocked(key, rid, touch);
}

Status BTree::InsertLocked(const IndexKey& key, const Rid& rid,
                           const PageTouchFn& touch) {
  assert(key.size() == num_key_columns_);
  TB_FAULT_POINT("storage.btree_insert");
  IndexKey split_key;
  std::unique_ptr<Node> split_node;
  TB_RETURN_IF_ERROR(
      InsertRec(root_.get(), key, rid, touch, &split_key, &split_node));
  if (split_node != nullptr) {
    auto new_root = MakeNode(/*leaf=*/false);
    new_root->keys.push_back(std::move(split_key));
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split_node));
    root_ = std::move(new_root);
    if (touch) touch(root_->page_id);
  }
  ++num_entries_;
  InvalidateStatsCache();
  return Status::OK();
}

Status BTree::InsertRec(Node* node, const IndexKey& key, const Rid& rid,
                        const PageTouchFn& touch, IndexKey* split_key,
                        std::unique_ptr<Node>* split_node) {
  if (touch) touch(node->page_id);
  if (node->is_leaf) {
    // Any split cascade starts with a full leaf; fire the fault before the
    // entry lands so an injected split failure leaves the tree untouched.
    if (node->keys.size() >= leaf_capacity_) {
      TB_FAULT_POINT("storage.btree_split");
    }
    auto it = std::upper_bound(
        node->keys.begin(), node->keys.end(), key,
        [](const IndexKey& a, const IndexKey& b) { return CompareKeys(a, b) < 0; });
    size_t pos = static_cast<size_t>(it - node->keys.begin());
    node->keys.insert(it, key);
    node->rids.insert(node->rids.begin() + static_cast<long>(pos), rid);
    if (node->keys.size() > leaf_capacity_) {
      // Split: move the upper half into a new right sibling.
      size_t mid = node->keys.size() / 2;
      auto right = MakeNode(/*leaf=*/true);
      right->keys.assign(node->keys.begin() + static_cast<long>(mid),
                         node->keys.end());
      right->rids.assign(node->rids.begin() + static_cast<long>(mid),
                         node->rids.end());
      node->keys.resize(mid);
      node->rids.resize(mid);
      right->next_leaf = node->next_leaf;
      node->next_leaf = right.get();
      *split_key = right->keys.front();
      if (touch) touch(right->page_id);
      *split_node = std::move(right);
    }
    return Status::OK();
  }
  size_t i = 0;
  while (i < node->keys.size() && CompareKeys(node->keys[i], key) <= 0) ++i;
  IndexKey child_split_key;
  std::unique_ptr<Node> child_split;
  TB_RETURN_IF_ERROR(InsertRec(node->children[i].get(), key, rid, touch,
                               &child_split_key, &child_split));
  if (child_split != nullptr) {
    node->keys.insert(node->keys.begin() + static_cast<long>(i),
                      std::move(child_split_key));
    node->children.insert(node->children.begin() + static_cast<long>(i) + 1,
                          std::move(child_split));
    if (node->keys.size() > internal_capacity_) {
      size_t mid = node->keys.size() / 2;
      auto right = MakeNode(/*leaf=*/false);
      *split_key = node->keys[mid];
      right->keys.assign(node->keys.begin() + static_cast<long>(mid) + 1,
                         node->keys.end());
      for (size_t c = mid + 1; c < node->children.size(); ++c) {
        right->children.push_back(std::move(node->children[c]));
      }
      node->keys.resize(mid);
      node->children.resize(mid + 1);
      if (touch) touch(right->page_id);
      *split_node = std::move(right);
    }
  }
  return Status::OK();
}

Status BTree::Delete(const IndexKey& key, const Rid& rid,
                     const PageTouchFn& touch) {
  MutexLock lock(&mu_);
  return DeleteLocked(key, rid, touch);
}

Status BTree::DeleteLocked(const IndexKey& key, const Rid& rid,
                           const PageTouchFn& touch) {
  assert(key.size() == num_key_columns_);
  TB_FAULT_POINT("storage.btree_delete");
  bool found = false;
  TB_RETURN_IF_ERROR(DeleteRec(root_.get(), key, rid, touch, &found));
  if (!found) {
    return Status::NotFound("no entry for key in index " + name_);
  }
  // Collapse a single-child root chain so height() reflects the shrink.
  while (!root_->is_leaf && root_->children.size() == 1) {
    auto child = std::move(root_->children.front());
    FreeNode(root_.get());
    root_ = std::move(child);
    if (touch) touch(root_->page_id);
  }
  --num_entries_;
  InvalidateStatsCache();
  return Status::OK();
}

Status BTree::DeleteRec(Node* node, const IndexKey& key, const Rid& rid,
                        const PageTouchFn& touch, bool* found) {
  if (touch) touch(node->page_id);
  if (node->is_leaf) {
    auto it = std::lower_bound(
        node->keys.begin(), node->keys.end(), key,
        [](const IndexKey& a, const IndexKey& b) { return CompareKeys(a, b) < 0; });
    size_t i = static_cast<size_t>(it - node->keys.begin());
    while (i < node->keys.size() && CompareKeys(node->keys[i], key) == 0) {
      if (node->rids[i] == rid) {
        node->keys.erase(node->keys.begin() + static_cast<long>(i));
        node->rids.erase(node->rids.begin() + static_cast<long>(i));
        *found = true;
        return Status::OK();
      }
      ++i;
    }
    return Status::OK();
  }
  // First child that can contain `key` (same strict descent as FindLeaf);
  // with duplicates the run may straddle equal separators, so on a miss keep
  // walking right while the separator still equals the key.
  size_t i = 0;
  while (i < node->keys.size() && CompareKeys(node->keys[i], key) < 0) ++i;
  for (;;) {
    TB_RETURN_IF_ERROR(DeleteRec(node->children[i].get(), key, rid, touch,
                                 found));
    if (*found) return RebalanceChild(node, i, touch);
    if (i < node->keys.size() && CompareKeys(node->keys[i], key) == 0) {
      ++i;
      continue;
    }
    return Status::OK();
  }
}

Status BTree::RebalanceChild(Node* parent, size_t i, const PageTouchFn& touch) {
  Node* child = parent->children[i].get();
  const bool leaf = child->is_leaf;
  const size_t min_fill = leaf ? std::max<size_t>(1, leaf_capacity_ / 4)
                               : std::max<size_t>(2, internal_capacity_ / 4);
  const size_t size = leaf ? child->keys.size() : child->children.size();
  if (size >= min_fill) return Status::OK();
  // Fires before the rebalance applies: an injected merge failure leaves a
  // consistent (merely underfull) node, so a deterministic re-run converges
  // to the same tree.
  TB_FAULT_POINT("storage.btree_merge");
  Node* left = i > 0 ? parent->children[i - 1].get() : nullptr;
  Node* right =
      i + 1 < parent->children.size() ? parent->children[i + 1].get() : nullptr;
  auto spare = [&](const Node* n) {
    return (leaf ? n->keys.size() : n->children.size()) > min_fill;
  };
  if (left != nullptr && spare(left)) {
    // Borrow the largest entry of the left sibling.
    if (touch) touch(left->page_id);
    if (leaf) {
      child->keys.insert(child->keys.begin(), std::move(left->keys.back()));
      child->rids.insert(child->rids.begin(), left->rids.back());
      left->keys.pop_back();
      left->rids.pop_back();
      parent->keys[i - 1] = child->keys.front();
    } else {
      child->children.insert(child->children.begin(),
                             std::move(left->children.back()));
      child->keys.insert(child->keys.begin(), std::move(parent->keys[i - 1]));
      parent->keys[i - 1] = std::move(left->keys.back());
      left->keys.pop_back();
      left->children.pop_back();
    }
    return Status::OK();
  }
  if (right != nullptr && spare(right)) {
    // Borrow the smallest entry of the right sibling.
    if (touch) touch(right->page_id);
    if (leaf) {
      child->keys.push_back(std::move(right->keys.front()));
      child->rids.push_back(right->rids.front());
      right->keys.erase(right->keys.begin());
      right->rids.erase(right->rids.begin());
      parent->keys[i] = right->keys.front();
    } else {
      child->keys.push_back(std::move(parent->keys[i]));
      child->children.push_back(std::move(right->children.front()));
      parent->keys[i] = std::move(right->keys.front());
      right->keys.erase(right->keys.begin());
      right->children.erase(right->children.begin());
    }
    return Status::OK();
  }
  // No sibling has spare entries: merge. Both neighbors are at (or below)
  // min_fill, so the combined node fits well under capacity.
  auto merge_into = [&](Node* dst, size_t dst_idx) {
    // Absorbs children_[dst_idx + 1] into dst (its left neighbor).
    Node* src = parent->children[dst_idx + 1].get();
    if (touch) touch(dst->page_id);
    if (leaf) {
      for (size_t k = 0; k < src->keys.size(); ++k) {
        dst->keys.push_back(std::move(src->keys[k]));
        dst->rids.push_back(src->rids[k]);
      }
      dst->next_leaf = src->next_leaf;
    } else {
      dst->keys.push_back(std::move(parent->keys[dst_idx]));
      for (auto& k : src->keys) dst->keys.push_back(std::move(k));
      for (auto& c : src->children) dst->children.push_back(std::move(c));
    }
    FreeNode(src);
    parent->keys.erase(parent->keys.begin() + static_cast<long>(dst_idx));
    parent->children.erase(parent->children.begin() +
                           static_cast<long>(dst_idx) + 1);
  };
  if (left != nullptr) {
    merge_into(left, i - 1);
  } else if (right != nullptr) {
    merge_into(child, i);
  }
  // A root with a single child is collapsed by DeleteLocked; any other
  // parent underflow is repaired one level up by our caller.
  return Status::OK();
}

Status BTree::Update(const IndexKey& old_key, const Rid& old_rid,
                     const IndexKey& new_key, const Rid& new_rid,
                     const PageTouchFn& touch) {
  MutexLock lock(&mu_);
  TB_FAULT_POINT("storage.btree_update");
  TB_RETURN_IF_ERROR(DeleteLocked(old_key, old_rid, touch));
  return InsertLocked(new_key, new_rid, touch);
}

void BTree::BulkBuild(std::vector<std::pair<IndexKey, Rid>> sorted_entries) {
  MutexLock lock(&mu_);
  // Rebuild from scratch: pack leaves to ~90% fill, then stack internals.
  DropLocked();
  num_entries_ = sorted_entries.size();
  const size_t leaf_fill = std::max<size_t>(4, leaf_capacity_ * 9 / 10);

  std::vector<std::unique_ptr<Node>> level;
  Node* prev_leaf = nullptr;
  for (size_t i = 0; i < sorted_entries.size();) {
    auto leaf = MakeNode(/*leaf=*/true);
    size_t end = std::min(i + leaf_fill, sorted_entries.size());
    for (size_t j = i; j < end; ++j) {
      leaf->keys.push_back(std::move(sorted_entries[j].first));
      leaf->rids.push_back(sorted_entries[j].second);
    }
    if (prev_leaf != nullptr) prev_leaf->next_leaf = leaf.get();
    prev_leaf = leaf.get();
    level.push_back(std::move(leaf));
    i = end;
  }
  if (level.empty()) {
    root_ = MakeNode(/*leaf=*/true);
    return;
  }
  const size_t internal_fill = std::max<size_t>(4, internal_capacity_ * 9 / 10);
  while (level.size() > 1) {
    std::vector<std::unique_ptr<Node>> parents;
    for (size_t i = 0; i < level.size();) {
      auto parent = MakeNode(/*leaf=*/false);
      size_t end = std::min(i + internal_fill + 1, level.size());
      for (size_t j = i; j < end; ++j) {
        if (j > i) {
          // Separator: smallest key under this child.
          Node* c = level[j].get();
          while (!c->is_leaf) c = c->children.front().get();
          parent->keys.push_back(c->keys.front());
        }
        parent->children.push_back(std::move(level[j]));
      }
      parents.push_back(std::move(parent));
      i = end;
    }
    level = std::move(parents);
  }
  root_ = std::move(level.front());
}

BTree::Iterator BTree::SeekPrefix(const IndexKey& prefix,
                                  const PageTouchFn& touch) const {
  Iterator it;
  it.tree_ = this;
  it.prefix_ = prefix;
  it.touch_ = touch;
  Node* leaf = FindLeaf(prefix, touch);
  it.leaf_ = leaf;
  it.touched_current_ = true;  // FindLeaf already reported this leaf.
  // Position at the first entry >= prefix within the leaf.
  auto pos = std::lower_bound(
      leaf->keys.begin(), leaf->keys.end(), prefix,
      [](const IndexKey& a, const IndexKey& b) { return CompareKeys(a, b) < 0; });
  it.idx_ = static_cast<size_t>(pos - leaf->keys.begin());
  return it;
}

BTree::Iterator BTree::ScanAll(const PageTouchFn& touch) const {
  Iterator it;
  it.tree_ = this;
  it.touch_ = touch;
  Node* node = root_.get();
  for (;;) {
    if (touch) touch(node->page_id);
    if (node->is_leaf) break;
    node = node->children.front().get();
  }
  it.leaf_ = node;
  it.idx_ = 0;
  it.touched_current_ = true;
  return it;
}

bool BTree::Iterator::Next(IndexKey* key, Rid* rid) {
  const Node* leaf = static_cast<const Node*>(leaf_);
  for (;;) {
    if (leaf == nullptr) return false;
    if (!touched_current_) {
      if (touch_) touch_(leaf->page_id);
      touched_current_ = true;
    }
    if (idx_ < leaf->keys.size()) {
      const IndexKey& k = leaf->keys[idx_];
      if (!prefix_.empty()) {
        if (!KeyHasPrefix(k, prefix_)) {
          // Entries are sorted; once past the prefix range we are done.
          if (CompareKeys(k, prefix_) > 0) return false;
          ++idx_;
          continue;
        }
      }
      *key = k;
      *rid = leaf->rids[idx_];
      ++idx_;
      return true;
    }
    leaf = leaf->next_leaf;
    leaf_ = leaf;
    idx_ = 0;
    touched_current_ = false;
  }
}

void BTree::FillStatsCache() const {
  if (cache_valid_) return;
  // Single leaf-chain walk computes both cached metrics.
  uint64_t distinct = 0, clustering = 0;
  const Node* node = root_.get();
  while (!node->is_leaf) node = node->children.front().get();
  const IndexKey* prev_key = nullptr;
  const Rid* prev_rid = nullptr;
  for (const Node* leaf = node; leaf != nullptr; leaf = leaf->next_leaf) {
    for (size_t i = 0; i < leaf->keys.size(); ++i) {
      if (prev_key == nullptr || CompareKeys(*prev_key, leaf->keys[i]) != 0) {
        ++distinct;
      }
      if (prev_rid == nullptr ||
          prev_rid->page_ordinal != leaf->rids[i].page_ordinal) {
        ++clustering;
      }
      prev_key = &leaf->keys[i];
      prev_rid = &leaf->rids[i];
    }
  }
  cached_distinct_ = distinct;
  cached_clustering_ = clustering;
  cache_valid_ = true;
}

void BTree::InvalidateStatsCache() {
  MutexLock lock(&cache_mu_);
  cache_valid_ = false;
}

uint64_t BTree::num_distinct_keys() const {
  MutexLock lock(&cache_mu_);
  FillStatsCache();
  return cached_distinct_;
}

uint64_t BTree::clustering_factor() const {
  MutexLock lock(&cache_mu_);
  FillStatsCache();
  return cached_clustering_;
}

uint64_t BTree::num_entries() const {
  MutexLock lock(&mu_);
  return num_entries_;
}

size_t BTree::num_pages() const {
  MutexLock lock(&mu_);
  return num_pages_;
}

size_t BTree::height() const {
  size_t h = 1;
  const Node* node = root_.get();
  while (!node->is_leaf) {
    ++h;
    node = node->children.front().get();
  }
  return h;
}

size_t BTree::num_leaf_pages() const {
  const Node* node = root_.get();
  while (!node->is_leaf) node = node->children.front().get();
  size_t n = 0;
  for (const Node* leaf = node; leaf != nullptr; leaf = leaf->next_leaf) ++n;
  return n;
}

uint64_t BTree::Fingerprint() const {
  MutexLock lock(&mu_);
  uint32_t crc = 0;
  auto mix64 = [&crc](uint64_t v) {
    uint8_t buf[8];
    std::memcpy(buf, &v, 8);
    crc = Crc32cExtend(crc, buf, 8);
  };
  // Shape first: two trees with identical content but different packing
  // (incremental inserts vs a bulk build) must not collide.
  mix64(static_cast<uint64_t>(height()));
  mix64(static_cast<uint64_t>(num_pages_));
  mix64(num_entries_);
  const Node* node = root_.get();
  while (!node->is_leaf) node = node->children.front().get();
  for (const Node* leaf = node; leaf != nullptr; leaf = leaf->next_leaf) {
    mix64(static_cast<uint64_t>(leaf->keys.size()));
    for (size_t i = 0; i < leaf->keys.size(); ++i) {
      for (const Value& v : leaf->keys[i]) {
        const std::string s = v.ToString();
        crc = Crc32cExtend(crc, s.data(), s.size());
        crc = Crc32cExtend(crc, "\x1f", 1);
      }
      mix64((static_cast<uint64_t>(leaf->rids[i].page_ordinal) << 32) |
            leaf->rids[i].slot);
    }
  }
  return (static_cast<uint64_t>(crc) << 32) | Crc32cExtend(crc, "fp", 2);
}

void BTree::Drop() {
  MutexLock lock(&mu_);
  DropLocked();
}

void BTree::DropLocked() {
  // Free pages via a post-order traversal.
  if (root_ == nullptr) return;
  std::vector<Node*> stack{root_.get()};
  while (!stack.empty()) {
    Node* n = stack.back();
    stack.pop_back();
    store_->Free(n->page_id);
    for (auto& c : n->children) stack.push_back(c.get());
  }
  root_.reset();
  num_pages_ = 0;
  num_entries_ = 0;
  InvalidateStatsCache();
}

}  // namespace tabbench
