#ifndef TABBENCH_STORAGE_HEAP_TABLE_H_
#define TABBENCH_STORAGE_HEAP_TABLE_H_

#include <functional>
#include <string>
#include <vector>

#include "storage/page_store.h"
#include "storage/tuple_codec.h"
#include "types/tuple.h"
#include "util/status.h"

namespace tabbench {

/// Physical address of a row: (ordinal of the page within the table,
/// slot on that page).
struct Rid {
  uint32_t page_ordinal = 0;
  uint32_t slot = 0;

  bool operator==(const Rid& o) const {
    return page_ordinal == o.page_ordinal && slot == o.slot;
  }
  bool operator<(const Rid& o) const {
    return page_ordinal != o.page_ordinal ? page_ordinal < o.page_ordinal
                                          : slot < o.slot;
  }
};

/// Callback invoked once per page touched, for buffer-pool / cost
/// accounting. Storage itself never charges time — callers decide.
using PageTouchFn = std::function<void(PageId)>;

/// An append-only heap table: rows encoded back-to-back on 8 KiB pages.
/// Record format on a page: [uint16 length][TupleCodec bytes] repeated;
/// Page::used is the fill offset and Page::num_slots the record count.
/// Deletes are tombstones (a per-page slot bitmap in the table header, the
/// slotted-page "dead" bit): the record bytes stay where they are, scans and
/// fetches skip them, and an UPDATE is modeled as delete + re-append — which
/// is also what makes index clustering decay under churn, the physical
/// effect the paper's stats-staleness story needs.
class HeapTable {
 public:
  HeapTable(std::string name, TupleCodec codec, PageStore* store);

  /// Appends a row; returns its Rid. Allocates a new page when the current
  /// one cannot hold the record.
  Rid Append(const Tuple& t);

  /// Append with write-path accounting: reports the written (tail) page
  /// through `touch` and can fail via the `storage.heap_insert` fault point
  /// (before any mutation). The plain Append above stays for bulk loaders,
  /// which charge sequentially per page instead.
  Result<Rid> Insert(const Tuple& t, const PageTouchFn& touch);

  /// Tombstones the row at `rid`; NotFound if out of range or already
  /// deleted. Fault point: `storage.heap_delete` (before any mutation).
  Status Delete(const Rid& rid, const PageTouchFn& touch);

  /// True iff `rid` addresses a live (non-tombstoned, in-range) row.
  bool IsLive(const Rid& rid) const;

  /// Reads the row at `rid`. `touch` (if set) is called for the page.
  /// NotFound for tombstoned rows.
  Result<Tuple> Fetch(const Rid& rid, const PageTouchFn& touch) const;

  /// Forward scan over all rows.
  class Cursor {
   public:
    Cursor(const HeapTable* table, PageTouchFn touch);
    /// Advances; returns false at end. On true, `*t` (and `*rid`, if
    /// non-null) are set.
    bool Next(Tuple* t, Rid* rid);

   private:
    const HeapTable* table_;
    PageTouchFn touch_;
    size_t page_ordinal_ = 0;
    size_t slot_ = 0;
    size_t offset_ = 0;
  };

  Cursor Scan(PageTouchFn touch) const { return Cursor(this, std::move(touch)); }

  const std::string& name() const { return name_; }
  const TupleCodec& codec() const { return codec_; }
  /// Live rows (tombstones excluded).
  uint64_t num_rows() const { return num_rows_; }
  /// Tombstoned rows still occupying page bytes.
  uint64_t num_deleted() const { return num_deleted_; }
  size_t num_pages() const { return pages_.size(); }
  const std::vector<PageId>& pages() const { return pages_; }
  uint64_t total_bytes() const { return total_bytes_; }

  /// Frees all pages (dropping a materialized view).
  void Drop();

 private:
  bool IsDeleted(size_t page_ordinal, size_t slot) const;

  std::string name_;
  TupleCodec codec_;
  PageStore* store_;
  std::vector<PageId> pages_;
  /// Tombstone bitmap, parallel to pages_; a page's vector is sized lazily
  /// on its first delete, so insert-only tables pay nothing.
  std::vector<std::vector<uint8_t>> deleted_;
  uint64_t num_rows_ = 0;
  uint64_t num_deleted_ = 0;
  uint64_t total_bytes_ = 0;
};

}  // namespace tabbench

#endif  // TABBENCH_STORAGE_HEAP_TABLE_H_
