#ifndef TABBENCH_STORAGE_BTREE_H_
#define TABBENCH_STORAGE_BTREE_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/heap_table.h"
#include "storage/page_store.h"
#include "types/value.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace tabbench {

/// Composite index key: one Value per indexed column, compared
/// lexicographically.
using IndexKey = std::vector<Value>;

/// Lexicographic three-way comparison; a shorter key that is a prefix of the
/// longer one compares equal on the shared prefix then shorter-first.
int CompareKeys(const IndexKey& a, const IndexKey& b);

/// True iff the first `prefix.size()` columns of `key` equal `prefix`.
bool KeyHasPrefix(const IndexKey& key, const IndexKey& prefix);

/// A B+-tree over composite keys, mapping key -> Rid (duplicates allowed).
///
/// Nodes are in-memory structures, but every node owns a page in the
/// PageStore: descending the tree or walking the leaf chain reports each
/// node's PageId through a PageTouchFn, so buffer-pool hits/misses and
/// simulated I/O time are accounted exactly as if nodes were serialized
/// 8 KiB pages. Node fanout is derived from the estimated key width so page
/// counts and heights match what a serialized tree would have.
///
/// Concurrency contract: structural mutations (Insert/Delete/Update/
/// BulkBuild/Drop) serialize on `mu_`, so any interleaving of writers is
/// safe. Readers (SeekPrefix/ScanAll/iterators) stay lock-free and are only
/// valid in phases with no concurrent writer — the engine's mutation runner
/// alternates exclusive write windows with read-only windows, and the
/// chaos/TSan suites exercise exactly that schedule.
class BTree {
 public:
  /// `key_width_bytes`: average encoded key size, used to size node fanout.
  BTree(std::string name, size_t num_key_columns, size_t key_width_bytes,
        PageStore* store);
  ~BTree();

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  /// Inserts one entry, reporting touched node pages (root-to-leaf path and
  /// any splits) through `touch`. Used for the incremental-insert
  /// experiment (paper Section 4.4) and the mutation workloads. Fails only
  /// via the `storage.btree_insert` / `storage.btree_split` fault points;
  /// a faulted split aborts before any structural change.
  Status Insert(const IndexKey& key, const Rid& rid, const PageTouchFn& touch)
      TB_EXCLUDES(mu_);

  /// Removes the entry matching (key, rid) exactly; NotFound if absent.
  /// Underflowing leaves borrow from or merge with a sibling (the
  /// `storage.btree_merge` fault point fires before the rebalance applies,
  /// leaving a consistent but underfull node on injection).
  Status Delete(const IndexKey& key, const Rid& rid, const PageTouchFn& touch)
      TB_EXCLUDES(mu_);

  /// Delete(old_key, old_rid) + Insert(new_key, new_rid) under one lock
  /// hold — the index half of an UPDATE. The heap is append-only, so an
  /// updated row moves to a fresh Rid and every index entry follows it.
  Status Update(const IndexKey& old_key, const Rid& old_rid,
                const IndexKey& new_key, const Rid& new_rid,
                const PageTouchFn& touch) TB_EXCLUDES(mu_);

  /// Builds the tree from entries sorted by (key, rid). Much faster than
  /// repeated Insert; used by the configuration builder.
  void BulkBuild(std::vector<std::pair<IndexKey, Rid>> sorted_entries)
      TB_EXCLUDES(mu_);

  /// Iterator over entries with a given key prefix (equality probe), or over
  /// the whole tree (full index scan, for index-only plans).
  class Iterator {
   public:
    /// Advances; false at end. On true sets *key and *rid.
    bool Next(IndexKey* key, Rid* rid);

   private:
    friend class BTree;
    const BTree* tree_ = nullptr;
    const void* leaf_ = nullptr;  // current leaf node
    size_t idx_ = 0;
    IndexKey prefix_;  // empty = unbounded
    PageTouchFn touch_;
    bool touched_current_ = false;
  };

  /// Equality probe: all entries whose key starts with `prefix`. The
  /// root-to-leaf descent pages are reported through `touch` immediately;
  /// leaf pages are reported as the iterator reaches them.
  Iterator SeekPrefix(const IndexKey& prefix, const PageTouchFn& touch) const;

  /// Full scan in key order (descends to the leftmost leaf).
  Iterator ScanAll(const PageTouchFn& touch) const;

  // -- Measured metadata (what the optimizer reads in a *built*
  //    configuration; hypothetical configurations must derive these). --
  const std::string& name() const { return name_; }
  size_t num_key_columns() const { return num_key_columns_; }
  uint64_t num_entries() const TB_EXCLUDES(mu_);
  uint64_t num_distinct_keys() const;
  size_t height() const;
  size_t num_leaf_pages() const;
  size_t num_pages() const TB_EXCLUDES(mu_);
  size_t leaf_fanout() const { return leaf_capacity_; }

  /// Oracle-style clustering factor: the number of heap-page switches when
  /// fetching every row in index-key order. Lower = better correlation
  /// between index order and heap order. Heap fetch cost per matched entry
  /// is approximately clustering_factor() / num_entries() pages.
  uint64_t clustering_factor() const;

  /// CRC-32C over the tree's logical content (leaf-chain keys + rids, in
  /// order) and shape (height, page and entry counts). Two trees holding
  /// the same entries with the same structure fingerprint identically
  /// regardless of which PageIds the store handed out — the equality the
  /// kill-resume chaos harness asserts between an interrupted-and-resumed
  /// index build and an uninterrupted one.
  uint64_t Fingerprint() const TB_EXCLUDES(mu_);

  /// Frees all node pages.
  void Drop() TB_EXCLUDES(mu_);

 private:
  struct Node;

  Node* FindLeaf(const IndexKey& prefix, const PageTouchFn& touch) const;
  Status InsertLocked(const IndexKey& key, const Rid& rid,
                      const PageTouchFn& touch) TB_REQUIRES(mu_);
  Status InsertRec(Node* node, const IndexKey& key, const Rid& rid,
                   const PageTouchFn& touch, IndexKey* split_key,
                   std::unique_ptr<Node>* split_node) TB_REQUIRES(mu_);
  Status DeleteLocked(const IndexKey& key, const Rid& rid,
                      const PageTouchFn& touch) TB_REQUIRES(mu_);
  /// Recursive (key, rid) removal; `*found` reports whether anything was
  /// erased. Underflow in a child is repaired on the way back up.
  Status DeleteRec(Node* node, const IndexKey& key, const Rid& rid,
                   const PageTouchFn& touch, bool* found) TB_REQUIRES(mu_);
  /// Repairs an underfull children_[i]: borrow from an adjacent sibling
  /// with spare entries, else merge into the left (or right) sibling.
  Status RebalanceChild(Node* parent, size_t i, const PageTouchFn& touch)
      TB_REQUIRES(mu_);
  std::unique_ptr<Node> MakeNode(bool leaf) TB_REQUIRES(mu_);
  void FreeNode(Node* node) TB_REQUIRES(mu_);
  void DropLocked() TB_REQUIRES(mu_);

  /// Walks the leaf chain once to fill both cached metrics.
  void FillStatsCache() const TB_REQUIRES(cache_mu_);
  /// Marks the lazy metrics stale (called by every structural mutation).
  void InvalidateStatsCache() TB_EXCLUDES(cache_mu_);

  /// Immutable after construction: writers happen to read these under mu_,
  /// the lock-free query paths read them bare — not a guard relationship.
  /// NOLINTNEXTLINE(tabbench-lockset-inconsistent)
  std::string name_;
  /// NOLINTNEXTLINE(tabbench-lockset-inconsistent)
  size_t num_key_columns_;
  /// NOLINTNEXTLINE(tabbench-lockset-inconsistent)
  size_t leaf_capacity_;
  size_t internal_capacity_ TB_GUARDED_BY(mu_);
  PageStore* store_ TB_GUARDED_BY(mu_);
  /// Serializes structural mutation (and guards the shape counters below);
  /// always taken before cache_mu_ — mutations invalidate the stats cache
  /// while holding it.
  mutable Mutex mu_ TB_ACQUIRED_BEFORE("BTree::cache_mu_");
  /// Structurally mutated only under mu_; read lock-free by the query
  /// paths, which by the engine's contract never overlap a writer. The
  /// under-lock reads in FillStatsCache are incidental, not a guard
  /// relationship.
  /// NOLINTNEXTLINE(tabbench-lockset-inconsistent)
  std::unique_ptr<Node> root_;
  uint64_t num_entries_ TB_GUARDED_BY(mu_) = 0;
  size_t num_pages_ TB_GUARDED_BY(mu_) = 0;
  /// Lazily computed distinct/clustering metrics. The mutex makes the lazy
  /// fill safe under concurrent read-only planning (many threads build
  /// ConfigViews of the same built tree at once); writes invalidate under
  /// the same mutex so the annotations (and TSan) can prove the protocol.
  mutable Mutex cache_mu_;
  mutable uint64_t cached_distinct_ TB_GUARDED_BY(cache_mu_) = 0;
  mutable uint64_t cached_clustering_ TB_GUARDED_BY(cache_mu_) = 0;
  mutable bool cache_valid_ TB_GUARDED_BY(cache_mu_) = false;
};

}  // namespace tabbench

#endif  // TABBENCH_STORAGE_BTREE_H_
