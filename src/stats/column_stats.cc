#include "stats/column_stats.h"
#include <cmath>

namespace tabbench {

double ColumnStats::EstimateEqRows(const Value& v) const {
  if (row_count == 0) return 0.0;
  if (v.is_null()) return static_cast<double>(null_count);
  for (const auto& [mv, freq] : mcvs) {
    if (mv == v) return static_cast<double>(freq);
  }
  if (!histogram.empty()) return histogram.EstimateEqRows(v);
  // No histogram: uniform assumption over distinct values.
  if (num_distinct == 0) return 0.0;
  return static_cast<double>(row_count) / static_cast<double>(num_distinct);
}

double ColumnStats::EstimateEqSelectivity(const Value& v) const {
  if (row_count == 0) return 0.0;
  return EstimateEqRows(v) / static_cast<double>(row_count);
}

double ColumnStats::FracRowsValueFreqLess(uint64_t k) const {
  if (row_count == 0) return 0.0;
  uint64_t rows = 0;
  for (const auto& [f, d] : freq_of_freq) {
    if (f >= k) break;
    rows += f * d;
  }
  return static_cast<double>(rows) / static_cast<double>(row_count);
}

double ColumnStats::FracRowsValueFreqEq(uint64_t k) const {
  if (row_count == 0) return 0.0;
  for (const auto& [f, d] : freq_of_freq) {
    if (f == k) {
      return static_cast<double>(f * d) / static_cast<double>(row_count);
    }
    if (f > k) break;
  }
  return 0.0;
}

uint64_t ColumnStats::DistinctWithFreqLess(uint64_t k) const {
  uint64_t d_total = 0;
  for (const auto& [f, d] : freq_of_freq) {
    if (f >= k) break;
    d_total += d;
  }
  return d_total;
}

uint64_t ColumnStats::DistinctWithFreqEq(uint64_t k) const {
  for (const auto& [f, d] : freq_of_freq) {
    if (f == k) return d;
    if (f > k) break;
  }
  return 0;
}

Value ColumnStats::ExampleWithFreqNear(uint64_t freq,
                                       uint64_t* actual_freq) const {
  Value best;
  uint64_t best_freq = 0;
  double best_dist = -1.0;
  for (const auto& [f, v] : freq_examples) {
    // Distance in log space: "an order of magnitude larger" semantics.
    double d = std::fabs(std::log2(static_cast<double>(f)) -
                         std::log2(static_cast<double>(freq)));
    if (best_dist < 0.0 || d < best_dist) {
      best_dist = d;
      best = v;
      best_freq = f;
    }
  }
  if (actual_freq != nullptr) *actual_freq = best_freq;
  return best;
}

double ColumnStats::AvgFreq() const {
  if (num_distinct == 0) return 0.0;
  return static_cast<double>(row_count - null_count) /
         static_cast<double>(num_distinct);
}

}  // namespace tabbench
