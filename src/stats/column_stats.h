#ifndef TABBENCH_STATS_COLUMN_STATS_H_
#define TABBENCH_STATS_COLUMN_STATS_H_

#include <cstdint>
#include <vector>

#include "stats/histogram.h"
#include "types/value.h"

namespace tabbench {

/// Statistics of one column, collected by a full scan (the paper directs the
/// systems "to collect statistics before obtaining the recommendations and
/// before running the queries", Section 3.2.3).
struct ColumnStats {
  uint64_t row_count = 0;
  uint64_t null_count = 0;
  uint64_t num_distinct = 0;
  Value min, max;

  /// Most common values with their exact frequencies (top-k by count).
  std::vector<std::pair<Value, uint64_t>> mcvs;

  /// Equi-depth histogram over the non-MCV remainder.
  EquiDepthHistogram histogram;

  /// Frequency-of-frequency summary: sorted (frequency f, number of distinct
  /// values occurring exactly f times). Drives estimates of the benchmark's
  /// `c IN (SELECT c FROM T GROUP BY c HAVING COUNT(*) < k)` predicates.
  std::vector<std::pair<uint64_t, uint64_t>> freq_of_freq;

  /// One example value per distinct frequency (sorted by frequency,
  /// capped). The workload generators use these to realize the paper's
  /// constant-selection rule: pick k1 with the highest selectivity and
  /// k2/k3 whose frequencies are one and two orders of magnitude larger
  /// (Section 3.2.2).
  std::vector<std::pair<uint64_t, Value>> freq_examples;

  /// An example value whose frequency is closest to `freq` (nullptr-like
  /// empty Value when the column has no values).
  Value ExampleWithFreqNear(uint64_t freq, uint64_t* actual_freq) const;

  /// Estimated number of rows with column == v. Uses MCVs exactly, histogram
  /// otherwise.
  double EstimateEqRows(const Value& v) const;

  /// Estimated selectivity (fraction of rows) of column == v.
  double EstimateEqSelectivity(const Value& v) const;

  /// Fraction of *rows* whose value occurs with frequency `cmp_lt`-than k:
  /// RowsWithValueFreqLess(4) = P[row's value occurs < 4 times].
  double FracRowsValueFreqLess(uint64_t k) const;
  /// Fraction of rows whose value occurs exactly k times.
  double FracRowsValueFreqEq(uint64_t k) const;
  /// Number of distinct values with frequency < k.
  uint64_t DistinctWithFreqLess(uint64_t k) const;
  /// Number of distinct values with frequency == k.
  uint64_t DistinctWithFreqEq(uint64_t k) const;

  /// Average rows per distinct value (>= 1 when non-empty).
  double AvgFreq() const;
};

}  // namespace tabbench

#endif  // TABBENCH_STATS_COLUMN_STATS_H_
