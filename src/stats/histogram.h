#ifndef TABBENCH_STATS_HISTOGRAM_H_
#define TABBENCH_STATS_HISTOGRAM_H_

#include <vector>

#include "types/value.h"

namespace tabbench {

/// Equi-depth histogram over a column's non-null values.
///
/// Buckets hold (approximately) equal row counts; each bucket records its
/// inclusive upper bound, its row count, and its distinct-value count, which
/// is what the uniform-within-bucket equality estimate needs.
class EquiDepthHistogram {
 public:
  struct Bucket {
    Value upper;        // inclusive upper bound
    uint64_t rows = 0;
    uint64_t distinct = 0;
  };

  EquiDepthHistogram() = default;

  /// Builds from a *sorted* vector of non-null values.
  static EquiDepthHistogram Build(const std::vector<Value>& sorted_values,
                                  size_t num_buckets);

  /// Estimated number of rows with value == v (uniform within bucket).
  double EstimateEqRows(const Value& v) const;

  /// Estimated number of rows with value <= v.
  double EstimateLeRows(const Value& v) const;

  bool empty() const { return buckets_.empty(); }
  size_t num_buckets() const { return buckets_.size(); }
  const std::vector<Bucket>& buckets() const { return buckets_; }
  uint64_t total_rows() const { return total_rows_; }

 private:
  std::vector<Bucket> buckets_;
  uint64_t total_rows_ = 0;
};

}  // namespace tabbench

#endif  // TABBENCH_STATS_HISTOGRAM_H_
