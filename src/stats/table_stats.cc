#include "stats/table_stats.h"

namespace tabbench {

const ColumnStats* TableStats::FindColumn(const std::string& name) const {
  auto it = columns.find(name);
  if (it == columns.end()) return nullptr;
  return &it->second;
}

const TableStats* DatabaseStats::FindTable(const std::string& name) const {
  auto it = tables.find(name);
  if (it == tables.end()) return nullptr;
  return &it->second;
}

const ColumnStats* DatabaseStats::FindColumn(const std::string& table,
                                             const std::string& column) const {
  const TableStats* t = FindTable(table);
  if (t == nullptr) return nullptr;
  return t->FindColumn(column);
}

}  // namespace tabbench
