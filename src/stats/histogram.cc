#include "stats/histogram.h"

#include <algorithm>
#include <cassert>

namespace tabbench {

EquiDepthHistogram EquiDepthHistogram::Build(
    const std::vector<Value>& sorted_values, size_t num_buckets) {
  EquiDepthHistogram h;
  const size_t n = sorted_values.size();
  if (n == 0 || num_buckets == 0) return h;
  h.total_rows_ = n;
  num_buckets = std::min(num_buckets, n);
  const size_t target_depth = (n + num_buckets - 1) / num_buckets;

  Bucket cur;
  uint64_t cur_rows = 0, cur_distinct = 0;
  for (size_t i = 0; i < n; ++i) {
    const bool new_value = (i == 0) || (sorted_values[i] != sorted_values[i - 1]);
    if (new_value) ++cur_distinct;
    ++cur_rows;
    // Close the bucket at value boundaries once the target depth is met, so
    // that a single value never straddles two buckets.
    const bool last = (i + 1 == n);
    const bool boundary = last || (sorted_values[i + 1] != sorted_values[i]);
    if (boundary && (cur_rows >= target_depth || last)) {
      cur.upper = sorted_values[i];
      cur.rows = cur_rows;
      cur.distinct = cur_distinct;
      h.buckets_.push_back(cur);
      cur_rows = 0;
      cur_distinct = 0;
    }
  }
  return h;
}

double EquiDepthHistogram::EstimateEqRows(const Value& v) const {
  if (buckets_.empty()) return 0.0;
  // Find the first bucket whose upper bound >= v.
  auto it = std::lower_bound(
      buckets_.begin(), buckets_.end(), v,
      [](const Bucket& b, const Value& x) { return b.upper < x; });
  if (it == buckets_.end()) return 0.0;  // above max
  if (it->distinct == 0) return 0.0;
  return static_cast<double>(it->rows) / static_cast<double>(it->distinct);
}

double EquiDepthHistogram::EstimateLeRows(const Value& v) const {
  double rows = 0.0;
  for (const auto& b : buckets_) {
    if (b.upper <= v) {
      rows += static_cast<double>(b.rows);
    } else {
      // Partial bucket: assume half the bucket qualifies (no lower bound
      // tracked; adequate for the equality-only benchmark workloads).
      rows += static_cast<double>(b.rows) / 2.0;
      break;
    }
  }
  return rows;
}

}  // namespace tabbench
