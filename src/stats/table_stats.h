#ifndef TABBENCH_STATS_TABLE_STATS_H_
#define TABBENCH_STATS_TABLE_STATS_H_

#include <map>
#include <string>

#include "stats/column_stats.h"

namespace tabbench {

/// Statistics of one table (or materialized view).
struct TableStats {
  uint64_t row_count = 0;
  uint64_t pages = 0;
  double avg_row_bytes = 0.0;
  std::map<std::string, ColumnStats> columns;

  const ColumnStats* FindColumn(const std::string& name) const;
};

/// Statistics of every table in a database instance, keyed by table name.
struct DatabaseStats {
  std::map<std::string, TableStats> tables;

  const TableStats* FindTable(const std::string& name) const;
  const ColumnStats* FindColumn(const std::string& table,
                                const std::string& column) const;
};

}  // namespace tabbench

#endif  // TABBENCH_STATS_TABLE_STATS_H_
