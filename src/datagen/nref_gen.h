#ifndef TABBENCH_DATAGEN_NREF_GEN_H_
#define TABBENCH_DATAGEN_NREF_GEN_H_

#include <memory>

#include "engine/database.h"
#include "util/status.h"

namespace tabbench {

/// Scaling shared by all generated databases.
///
/// The paper's databases (6.5 GB NREF, 10 GB TPC-H) are scaled down by
/// `1/scale_inverse` in row count, and the simulated hardware is scaled
/// down with them: per-page I/O time and per-tuple CPU time are multiplied
/// by `scale_inverse`, and memory (buffer pool, work memory) divided by it.
/// Relative costs — full scan vs. index probe, spill vs. in-memory,
/// timeout-or-not — are preserved, and simulated elapsed times stay in the
/// paper's absolute range (seconds .. 30-minute timeouts). DESIGN.md §3.
DatabaseOptions ScaledOptions(double scale_inverse);

struct NrefScaleOptions {
  /// 1/400 of the paper's row counts by default (Neighboring_seq:
  /// 78.7M -> ~197K rows).
  double scale_inverse = 400.0;
  uint64_t seed = 2005;
  /// Cost-parameter scale (ScaledOptions argument). Defaults to
  /// scale_inverse; tests override it to keep tiny databases runnable
  /// under the fixed 30-minute timeout.
  double hardware_scale_inverse = -1.0;
};

/// The NREF relational schema of Section 1.1 (six relations, PKs as
/// underlined in the paper; `sequence` is non-indexable).
std::vector<TableDef> NrefTableDefs();

/// Registers the schema in a bare catalog (schema-only tests).
void AddNrefSchema(Catalog* catalog);

/// Generates and loads a synthetic NREF instance: paper-proportional row
/// counts, shared value domains across join-compatible columns, and skewed
/// frequency distributions so the families' constant-selection rules
/// (frequencies an order of magnitude apart; HAVING COUNT(*) < 4
/// restrictions) are realizable. Returns a ready Database (stats collected,
/// PK indexes built = configuration P).
Result<std::unique_ptr<Database>> GenerateNref(const NrefScaleOptions& opts);

}  // namespace tabbench

#endif  // TABBENCH_DATAGEN_NREF_GEN_H_
