#include "datagen/tpch_gen.h"

#include <algorithm>

#include "datagen/nref_gen.h"  // ScaledOptions
#include "util/rng.h"
#include "util/strings.h"
#include "util/zipf.h"

namespace tabbench {

std::vector<TableDef> TpchTableDefs() {
  TableDef part;
  part.name = "part";
  part.columns = {
      {"p_partkey", TypeId::kInt, "partkey", true, 8},
      {"p_brand", TypeId::kString, "brand", true, 10},
      {"p_type", TypeId::kString, "type", true, 18},
      {"p_size", TypeId::kInt, "size", true, 8},
      {"p_container", TypeId::kString, "container", true, 10},
      {"p_retailprice", TypeId::kDouble, "", false, 8},
  };
  part.primary_key = {"p_partkey"};

  TableDef supplier;
  supplier.name = "supplier";
  supplier.columns = {
      {"s_suppkey", TypeId::kInt, "suppkey", true, 8},
      {"s_nationkey", TypeId::kInt, "nation", true, 8},
      {"s_acctbal", TypeId::kDouble, "", false, 8},
  };
  supplier.primary_key = {"s_suppkey"};

  TableDef customer;
  customer.name = "customer";
  customer.columns = {
      {"c_custkey", TypeId::kInt, "custkey", true, 8},
      {"c_nationkey", TypeId::kInt, "nation", true, 8},
      {"c_mktsegment", TypeId::kString, "segment", true, 10},
      {"c_acctbal", TypeId::kDouble, "", false, 8},
  };
  customer.primary_key = {"c_custkey"};

  TableDef orders;
  orders.name = "orders";
  orders.columns = {
      {"o_orderkey", TypeId::kInt, "orderkey", true, 8},
      {"o_custkey", TypeId::kInt, "custkey", true, 8},
      {"o_orderstatus", TypeId::kString, "ostatus", true, 4},
      {"o_totalprice", TypeId::kDouble, "", false, 8},
      {"o_orderdate", TypeId::kInt, "date", true, 8},
      {"o_orderpriority", TypeId::kString, "priority", true, 12},
  };
  orders.primary_key = {"o_orderkey"};
  orders.foreign_keys = {{{"o_custkey"}, "customer", {"c_custkey"}}};

  TableDef partsupp;
  partsupp.name = "partsupp";
  partsupp.columns = {
      {"ps_partkey", TypeId::kInt, "partkey", true, 8},
      {"ps_suppkey", TypeId::kInt, "suppkey", true, 8},
      {"ps_availqty", TypeId::kInt, "qty", true, 8},
      {"ps_supplycost", TypeId::kDouble, "", false, 8},
  };
  partsupp.primary_key = {"ps_partkey", "ps_suppkey"};
  partsupp.foreign_keys = {{{"ps_partkey"}, "part", {"p_partkey"}},
                           {{"ps_suppkey"}, "supplier", {"s_suppkey"}}};

  TableDef lineitem;
  lineitem.name = "lineitem";
  lineitem.columns = {
      {"l_orderkey", TypeId::kInt, "orderkey", true, 8},
      {"l_linenumber", TypeId::kInt, "ordinal", true, 8},
      {"l_partkey", TypeId::kInt, "partkey", true, 8},
      {"l_suppkey", TypeId::kInt, "suppkey", true, 8},
      {"l_quantity", TypeId::kInt, "qty", true, 8},
      {"l_extendedprice", TypeId::kDouble, "", false, 8},
      {"l_discount", TypeId::kInt, "discount", true, 8},
      {"l_returnflag", TypeId::kString, "flag", true, 4},
      {"l_linestatus", TypeId::kString, "lstatus", true, 4},
      {"l_shipdate", TypeId::kInt, "date", true, 8},
      {"l_commitdate", TypeId::kInt, "date", true, 8},
  };
  lineitem.primary_key = {"l_orderkey", "l_linenumber"};
  lineitem.foreign_keys = {
      {{"l_orderkey"}, "orders", {"o_orderkey"}},
      {{"l_partkey"}, "part", {"p_partkey"}},
      {{"l_suppkey"}, "supplier", {"s_suppkey"}},
      {{"l_partkey", "l_suppkey"}, "partsupp", {"ps_partkey", "ps_suppkey"}},
  };

  return {part, supplier, customer, orders, partsupp, lineitem};
}

void AddTpchSchema(Catalog* catalog) {
  for (const auto& t : TpchTableDefs()) {
    Status st = catalog->AddTable(t);
    (void)st;
  }
}

namespace {

/// Draws either uniformly or Zipf(theta) over [0, n).
class Skewed {
 public:
  Skewed(size_t n, double theta)
      : n_(n), uniform_(theta <= 0.0),
        zipf_(uniform_ ? 1 : n, uniform_ ? 1.0 : theta) {}

  size_t Draw(Rng* rng) const {
    if (uniform_) return rng->Uniform(n_);
    return zipf_.Sample(rng);
  }

 private:
  size_t n_;
  bool uniform_;
  ZipfSampler zipf_;
};

}  // namespace

Result<std::unique_ptr<Database>> GenerateTpch(const TpchScaleOptions& opts) {
  double hw = opts.hardware_scale_inverse > 0 ? opts.hardware_scale_inverse
                                              : opts.scale_inverse;
  auto db = std::make_unique<Database>(ScaledOptions(hw));
  for (const auto& t : TpchTableDefs()) {
    TB_RETURN_IF_ERROR(db->CreateTable(t));
  }
  Rng rng(opts.seed);
  const double s = 1.0 / opts.scale_inverse;
  const double theta = opts.zipf_theta;

  const size_t n_part = static_cast<size_t>(2000000 * s);
  const size_t n_supplier = std::max<size_t>(40, static_cast<size_t>(100000 * s));
  const size_t n_customer = static_cast<size_t>(1500000 * s);
  const size_t n_orders = static_cast<size_t>(15000000 * s);
  const size_t n_partsupp = static_cast<size_t>(8000000 * s);
  const size_t n_lineitem = static_cast<size_t>(60000000 * s);

  static const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                                    "MACHINERY", "HOUSEHOLD"};
  static const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                      "4-NOT SPEC", "5-LOW"};
  static const char* kStatuses[] = {"F", "O", "P"};
  static const char* kFlags[] = {"A", "N", "R"};
  static const char* kContainers[] = {"SM BOX",   "SM CASE", "MED BOX",
                                      "MED PACK", "LG BOX",  "LG CASE",
                                      "JUMBO JAR", "WRAP BAG"};
  static const char* kTypes[] = {"STANDARD ANODIZED", "SMALL PLATED",
                                 "MEDIUM POLISHED",   "LARGE BRUSHED",
                                 "ECONOMY BURNISHED", "PROMO ANODIZED"};

  Skewed brand_d(25, theta), type_d(6 * 5, theta), size_d(50, theta),
      container_d(8, theta), nation_d(25, theta), segment_d(5, theta),
      status_d(3, theta), priority_d(5, theta), date_d(2400, theta),
      qty_d(50, theta), discount_d(11, theta), flag_d(3, theta),
      part_ref(n_part, theta), supp_ref(n_supplier, theta),
      cust_ref(n_customer, theta), order_ref(n_orders, theta);

  // part
  for (size_t i = 0; i < n_part; ++i) {
    std::vector<Value> row;
    row.emplace_back(static_cast<int64_t>(i));
    row.emplace_back(StrFormat("Brand#%02zu", brand_d.Draw(&rng) + 10));
    size_t ty = type_d.Draw(&rng);
    row.emplace_back(StrFormat("%s %zu", kTypes[ty % 6], ty / 6));
    row.emplace_back(static_cast<int64_t>(1 + size_d.Draw(&rng)));
    row.emplace_back(std::string(kContainers[container_d.Draw(&rng)]));
    row.emplace_back(900.0 + rng.UniformDouble() * 1200.0);
    TB_RETURN_IF_ERROR(db->Insert("part", Tuple(std::move(row))));
  }

  // supplier
  for (size_t i = 0; i < n_supplier; ++i) {
    std::vector<Value> row;
    row.emplace_back(static_cast<int64_t>(i));
    row.emplace_back(static_cast<int64_t>(nation_d.Draw(&rng)));
    row.emplace_back(-999.0 + rng.UniformDouble() * 10000.0);
    TB_RETURN_IF_ERROR(db->Insert("supplier", Tuple(std::move(row))));
  }

  // customer
  for (size_t i = 0; i < n_customer; ++i) {
    std::vector<Value> row;
    row.emplace_back(static_cast<int64_t>(i));
    row.emplace_back(static_cast<int64_t>(nation_d.Draw(&rng)));
    row.emplace_back(std::string(kSegments[segment_d.Draw(&rng)]));
    row.emplace_back(-999.0 + rng.UniformDouble() * 10000.0);
    TB_RETURN_IF_ERROR(db->Insert("customer", Tuple(std::move(row))));
  }

  // orders
  for (size_t i = 0; i < n_orders; ++i) {
    std::vector<Value> row;
    row.emplace_back(static_cast<int64_t>(i));
    row.emplace_back(static_cast<int64_t>(cust_ref.Draw(&rng)));
    row.emplace_back(std::string(kStatuses[status_d.Draw(&rng)]));
    row.emplace_back(1000.0 + rng.UniformDouble() * 350000.0);
    row.emplace_back(static_cast<int64_t>(8035 + date_d.Draw(&rng)));
    row.emplace_back(std::string(kPriorities[priority_d.Draw(&rng)]));
    TB_RETURN_IF_ERROR(db->Insert("orders", Tuple(std::move(row))));
  }

  // partsupp: PK (partkey, suppkey); deterministic supplier assignment like
  // dbgen (4 suppliers per part pattern, adapted to the scaled sizes)
  {
    size_t per_part = std::max<size_t>(1, n_partsupp / std::max<size_t>(1, n_part));
    size_t emitted = 0;
    for (size_t p = 0; p < n_part && emitted < n_partsupp; ++p) {
      for (size_t k = 0; k < per_part && emitted < n_partsupp; ++k) {
        size_t supp = (p + k * (n_supplier / std::max<size_t>(per_part, 1) + 1)) %
                      n_supplier;
        std::vector<Value> row;
        row.emplace_back(static_cast<int64_t>(p));
        row.emplace_back(static_cast<int64_t>(supp));
        row.emplace_back(static_cast<int64_t>(1 + qty_d.Draw(&rng)));
        row.emplace_back(1.0 + rng.UniformDouble() * 999.0);
        TB_RETURN_IF_ERROR(db->Insert("partsupp", Tuple(std::move(row))));
        ++emitted;
      }
    }
  }

  // lineitem: clustered by orderkey (as dbgen emits it)
  {
    size_t per_part_ps =
        std::max<size_t>(1, n_partsupp / std::max<size_t>(1, n_part));
    size_t emitted = 0;
    size_t order = 0;
    while (emitted < n_lineitem) {
      size_t lines = 1 + rng.Uniform(7);
      for (size_t l = 0; l < lines && emitted < n_lineitem; ++l, ++emitted) {
        size_t p = part_ref.Draw(&rng);
        // Pick a supplier that actually stocks the part (FK into partsupp).
        size_t k = rng.Uniform(per_part_ps);
        size_t supp = (p + k * (n_supplier / std::max<size_t>(per_part_ps, 1) + 1)) %
                      n_supplier;
        std::vector<Value> row;
        row.emplace_back(static_cast<int64_t>(order % n_orders));
        row.emplace_back(static_cast<int64_t>(l));
        row.emplace_back(static_cast<int64_t>(p));
        row.emplace_back(static_cast<int64_t>(supp));
        row.emplace_back(static_cast<int64_t>(1 + qty_d.Draw(&rng)));
        row.emplace_back(1000.0 + rng.UniformDouble() * 90000.0);
        row.emplace_back(static_cast<int64_t>(discount_d.Draw(&rng)));
        row.emplace_back(std::string(kFlags[flag_d.Draw(&rng)]));
        row.emplace_back(std::string(kStatuses[status_d.Draw(&rng)]));
        row.emplace_back(static_cast<int64_t>(8035 + date_d.Draw(&rng)));
        row.emplace_back(static_cast<int64_t>(8035 + date_d.Draw(&rng)));
        TB_RETURN_IF_ERROR(db->Insert("lineitem", Tuple(std::move(row))));
      }
      ++order;
    }
  }

  TB_RETURN_IF_ERROR(db->FinishLoad());
  return db;
}

}  // namespace tabbench
