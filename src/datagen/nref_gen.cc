#include "datagen/nref_gen.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/rng.h"
#include "util/strings.h"
#include "util/zipf.h"

namespace tabbench {

DatabaseOptions ScaledOptions(double scale_inverse) {
  DatabaseOptions o;
  // Unscaled 2005 desktop: ~1.3 ms/page effective scan rate through the
  // engine (~6 MB/s), ~1.5 us of CPU per tuple, ~0.75 GB of buffer pool,
  // ~100 MB work memory per hash operation.
  o.cost.page_io_seconds = 0.0013 * scale_inverse;
  o.cost.cpu_tuple_seconds = 1.5e-6 * scale_inverse;
  o.cost.cpu_hash_seconds = 0.5e-6 * scale_inverse;
  o.cost.timeout_seconds = 1800.0;  // 30 minutes, unscaled (Section 4.1)
  o.buffer_pool_pages = static_cast<size_t>(
      std::max(64.0, 96000.0 / scale_inverse));
  o.cost.work_mem_pages = static_cast<size_t>(
      std::max(16.0, 12800.0 / scale_inverse));
  return o;
}

std::vector<TableDef> NrefTableDefs() {
  // Average widths approximate the paper's data (lineages are long
  // taxonomic strings; sequences are large non-indexable text).
  TableDef protein;
  protein.name = "protein";
  protein.columns = {
      {"nref_id", TypeId::kInt, "nref", true, 8},
      {"p_name", TypeId::kString, "name", true, 18},
      {"last_updated", TypeId::kInt, "date", true, 8},
      {"sequence", TypeId::kString, "", false, 120},
      {"length", TypeId::kInt, "length", true, 8},
  };
  protein.primary_key = {"nref_id"};

  TableDef source;
  source.name = "source";
  source.columns = {
      {"nref_id", TypeId::kInt, "nref", true, 8},
      {"p_id", TypeId::kInt, "ordinal", true, 8},
      {"taxon_id", TypeId::kInt, "taxon", true, 8},
      {"accession", TypeId::kString, "accession", true, 12},
      {"p_name", TypeId::kString, "name", true, 18},
      {"source", TypeId::kString, "db_name", true, 10},
  };
  source.primary_key = {"nref_id", "p_id"};
  source.foreign_keys = {{{"nref_id"}, "protein", {"nref_id"}}};

  TableDef taxonomy;
  taxonomy.name = "taxonomy";
  taxonomy.columns = {
      {"nref_id", TypeId::kInt, "nref", true, 8},
      {"taxon_id", TypeId::kInt, "taxon", true, 8},
      {"lineage", TypeId::kString, "lineage", true, 40},
      {"species_name", TypeId::kString, "name", true, 18},
      {"common_name", TypeId::kString, "name", true, 14},
  };
  taxonomy.primary_key = {"nref_id", "taxon_id"};
  taxonomy.foreign_keys = {{{"nref_id"}, "protein", {"nref_id"}}};

  TableDef organism;
  organism.name = "organism";
  organism.columns = {
      {"nref_id", TypeId::kInt, "nref", true, 8},
      {"ordinal", TypeId::kInt, "ordinal", true, 8},
      {"taxon_id", TypeId::kInt, "taxon", true, 8},
      {"name", TypeId::kString, "name", true, 18},
  };
  organism.primary_key = {"nref_id", "ordinal"};
  organism.foreign_keys = {{{"nref_id"}, "protein", {"nref_id"}}};

  TableDef neighboring;
  neighboring.name = "neighboring_seq";
  neighboring.columns = {
      {"nref_id_1", TypeId::kInt, "nref", true, 8},
      {"ordinal", TypeId::kInt, "ordinal", true, 8},
      {"nref_id_2", TypeId::kInt, "nref", true, 8},
      {"taxon_id_2", TypeId::kInt, "taxon", true, 8},
      {"length_2", TypeId::kInt, "length", true, 8},
      {"score", TypeId::kDouble, "", false, 8},
      {"overlap_length", TypeId::kInt, "length", true, 8},
      {"start_1", TypeId::kInt, "", false, 8},
      {"start_2", TypeId::kInt, "", false, 8},
      {"end_1", TypeId::kInt, "", false, 8},
      {"end_2", TypeId::kInt, "", false, 8},
  };
  neighboring.primary_key = {"nref_id_1", "ordinal"};
  neighboring.foreign_keys = {{{"nref_id_1"}, "protein", {"nref_id"}},
                              {{"nref_id_2"}, "protein", {"nref_id"}}};

  TableDef identical;
  identical.name = "identical_seq";
  identical.columns = {
      {"nref_id_1", TypeId::kInt, "nref", true, 8},
      {"ordinal", TypeId::kInt, "ordinal", true, 8},
      {"nref_id_2", TypeId::kInt, "nref", true, 8},
      {"taxon_id", TypeId::kInt, "taxon", true, 8},
  };
  identical.primary_key = {"nref_id_1", "ordinal"};
  identical.foreign_keys = {{{"nref_id_1"}, "protein", {"nref_id"}},
                            {{"nref_id_2"}, "protein", {"nref_id"}}};

  return {protein, source, taxonomy, organism, neighboring, identical};
}

void AddNrefSchema(Catalog* catalog) {
  for (const auto& t : NrefTableDefs()) {
    Status st = catalog->AddTable(t);
    (void)st;  // duplicate-add only happens in tests reusing a catalog
  }
}

namespace {

/// Skewed value pools shared across join-compatible columns.
struct Pools {
  size_t num_proteins = 0;
  ZipfSampler protein_ref;   // references to proteins (neighbors, identicals)
  ZipfSampler taxon;         // taxon ids
  ZipfSampler name;          // protein/species/common names
  ZipfSampler lineage;       // long lineage strings, few and heavy
  ZipfSampler length;        // sequence lengths
  ZipfSampler db;            // source database names

  Pools(size_t num_p, Rng* rng)
      : num_proteins(num_p),
        // Neighbor references are near-uniform: all-against-all FASTA
        // neighborhoods give every protein a bounded neighbor set.
        protein_ref(num_p, 0.4),
        taxon(std::max<size_t>(64, num_p / 4), 0.8),
        name(std::max<size_t>(64, num_p / 2), 1.0),
        lineage(std::max<size_t>(48, num_p / 6), 1.1),
        length(512, 0.6),
        db(6, 0.7) {
    (void)rng;
  }

  Value Taxon(Rng* rng) const {
    return Value(static_cast<int64_t>(taxon.Sample(rng)));
  }
  Value Name(Rng* rng) const {
    return Value(StrFormat("name_%05zu", name.Sample(rng)));
  }
  Value Lineage(Rng* rng) const {
    size_t r = lineage.Sample(rng);
    return Value(StrFormat("cellular_organisms;clade_%03zu;family_%03zu", r % 97, r));
  }
  Value Length(Rng* rng) const {
    return Value(static_cast<int64_t>(40 + 7 * length.Sample(rng)));
  }
  Value Db(Rng* rng) const {
    static const char* kDbs[] = {"SwissProt", "TrEMBL",  "RefSeq",
                                 "GenPept",   "PIR-PSD", "PDB"};
    return Value(std::string(kDbs[db.Sample(rng)]));
  }
  Value ProteinRef(Rng* rng) const {
    return Value(static_cast<int64_t>(protein_ref.Sample(rng)));
  }
};

std::string RandomSequence(Rng* rng, size_t len) {
  static const char kAmino[] = "ACDEFGHIKLMNPQRSTVWY";
  std::string s;
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) s += kAmino[rng->Uniform(20)];
  return s;
}

}  // namespace

Result<std::unique_ptr<Database>> GenerateNref(const NrefScaleOptions& opts) {
  double hw = opts.hardware_scale_inverse > 0 ? opts.hardware_scale_inverse
                                              : opts.scale_inverse;
  auto db = std::make_unique<Database>(ScaledOptions(hw));
  for (const auto& t : NrefTableDefs()) {
    TB_RETURN_IF_ERROR(db->CreateTable(t));
  }
  Rng rng(opts.seed);

  const double s = 1.0 / opts.scale_inverse;
  const size_t n_protein = static_cast<size_t>(1100000 * s);
  const size_t n_source = static_cast<size_t>(3000000 * s);
  const size_t n_taxonomy = static_cast<size_t>(15100000 * s);
  const size_t n_organism = static_cast<size_t>(1200000 * s);
  const size_t n_neighboring = static_cast<size_t>(78700000 * s);
  const size_t n_identical = static_cast<size_t>(500000 * s);

  Pools pools(n_protein, &rng);

  // protein
  for (size_t i = 0; i < n_protein; ++i) {
    std::vector<Value> row;
    row.emplace_back(static_cast<int64_t>(i));
    row.push_back(pools.Name(&rng));
    row.emplace_back(static_cast<int64_t>(rng.UniformInt(11000, 12800)));
    Value len = pools.Length(&rng);
    row.emplace_back(RandomSequence(&rng, 60 + rng.Uniform(120)));
    row.push_back(len);
    TB_RETURN_IF_ERROR(db->Insert("protein", Tuple(std::move(row))));
  }

  // source: ~2.7 rows per protein, Zipf-popular proteins get more
  {
    std::vector<uint32_t> per(n_protein, 0);
    for (size_t i = 0; i < n_source; ++i) {
      size_t p = static_cast<size_t>(pools.ProteinRef(&rng).as_int());
      std::vector<Value> row;
      row.emplace_back(static_cast<int64_t>(p));
      row.emplace_back(static_cast<int64_t>(per[p]++));
      row.push_back(pools.Taxon(&rng));
      row.emplace_back(StrFormat("AC%07llu",
                                 static_cast<unsigned long long>(rng.Uniform(
                                     n_source * 2))));
      row.push_back(pools.Name(&rng));
      row.push_back(pools.Db(&rng));
      TB_RETURN_IF_ERROR(db->Insert("source", Tuple(std::move(row))));
    }
  }

  // taxonomy: ~13.7 rows per protein; PK (nref_id, taxon_id) needs distinct
  // taxa per protein — tracked across bursts since `p` may wrap around.
  {
    size_t i = 0;
    size_t p = 0;
    std::vector<std::set<int64_t>> used(n_protein);
    while (i < n_taxonomy) {
      size_t burst = 1 + rng.Uniform(26);  // avg ~13.7
      for (size_t b = 0; b < burst && i < n_taxonomy; ++b) {
        Value taxon = pools.Taxon(&rng);
        if (!used[p % n_protein].insert(taxon.as_int()).second) continue;
        std::vector<Value> row;
        row.emplace_back(static_cast<int64_t>(p % n_protein));
        row.push_back(taxon);
        row.push_back(pools.Lineage(&rng));
        row.push_back(pools.Name(&rng));
        row.push_back(pools.Name(&rng));
        TB_RETURN_IF_ERROR(db->Insert("taxonomy", Tuple(std::move(row))));
        ++i;
      }
      ++p;
    }
  }

  // organism: ~1.1 per protein
  {
    std::vector<uint32_t> per(n_protein, 0);
    for (size_t i = 0; i < n_organism; ++i) {
      size_t p = rng.Uniform(n_protein);
      std::vector<Value> row;
      row.emplace_back(static_cast<int64_t>(p));
      row.emplace_back(static_cast<int64_t>(per[p]++));
      row.push_back(pools.Taxon(&rng));
      row.push_back(pools.Name(&rng));
      TB_RETURN_IF_ERROR(db->Insert("organism", Tuple(std::move(row))));
    }
  }

  // neighboring_seq: ~71 per protein, clustered by nref_id_1 (generated in
  // nref_id_1 order, giving the PK index its natural clustering)
  {
    size_t i = 0;
    size_t p = 0;
    while (i < n_neighboring) {
      size_t burst = 1 + rng.Uniform(142);
      for (size_t b = 0; b < burst && i < n_neighboring; ++b, ++i) {
        std::vector<Value> row;
        row.emplace_back(static_cast<int64_t>(p % n_protein));
        row.emplace_back(static_cast<int64_t>(b));
        row.push_back(pools.ProteinRef(&rng));
        row.push_back(pools.Taxon(&rng));
        row.push_back(pools.Length(&rng));
        row.emplace_back(40.0 + rng.UniformDouble() * 960.0);
        row.push_back(pools.Length(&rng));
        int64_t s1 = rng.UniformInt(1, 400);
        int64_t s2 = rng.UniformInt(1, 400);
        row.emplace_back(s1);
        row.emplace_back(s2);
        row.emplace_back(s1 + rng.UniformInt(20, 500));
        row.emplace_back(s2 + rng.UniformInt(20, 500));
        TB_RETURN_IF_ERROR(
            db->Insert("neighboring_seq", Tuple(std::move(row))));
      }
      ++p;
    }
  }

  // identical_seq: ~0.45 per protein
  {
    std::vector<uint32_t> per(n_protein, 0);
    for (size_t i = 0; i < n_identical; ++i) {
      size_t p = static_cast<size_t>(pools.ProteinRef(&rng).as_int());
      std::vector<Value> row;
      row.emplace_back(static_cast<int64_t>(p));
      row.emplace_back(static_cast<int64_t>(per[p]++));
      row.push_back(pools.ProteinRef(&rng));
      row.push_back(pools.Taxon(&rng));
      TB_RETURN_IF_ERROR(db->Insert("identical_seq", Tuple(std::move(row))));
    }
  }

  TB_RETURN_IF_ERROR(db->FinishLoad());
  return db;
}

}  // namespace tabbench
