#ifndef TABBENCH_DATAGEN_TPCH_GEN_H_
#define TABBENCH_DATAGEN_TPCH_GEN_H_

#include <memory>

#include "engine/database.h"
#include "util/status.h"

namespace tabbench {

struct TpchScaleOptions {
  /// 1/400 of the paper's 10 GB (~SF10) row counts by default
  /// (Lineitem: 60M -> 150K rows).
  double scale_inverse = 400.0;
  /// Zipfian skew factor: 0 = the standard uniform TPC-H, 1 = the skewed
  /// variant the paper generates with Chaudhuri & Narasayya's tool [5].
  double zipf_theta = 0.0;
  uint64_t seed = 1999;
  /// Cost-parameter scale (ScaledOptions argument). Defaults to
  /// scale_inverse; tests override it.
  double hardware_scale_inverse = -1.0;
};

/// The TPC-H subset schema used by the benchmark families (Lineitem,
/// Orders, Partsupp, Part, Supplier, Customer) with semantic domains
/// assigned so that the families' non-key joins (e.g. l_shipdate =
/// o_orderdate, l_quantity = ps_availqty) are expressible.
std::vector<TableDef> TpchTableDefs();

/// Registers the schema in a bare catalog (schema-only tests).
void AddTpchSchema(Catalog* catalog);

/// Generates and loads a TPC-H instance (uniform or skewed). Returns a
/// ready Database (stats collected, PK indexes built = configuration P).
Result<std::unique_ptr<Database>> GenerateTpch(const TpchScaleOptions& opts);

}  // namespace tabbench

#endif  // TABBENCH_DATAGEN_TPCH_GEN_H_
