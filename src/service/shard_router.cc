#include "service/shard_router.h"

#include <algorithm>
#include <climits>
#include <cstdlib>
#include <utility>

#include "util/fault_injection.h"
#include "util/retry.h"

namespace tabbench {

namespace {

/// Wrappers so the chaos hooks are real TB_FAULT_POINT sites: the macro
/// returns the injected Status from a Status-returning function, and the
/// analyzer's fault-coverage pass counts the sites by the macro token.

/// Fires = bounce this submission at the router door (before admission).
Status RouteFaultPoint() {
  TB_FAULT_POINT("service.shard.route");
  return Status::OK();
}

/// Fires = chaos-kill the submission's currently assigned shard before the
/// routing decision, as if it died mid-run.
Status QuarantineFaultPoint() {
  TB_FAULT_POINT("service.shard.quarantine");
  return Status::OK();
}

std::future<Result<QueryResult>> ReadyFuture(Status status) {
  std::promise<Result<QueryResult>> prom;
  prom.set_value(std::move(status));
  return prom.get_future();
}

}  // namespace

double RetryAfterHintSeconds(const Status& status) {
  static constexpr char kKey[] = "retry_after_seconds=";
  const std::string& msg = status.message();
  const size_t pos = msg.find(kKey);
  if (pos == std::string::npos) return 0.0;
  return std::strtod(msg.c_str() + pos + sizeof(kKey) - 1, nullptr);
}

ShardRouter::ShardRouter(const Database* db, ShardRouterOptions options)
    : db_(db),
      options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock : &own_clock_),
      shards_([&] {
        std::vector<std::unique_ptr<Shard>> v;
        const size_t n = std::max<size_t>(1, options_.shards);
        v.reserve(n);
        for (size_t i = 0; i < n; ++i) {
          ShardOptions so = options_.shard;
          if (!options_.journal_dir.empty()) {
            so.service.journal_path = options_.journal_dir + "/shard-" +
                                      std::to_string(i + 1) + ".tbj";
          }
          v.push_back(std::make_unique<Shard>(
              db, static_cast<uint32_t>(i + 1), so));
        }
        return v;
      }()) {
  {
    MutexLock lock(&mu_);
    shard_completions_.assign(shards_.size(), 0);
  }
  if (!options_.journal_dir.empty()) {
    JournalHeader header;
    header.metadata["writer"] = "shard-router";
    header.metadata["shards"] = std::to_string(shards_.size());
    auto writer =
        RunJournalWriter::Create(options_.journal_dir + "/router.tbj", header);
    if (writer.ok()) {
      journal_ = writer.TakeValue();
    } else {
      MutexLock lock(&mu_);
      journal_status_ = writer.status();
    }
  }
  size_t workers = options_.router_workers;
  if (workers == 0) {
    size_t shard_workers = 0;
    for (const auto& s : shards_) shard_workers += s->service()->num_workers();
    workers = 2 * shard_workers;
    if (options_.max_in_flight > 0) {
      workers = std::min(workers, options_.max_in_flight);
    }
    workers = std::max<size_t>(2, workers);
  }
  // Unbounded queue: admission control is the router's own in-flight cap,
  // so an admitted job must never be bounced by its own dispatcher pool.
  pool_ = std::make_unique<ThreadPool>(ThreadPool::Options{workers, 0});
}

ShardRouter::~ShardRouter() { Shutdown(); }

void ShardRouter::Shutdown() {
  shutdown_.store(true, std::memory_order_relaxed);
  // Everything below is idempotent and blocks until drained, so a second
  // caller (destructor after an explicit Shutdown) waits rather than racing.
  pool_->Shutdown();
  for (const auto& s : shards_) s->Shutdown();
}

size_t ShardRouter::HomeIndex(uint64_t domain) const {
  // splitmix64 finalizer: cheap, well-mixed, and stable across runs — the
  // domain -> home mapping is part of the deterministic-replay contract.
  uint64_t z = domain + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return static_cast<size_t>(z % shards_.size());
}

uint32_t ShardRouter::HomeShardId(uint64_t domain) const {
  return static_cast<uint32_t>(HomeIndex(domain) + 1);
}

uint32_t ShardRouter::DomainShardId(uint64_t domain) const {
  MutexLock lock(&mu_);
  auto it = domains_.find(domain);
  if (it == domains_.end() || !it->second.initialized) {
    return static_cast<uint32_t>(HomeIndex(domain) + 1);
  }
  return static_cast<uint32_t>(it->second.shard + 1);
}

void ShardRouter::LogLocked(const char* kind, uint32_t shard_id,
                            uint64_t domain, std::string detail,
                            std::vector<JournalServiceEvent>* out_events) {
  JournalServiceEvent ev;
  ev.sequence = next_decision_seq_++;
  ev.clock_seconds = clock_->Now();
  ev.shard_id = shard_id;
  ev.domain = domain;
  ev.kind = kind;
  ev.detail = std::move(detail);
  if (decisions_.size() >= options_.max_decisions && !decisions_.empty()) {
    decisions_.erase(decisions_.begin());
  }
  decisions_.push_back(ev);
  if (out_events != nullptr) out_events->push_back(std::move(ev));
}

void ShardRouter::SweepQuarantinesLocked(
    double now, std::vector<JournalServiceEvent>* out_events) {
  for (const auto& s : shards_) {
    if (s->MaybeOpenProbeWindow(now)) {
      LogLocked("probe-window", s->id(), 0, "quarantine cooldown elapsed",
                out_events);
    }
  }
}

void ShardRouter::EvaluateShardLocked(
    size_t index, std::vector<JournalServiceEvent>* out_events) {
  Shard* s = shards_[index].get();
  const Shard::Transition t = s->EvaluateHealth(clock_->Now());
  if (!t.changed) return;
  if (t.to == ShardHealth::kQuarantined) {
    ++stats_.quarantines;
    LogLocked("quarantine", s->id(), 0, t.reason, out_events);
  } else if (t.to == ShardHealth::kDegraded) {
    ++stats_.degrades;
    LogLocked("degrade", s->id(), 0, t.reason, out_events);
  } else {
    ++stats_.recoveries;
    LogLocked("recover", s->id(), 0, t.reason, out_events);
  }
}

void ShardRouter::KillShardLocked(size_t index, const std::string& reason,
                                  std::vector<JournalServiceEvent>* out_events) {
  Shard* s = shards_[index].get();
  s->Kill(clock_->Now());
  ++stats_.kills;
  ++stats_.quarantines;
  LogLocked("kill", s->id(), 0, reason, out_events);
}

ShardRouter::Target ShardRouter::AcquireTargetLocked(
    uint64_t domain, int priority,
    std::vector<JournalServiceEvent>* out_events) {
  const double now = clock_->Now();
  SweepQuarantinesLocked(now, out_events);
  DomainState& ds = domains_[domain];
  const size_t home = HomeIndex(domain);
  if (!ds.initialized) {
    ds.initialized = true;
    ds.shard = home;
  }
  // Chaos: an armed quarantine fault kills the domain's currently assigned
  // shard right before the decision, as if it crashed mid-run. Evaluated on
  // the submitter's thread so @nth schedules replay deterministically.
  if (Status f = QuarantineFaultPoint(); !f.ok()) {
    KillShardLocked(ds.shard, "fault injection: " + f.ToString(), out_events);
  }

  Target t;
  Shard* home_sh = shards_[home].get();
  // Recovery probing: domains homed on a recovering shard steer a bounded
  // quota of their jobs back onto it. Probes run sessionless (a cold
  // private session) so a failing probe leaves the domain's warm session on
  // its sibling untouched.
  if (home_sh->health() == ShardHealth::kRecovering && home_sh->AdmitProbe()) {
    ++stats_.probes;
    LogLocked("probe", home_sh->id(), domain, "steering probe to home shard",
              out_events);
    t.shard_index = home;
    t.probe = true;
    return t;
  }

  if (shards_[home]->serving()) {
    if (ds.shard != home) {
      ++stats_.rehomes;
      LogLocked("rehome", home_sh->id(), domain,
                "home shard re-admitted; moving domain back from shard " +
                    std::to_string(ds.shard + 1),
                out_events);
      ds.shard = home;
    }
  } else if (!shards_[ds.shard]->serving()) {
    // Neither home nor the current assignment serves: scan deterministically
    // from the home slot for the first serving sibling.
    size_t pick = shards_.size();
    for (size_t i = 1; i < shards_.size(); ++i) {
      const size_t c = (home + i) % shards_.size();
      if (shards_[c]->serving()) {
        pick = c;
        break;
      }
    }
    if (pick == shards_.size()) {
      t.status = Status::Unavailable(
          "no serving shard for domain " + std::to_string(domain) +
          "; retry_after_seconds=" +
          std::to_string(options_.shed_retry_after_seconds));
      return t;
    }
    ++stats_.reroutes;
    LogLocked("reroute", shards_[pick]->id(), domain,
              "shard " + std::to_string(ds.shard + 1) +
                  " not serving; domain moved",
              out_events);
    ds.shard = pick;
  }

  Shard* chosen = shards_[ds.shard].get();
  // Ladder step 2: a degraded shard sheds its lowest-priority load.
  if (priority < options_.shed_below_priority &&
      chosen->health() == ShardHealth::kDegraded) {
    ++stats_.shed;
    t.status = Status::Unavailable(
        "shard " + std::to_string(chosen->id()) +
        " degraded; shedding priority " + std::to_string(priority) +
        "; retry_after_seconds=" +
        std::to_string(options_.shed_retry_after_seconds));
    return t;
  }

  t.shard_index = ds.shard;
  if (options_.use_domain_sessions) {
    if (ds.session == kNoSession || ds.session_shard != ds.shard) {
      if (ds.session != kNoSession) {
        // Best-effort: the old shard drains the session once its accepted
        // jobs finish; a quarantined shard still honors the close.
        (void)shards_[ds.session_shard]->service()->CloseSession(ds.session);
      }
      ds.session = chosen->service()->OpenSession();
      ds.session_shard = ds.shard;
    }
    t.session = ds.session;
  }
  return t;
}

std::future<Result<QueryResult>> ShardRouter::Submit(std::string sql,
                                                     SubmitOptions options) {
  if (Status f = RouteFaultPoint(); !f.ok()) {
    MutexLock lock(&mu_);
    ++stats_.rejected;
    return ReadyFuture(std::move(f));
  }
  std::vector<JournalServiceEvent> events;
  Target target;
  uint64_t ordinal = 0;
  {
    MutexLock lock(&mu_);
    if (shutdown_.load(std::memory_order_relaxed)) {
      ++stats_.rejected;
      return ReadyFuture(Status::Unavailable("router is shutting down"));
    }
    if (options_.max_in_flight > 0 && in_flight_ >= options_.max_in_flight) {
      ++stats_.rejected;
      return ReadyFuture(Status::Unavailable(
          "router at capacity (" + std::to_string(in_flight_) +
          " in flight); retry_after_seconds=" +
          std::to_string(options_.shed_retry_after_seconds)));
    }
    target = AcquireTargetLocked(options.domain, options.priority, &events);
    if (target.status.ok()) {
      ordinal = next_ordinal_++;
      ++in_flight_;
      ++stats_.submitted;
    }
  }
  AppendEvents(events);
  // Shed / no serving shard: turned away *before* admission, so the
  // no-lost-job invariant does not cover it (and clients see the
  // retry-after hint).
  if (!target.status.ok()) return ReadyFuture(target.status);

  auto prom = std::make_shared<std::promise<Result<QueryResult>>>();
  std::future<Result<QueryResult>> fut = prom->get_future();
  Status dispatched = pool_->Submit(
      [this, sql = std::move(sql), options = std::move(options), target,
       ordinal, prom]() mutable {
        RunJob(std::move(sql), std::move(options), target, ordinal, prom);
      });
  if (!dispatched.ok()) {
    // Shutdown raced the admission: the job *was* admitted, so it still
    // gets its journaled terminal outcome and a resolved future.
    if (target.probe) ReportProbe(shards_[target.shard_index].get(), false);
    {
      MutexLock lock(&mu_);
      --in_flight_;
      ++stats_.completed;
    }
    JournalOutcome(ordinal, Result<QueryResult>(dispatched), 0, 0, 0.0);
    prom->set_value(std::move(dispatched));
  }
  return fut;
}

void ShardRouter::RunJob(
    std::string sql, SubmitOptions options, Target target, uint64_t ordinal,
    std::shared_ptr<std::promise<Result<QueryResult>>> promise) {
  const double start_wall = wall_.Now();
  Result<QueryResult> final_res =
      Status::Unavailable("no dispatch attempt ran");
  uint32_t served_by = 0;
  uint32_t attempts = 0;
  const size_t max_attempts = options_.max_failover_attempts > 0
                                  ? options_.max_failover_attempts
                                  : shards_.size() + 1;
  bool have_target = true;
  for (size_t attempt = 0; attempt < max_attempts; ++attempt) {
    if (!have_target) {
      std::vector<JournalServiceEvent> events;
      {
        MutexLock lock(&mu_);
        // INT_MAX priority: an already-admitted job is never shed while
        // failing over — shedding is a front-door policy.
        target = AcquireTargetLocked(options.domain, INT_MAX, &events);
      }
      AppendEvents(events);
      if (!target.status.ok()) {
        final_res = target.status;
        break;
      }
    }
    have_target = false;
    Shard* shard = shards_[target.shard_index].get();
    if (options.job.cancel.cancelled()) {
      final_res = Status::Cancelled("cancelled before dispatch");
      if (target.probe) ReportProbe(shard, false);
      break;
    }
    ++attempts;
    const uint64_t epoch_before = shard->kill_epoch();
    // Per-attempt token: a chaos kill of this shard cancels the attempt
    // without touching the client's token, so the job can fail over.
    CancellationToken attempt_cancel;
    shard->RegisterAttempt(ordinal, attempt_cancel);
    JobOptions jopts = options.job;
    jopts.cancel = attempt_cancel;
    jopts.session = target.probe ? kNoSession : target.session;
    std::future<Result<QueryResult>> fut =
        shard->service()->SubmitQuery(sql, jopts);
    Result<QueryResult> r = fut.get();  // no router locks held
    shard->UnregisterAttempt(ordinal);
    const bool shard_died = shard->kill_epoch() != epoch_before;
    if (target.probe) {
      ReportProbe(shard, r.ok() && !r->failed && !r->timed_out);
    }
    if (r.ok()) {
      final_res = std::move(r);
      served_by = shard->id();
      break;
    }
    const Status& st = r.status();
    if (st.IsCancelled() && options.job.cancel.cancelled()) {
      final_res = std::move(r);  // genuine client cancel: terminal
      break;
    }
    const bool retryable = (st.IsCancelled() && shard_died) ||
                           st.IsTransient() || st.IsNotFound();
    if (retryable) {
      if (st.IsNotFound()) {
        // The shard no longer knows the domain's session; drop the cached
        // binding so the next acquire opens a fresh one.
        MutexLock lock(&mu_);
        auto it = domains_.find(options.domain);
        if (it != domains_.end()) it->second.session = kNoSession;
      }
      {
        MutexLock lock(&mu_);
        ++stats_.failovers;
      }
      continue;
    }
    final_res = std::move(r);  // timeout / internal / ... : terminal
    break;
  }

  const double wall = wall_.Now() - start_wall;
  Shard* latency_shard =
      served_by > 0 ? shards_[served_by - 1].get() : nullptr;
  if (latency_shard != nullptr) latency_shard->RecordLatency(wall);
  std::vector<JournalServiceEvent> events;
  {
    MutexLock lock(&mu_);
    --in_flight_;
    ++stats_.completed;
    if (latency_shard != nullptr) {
      const uint64_t n = ++shard_completions_[served_by - 1];
      if (options_.eval_every == 0 || n % options_.eval_every == 0) {
        EvaluateShardLocked(served_by - 1, &events);
      }
    }
  }
  AppendEvents(events);
  JournalOutcome(ordinal, final_res, attempts, served_by, wall);
  promise->set_value(std::move(final_res));
}

void ShardRouter::ReportProbe(Shard* shard, bool success) {
  std::vector<JournalServiceEvent> events;
  {
    MutexLock lock(&mu_);
    const Shard::ProbeVerdict verdict =
        shard->FinishProbe(success, clock_->Now());
    if (verdict == Shard::ProbeVerdict::kReadmitted) {
      ++stats_.readmissions;
      LogLocked("readmit", shard->id(), 0, "probe quota met", &events);
    } else if (verdict == Shard::ProbeVerdict::kRequarantined) {
      ++stats_.requarantines;
      LogLocked("requarantine", shard->id(), 0, "probe failed", &events);
    }
  }
  AppendEvents(events);
}

void ShardRouter::KillShard(size_t index) {
  if (index >= shards_.size()) return;
  std::vector<JournalServiceEvent> events;
  {
    MutexLock lock(&mu_);
    KillShardLocked(index, "chaos kill", &events);
  }
  AppendEvents(events);
}

Status ShardRouter::StallShard(size_t index, CancellationToken release) {
  if (index >= shards_.size()) {
    return Status::InvalidArgument("no such shard");
  }
  WorkloadService* svc = shards_[index]->service();
  const size_t workers = svc->num_workers();
  for (size_t i = 0; i < workers; ++i) {
    TB_RETURN_IF_ERROR(svc->SubmitRaw([release] {
      // Parked until the chaos harness releases the stall; cancel-aware so
      // Shutdown can always drain the shard.
      (void)SleepWithCancellation(3600.0, release, std::nullopt);
    }));
  }
  std::vector<JournalServiceEvent> events;
  {
    MutexLock lock(&mu_);
    LogLocked("stall", shards_[index]->id(), 0,
              "wedged " + std::to_string(workers) + " workers", &events);
  }
  AppendEvents(events);
  return Status::OK();
}

void ShardRouter::Tick() {
  std::vector<JournalServiceEvent> events;
  {
    MutexLock lock(&mu_);
    SweepQuarantinesLocked(clock_->Now(), &events);
    for (size_t i = 0; i < shards_.size(); ++i) {
      EvaluateShardLocked(i, &events);
    }
  }
  AppendEvents(events);
}

RouterStats ShardRouter::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

std::vector<JournalServiceEvent> ShardRouter::decisions() const {
  MutexLock lock(&mu_);
  return decisions_;
}

Status ShardRouter::journal_status() const {
  MutexLock lock(&mu_);
  if (!journal_status_.ok()) return journal_status_;
  return Status::OK();
}

void ShardRouter::AppendEvents(
    const std::vector<JournalServiceEvent>& events) {
  if (journal_ == nullptr || events.empty()) return;
  for (const JournalServiceEvent& ev : events) {
    Status s = journal_->Append(ev);
    if (!s.ok()) {
      MutexLock lock(&mu_);
      if (journal_status_.ok()) journal_status_ = s;
      return;
    }
  }
}

void ShardRouter::JournalOutcome(uint64_t ordinal,
                                 const Result<QueryResult>& final_res,
                                 uint32_t attempts, uint32_t served_by,
                                 double wall) {
  if (journal_ == nullptr) return;
  JournalQueryRecord rec;
  rec.query_index = static_cast<uint32_t>(ordinal);
  rec.attempts = std::max<uint32_t>(1, attempts);
  rec.shard_id = served_by;
  JournalAttempt att;
  if (final_res.ok()) {
    rec.seconds = final_res->sim_seconds;
    rec.timed_out = final_res->timed_out;
    rec.failed = final_res->failed;
    att.code = Status::Code::kOk;
    att.timed_out = final_res->timed_out;
  } else {
    rec.seconds = wall;
    rec.failed = true;
    rec.timed_out = final_res.status().IsTimeout();
    att.code = final_res.status().code();
    att.message = final_res.status().message();
  }
  rec.attempt_log.push_back(std::move(att));
  Status s = journal_->Append(rec);
  if (!s.ok()) {
    MutexLock lock(&mu_);
    if (journal_status_.ok()) journal_status_ = s;
  }
}

}  // namespace tabbench
