#ifndef TABBENCH_SERVICE_SHARD_H_
#define TABBENCH_SERVICE_SHARD_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "service/workload_service.h"
#include "util/cancellation.h"
#include "util/mutex.h"
#include "util/streaming_stats.h"
#include "util/thread_annotations.h"

namespace tabbench {

/// Clock the shard health machinery reads. The default implementation is the
/// steady wall clock; tests substitute a manually advanced clock so
/// quarantine cooldowns and probe windows replay deterministically — the
/// chaos acceptance test requires two runs with the same fault schedule to
/// produce byte-identical routing decisions, which a real clock cannot.
class ServiceClock {
 public:
  virtual ~ServiceClock() = default;
  /// Monotone seconds since an arbitrary epoch.
  virtual double Now() = 0;
};

/// Wall time (steady_clock), seconds since construction.
class SteadyServiceClock : public ServiceClock {
 public:
  double Now() override {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
  }

 private:
  const std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
};

/// Test clock: time moves only when Advance() is called.
class ManualServiceClock : public ServiceClock {
 public:
  double Now() override { return now_.load(std::memory_order_relaxed); }
  void Advance(double seconds) {
    now_.store(now_.load(std::memory_order_relaxed) + seconds,
               std::memory_order_relaxed);
  }

 private:
  std::atomic<double> now_{0.0};
};

/// Shard health state machine, driven by streaming signals:
///
///        latency/queue/breaker pressure          pressure clears
///   kHealthy ----------------------------> kDegraded ----> kHealthy
///        |                                      |
///        | severe pressure / Kill()             | severe pressure / Kill()
///        v                                      v
///   kQuarantined --(cooldown elapses)--> kRecovering
///        ^                                      |
///        |   any probe fails                    | probe quota succeeds
///        +--------------------------------------+--> kHealthy (readmit)
///
/// Degraded shards keep serving but with session parallelism capped to 1
/// (ladder step 1) and low-priority load shed by the router (step 2).
/// Quarantined shards serve nothing; their domains re-route to siblings
/// (step 3). Recovering shards serve only a bounded probe quota.
enum class ShardHealth { kHealthy, kDegraded, kQuarantined, kRecovering };

const char* ShardHealthName(ShardHealth health);

/// Thresholds the health machine evaluates. Latency thresholds compare
/// against the shard's streaming digest (wall seconds per routed job);
/// queue depth is the shard service's in-flight count; breaker/watchdog
/// counts are deltas since the previous evaluation.
struct ShardHealthThresholds {
  /// healthy -> degraded when p95 exceeds this (seconds); <= 0 disables.
  double degrade_p95_seconds = 0.5;
  /// healthy -> degraded when in-flight depth exceeds this; 0 disables.
  uint64_t degrade_queue_depth = 32;
  /// -> quarantined when p99 exceeds this (seconds); <= 0 disables.
  double quarantine_p99_seconds = 2.0;
  /// -> quarantined when in-flight depth exceeds this; 0 disables.
  uint64_t quarantine_queue_depth = 128;
  /// -> quarantined when this many breaker opens landed since the last
  /// evaluation; 0 disables.
  uint64_t quarantine_breaker_opens = 1;
  /// -> quarantined when this many watchdog force-cancels landed since the
  /// last evaluation; 0 disables.
  uint64_t quarantine_watchdog_cancels = 3;
  /// Latency digests need at least this many samples before latency
  /// thresholds fire (queue/breaker/watchdog signals are always live).
  uint64_t min_latency_samples = 8;
  /// The digest is reset after it accumulates this many samples, so the
  /// latency signal tracks a recent window instead of the full history
  /// (a shard that was slow an hour ago can still test as healthy).
  uint64_t latency_window = 256;
  /// Quarantined shards wait this long (ServiceClock seconds) before the
  /// probe window opens and the shard moves to kRecovering.
  double quarantine_cooldown_seconds = 0.25;
  /// Consecutive probe successes required to re-admit a recovering shard.
  uint64_t readmit_probe_quota = 3;
};

struct ShardOptions {
  /// Options for the shard's WorkloadService slice (workers, breaker,
  /// watchdog, journal path, shard id).
  ServiceOptions service;
  ShardHealthThresholds health;
};

/// One worker shard of the sharded serving layer: a WorkloadService slice
/// plus the health state machine, streaming latency digest, and the
/// in-flight attempt registry that makes a chaos Kill() able to cancel
/// everything the shard is currently serving (so the router can fail those
/// jobs over to siblings instead of losing them).
///
/// Transitions return event descriptions instead of logging themselves: the
/// ShardRouter owns the (journaled) decision log, and routing determinism is
/// audited on that single stream.
class Shard {
 public:
  /// `id` is the 1-based public shard id; it is stamped into every journal
  /// record the shard's service writes (0 is reserved for unsharded
  /// services, so old journals read back as shard 0).
  Shard(const Database* db, uint32_t id, const ShardOptions& options);
  ~Shard();

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  uint32_t id() const { return id_; }
  /// The shard's service slice; valid for the shard's lifetime.
  WorkloadService* service() { return service_.get(); }

  ShardHealth health() const TB_EXCLUDES(mu_);
  /// Serving = healthy or degraded (quarantined/recovering shards accept
  /// only router-controlled probes).
  bool serving() const TB_EXCLUDES(mu_);
  LatencyDigest latency() const;
  /// Generation counter bumped by every Kill(); a dispatcher compares the
  /// epoch around an attempt to tell "my job was cancelled because the
  /// shard died" (fail over) from a user cancel (terminal).
  uint64_t kill_epoch() const TB_EXCLUDES(mu_);

  /// Records one routed job's wall latency into the streaming digest.
  void RecordLatency(double seconds);

  /// A state transition plus the reason, for the router's decision log.
  struct Transition {
    bool changed = false;
    ShardHealth from = ShardHealth::kHealthy;
    ShardHealth to = ShardHealth::kHealthy;
    std::string reason;
  };

  /// Re-evaluates healthy <-> degraded and the escalation to quarantined
  /// from the live signals (latency digest, queue depth, breaker-open and
  /// watchdog-cancel deltas). Never touches quarantined/recovering shards —
  /// those only move through the probe path or Kill(). Applies ladder step
  /// 1 side effects (session parallelism cap) on the transitions.
  Transition EvaluateHealth(double now) TB_EXCLUDES(mu_);

  /// Opens the probe window once the quarantine cooldown has elapsed
  /// (quarantined -> recovering). Returns whether the transition happened.
  bool MaybeOpenProbeWindow(double now) TB_EXCLUDES(mu_);

  /// Claims one probe slot on a recovering shard; at most
  /// readmit_probe_quota probes are in flight or already successful.
  bool AdmitProbe() TB_EXCLUDES(mu_);

  enum class ProbeVerdict { kPending, kReadmitted, kRequarantined };
  /// Reports one probe outcome. Quota-th consecutive success re-admits the
  /// shard (-> healthy); any failure re-quarantines it and restarts the
  /// cooldown from `now`.
  ProbeVerdict FinishProbe(bool success, double now) TB_EXCLUDES(mu_);

  /// Chaos kill: quarantines the shard immediately and cancels every
  /// registered in-flight attempt, so their futures resolve and the router
  /// fails the jobs over. The service itself stays up (its workers unwind
  /// at cancellation safe points); re-admission goes through the normal
  /// cooldown + probe path.
  void Kill(double now) TB_EXCLUDES(mu_);

  /// In-flight attempt registry for Kill(). The router registers each
  /// dispatch attempt's cancel token before submitting to the shard's
  /// service and unregisters after the future resolves.
  void RegisterAttempt(uint64_t ordinal, CancellationToken cancel)
      TB_EXCLUDES(mu_);
  void UnregisterAttempt(uint64_t ordinal) TB_EXCLUDES(mu_);

  /// Drains the service slice. Idempotent; also run by the destructor.
  void Shutdown();

 private:
  Transition TransitionLocked(ShardHealth to, std::string reason)
      TB_REQUIRES(mu_);
  /// Ladder step 1: cap session parallelism at 1 while degraded (or worse),
  /// lift the cap when healthy again.
  void ApplyCapLocked(ShardHealth to) TB_REQUIRES(mu_);

  const uint32_t id_;
  const ShardOptions options_;
  /// Created once in the constructor; the pointer itself is immutable.
  const std::unique_ptr<WorkloadService> service_;
  StreamingStats latency_;

  /// Health-machine lock. Held while reading the service's counters and
  /// applying the parallelism cap, hence ordered before the service lock.
  /// (The router's lock, when present, is ordered before this one; see
  /// ShardRouter::mu_.)
  mutable Mutex mu_ TB_ACQUIRED_BEFORE("WorkloadService::mu_");
  ShardHealth health_ TB_GUARDED_BY(mu_) = ShardHealth::kHealthy;
  uint64_t kill_epoch_ TB_GUARDED_BY(mu_) = 0;
  double quarantined_at_ TB_GUARDED_BY(mu_) = 0.0;
  uint64_t probes_in_flight_ TB_GUARDED_BY(mu_) = 0;
  uint64_t probe_successes_ TB_GUARDED_BY(mu_) = 0;
  /// Signal snapshots from the previous EvaluateHealth, for deltas.
  uint64_t last_breaker_opens_ TB_GUARDED_BY(mu_) = 0;
  uint64_t last_watchdog_cancels_ TB_GUARDED_BY(mu_) = 0;
  std::map<uint64_t, CancellationToken> inflight_ TB_GUARDED_BY(mu_);
};

}  // namespace tabbench

#endif  // TABBENCH_SERVICE_SHARD_H_
