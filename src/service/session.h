#ifndef TABBENCH_SERVICE_SESSION_H_
#define TABBENCH_SERVICE_SESSION_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "engine/database.h"
#include "util/cancellation.h"
#include "util/thread_pool.h"

namespace tabbench {

/// Per-session execution knobs.
struct SessionOptions {
  /// Private buffer-pool view capacity; 0 inherits the database's.
  size_t pool_pages = 0;
  /// Default per-query deadline in *simulated* seconds, folded into the
  /// paper's 30-minute timeout as min(timeout, deadline); <= 0 disables.
  double deadline_seconds = -1.0;
  /// Intra-query parallelism budget: > 0 executes this session's queries on
  /// the morsel-driven vectorized engine with up to this many helper jobs
  /// per morsel phase, drawn from `intra_query_pool`. Helpers go through
  /// the pool's admission control (a loaded service degrades the query
  /// toward serial, never deadlocks), and simulated costs stay bit-identical
  /// to the Volcano path. 0 (default) keeps the Volcano executor.
  size_t intra_query_parallelism = 0;
  /// Pool supplying those helpers; WorkloadService::OpenSession fills in
  /// its own worker pool when the budget is set and this is null.
  ThreadPool* intra_query_pool = nullptr;
};

/// One client's execution state against a shared database: a private
/// buffer-pool view and a private simulated clock.
///
/// The paper's timing model is deterministic *given the buffer state*, and
/// the buffer state is what concurrent queries would otherwise scramble. A
/// session therefore owns its pool view: the queries of one session see
/// exactly the warm-cache evolution they would see running alone, no matter
/// how many other sessions run in parallel — per-session timings stay
/// deterministic and reproducible.
///
/// A session is single-threaded (its pool view is not synchronized); the
/// WorkloadService serializes each session's jobs in submission order and
/// only runs *different* sessions concurrently.
class Session {
 public:
  Session(const Database* db, SessionOptions options = {});

  /// Executes one query on this session's pool view, advancing the
  /// session's simulated clock. `deadline_seconds` (> 0) tightens the
  /// session default for this call; `cancel` is polled at every executor
  /// safe point. Timeouts (including deadline trips) are reported as
  /// QueryResult::timed_out, not errors, mirroring the sequential runner.
  Result<QueryResult> Execute(const std::string& sql,
                              double deadline_seconds = -1.0,
                              CancellationToken cancel = {});

  /// Drops the session's pool view back to cold (counters reset too).
  void ClearCache() { pool_.Clear(); }

  /// Sum of simulated seconds across every query this session ran
  /// (timed-out queries contribute the clamped timeout, the paper's
  /// lower-bound convention). The counters are atomics only so that
  /// monitoring threads may read them while the session's single executing
  /// thread advances them.
  double clock_seconds() const {
    return clock_seconds_.load(std::memory_order_relaxed);
  }
  uint64_t queries_run() const {
    return queries_run_.load(std::memory_order_relaxed);
  }
  uint64_t timeouts() const {
    return timeouts_.load(std::memory_order_relaxed);
  }
  BufferPool* pool() { return &pool_; }
  const Database* db() const { return db_; }
  const SessionOptions& options() const { return options_; }

  /// Caps the effective intra-query parallelism below the session option
  /// (degradation-ladder step 1: a pressured shard drops its sessions to
  /// serial execution without reopening them). 0 removes the cap. An atomic
  /// so monitors may move the cap while the session's single executing
  /// thread reads it; takes effect at the next Execute.
  void set_parallelism_cap(size_t cap) {
    parallelism_cap_.store(cap, std::memory_order_relaxed);
  }
  size_t parallelism_cap() const {
    return parallelism_cap_.load(std::memory_order_relaxed);
  }

 private:
  // Deliberately no Mutex / TB_GUARDED_BY here: the service's strand
  // invariant means at most one thread executes inside a session at a
  // time (WorkloadService::mu_ guards the SessionState that enforces it),
  // and the atomics below are the only fields monitoring threads read
  // concurrently. pool_ and options_ are touched solely by the executing
  // thread.
  const Database* db_;
  SessionOptions options_;
  BufferPool pool_;
  std::atomic<double> clock_seconds_{0.0};
  std::atomic<uint64_t> queries_run_{0};
  std::atomic<uint64_t> timeouts_{0};
  std::atomic<size_t> parallelism_cap_{0};  // 0 = uncapped
};

}  // namespace tabbench

#endif  // TABBENCH_SERVICE_SESSION_H_
