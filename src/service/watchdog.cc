#include "service/watchdog.h"

#include "util/retry.h"

namespace tabbench {

Watchdog::Watchdog(WatchdogOptions options) : options_(options) {
  thread_ = std::thread([this] { Loop(); });
}

Watchdog::~Watchdog() { Stop(); }

uint64_t Watchdog::Watch(
    std::optional<std::chrono::steady_clock::time_point> deadline,
    CancellationToken victim, std::optional<CancellationToken> upstream) {
  MutexLock lock(&mu_);
  uint64_t id = next_id_++;
  Entry e;
  e.deadline = deadline;
  e.victim = std::move(victim);
  e.upstream = std::move(upstream);
  watches_.emplace(id, std::move(e));
  wake_.RequestCancel();  // the new deadline may be nearer than the sleep
  cv_.NotifyAll();
  return id;
}

bool Watchdog::Release(uint64_t id) {
  MutexLock lock(&mu_);
  auto it = watches_.find(id);
  if (it == watches_.end()) return false;
  bool fired = it->second.fired;
  watches_.erase(it);
  return fired;
}

uint64_t Watchdog::fires() const {
  MutexLock lock(&mu_);
  return fires_;
}

void Watchdog::Stop() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
    wake_.RequestCancel();
    cv_.NotifyAll();
  }
  if (thread_.joinable()) thread_.join();
}

void Watchdog::Loop() {
  for (;;) {
    CancellationToken wake;
    std::optional<std::chrono::steady_clock::time_point> earliest;
    {
      MutexLock lock(&mu_);
      while (!stop_ && watches_.empty()) cv_.Wait(mu_);
      if (stop_) return;
      wake_ = wake;
      for (const auto& [id, w] : watches_) {
        if (w.fired || !w.deadline.has_value()) continue;
        if (!earliest.has_value() || *w.deadline < *earliest) {
          earliest = w.deadline;
        }
      }
    }
    // One tick: the sanctioned sleeper (tabbench-raw-sleep allows no other)
    // bounded by the nearest deadline and interruptible by Watch/Stop.
    (void)SleepWithCancellation(options_.poll_interval_seconds, wake,
                                earliest);
    {
      MutexLock lock(&mu_);
      if (stop_) return;
      auto now = std::chrono::steady_clock::now();
      for (auto& [id, w] : watches_) {
        if (w.upstream.has_value() && w.upstream->cancelled()) {
          w.victim.RequestCancel();  // forwarded user cancel; not a fire
        }
        if (!w.fired && w.deadline.has_value() && now >= *w.deadline) {
          w.fired = true;
          w.victim.RequestCancel();
          ++fires_;
        }
      }
    }
  }
}

}  // namespace tabbench
