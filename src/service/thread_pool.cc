#include "service/thread_pool.h"

#include <algorithm>
#include <utility>

namespace tabbench {

ThreadPool::ThreadPool(Options options)
    : max_queue_(options.max_queue) {
  size_t n = options.workers;
  if (n == 0) {
    n = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

Status ThreadPool::Submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      ++rejected_;
      return Status::Unavailable("thread pool is shut down");
    }
    if (max_queue_ > 0 && queue_.size() >= max_queue_) {
      ++rejected_;
      return Status::Unavailable("job queue is full");
    }
    queue_.push_back(std::move(job));
    ++pending_;
  }
  work_cv_.notify_one();
  return Status::OK();
}

Status ThreadPool::SubmitOrRun(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return Status::Unavailable("thread pool is shut down");
    if (max_queue_ == 0 || queue_.size() < max_queue_) {
      queue_.push_back(std::move(job));
      ++pending_;
      work_cv_.notify_one();
      return Status::OK();
    }
  }
  // Queue full: caller-runs backpressure.
  job();
  return Status::OK();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      // Already requested; fall through to join below (idempotent: joined
      // threads are cleared).
    }
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
}

size_t ThreadPool::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

uint64_t ThreadPool::rejected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_;
}

uint64_t ThreadPool::completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++completed_;
      if (--pending_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace tabbench
