#include "service/circuit_breaker.h"

#include <algorithm>

namespace tabbench {

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions options)
    : options_(options) {}

bool CircuitBreaker::Allow(uint64_t domain) {
  if (!enabled()) return true;
  MutexLock lock(&mu_);
  Domain& d = domains_[domain];
  switch (d.state) {
    case State::kClosed:
      return true;
    case State::kOpen: {
      auto cooldown = std::chrono::duration_cast<
          std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(std::max(options_.open_seconds, 0.0)));
      if (std::chrono::steady_clock::now() - d.opened_at < cooldown) {
        return false;
      }
      d.state = State::kHalfOpen;
      d.probe_successes = 0;
      d.probes_in_flight = 1;  // this admission is the first probe
      return true;
    }
    case State::kHalfOpen:
      if (d.probe_successes + d.probes_in_flight >=
          options_.half_open_probes) {
        return false;  // probe quota already committed
      }
      ++d.probes_in_flight;
      return true;
  }
  return true;  // unreachable; switch above is exhaustive
}

void CircuitBreaker::Abandon(uint64_t domain) {
  if (!enabled()) return;
  MutexLock lock(&mu_);
  Domain& d = domains_[domain];
  if (d.state == State::kHalfOpen && d.probes_in_flight > 0) {
    --d.probes_in_flight;
  }
}

bool CircuitBreaker::RecordFailure(uint64_t domain) {
  if (!enabled()) return false;
  MutexLock lock(&mu_);
  Domain& d = domains_[domain];
  switch (d.state) {
    case State::kClosed:
      if (++d.consecutive_failures >= options_.failure_threshold) {
        d.state = State::kOpen;
        d.opened_at = std::chrono::steady_clock::now();
        return true;
      }
      return false;
    case State::kHalfOpen:
      // A failed probe re-opens immediately; the cooldown restarts.
      d.state = State::kOpen;
      d.opened_at = std::chrono::steady_clock::now();
      d.consecutive_failures = options_.failure_threshold;
      d.probes_in_flight = 0;
      d.probe_successes = 0;
      return true;
    case State::kOpen:
      // A straggler admitted before the trip; the domain is already open.
      return false;
  }
  return false;  // unreachable
}

void CircuitBreaker::RecordSuccess(uint64_t domain) {
  if (!enabled()) return;
  MutexLock lock(&mu_);
  Domain& d = domains_[domain];
  switch (d.state) {
    case State::kClosed:
      d.consecutive_failures = 0;
      return;
    case State::kHalfOpen:
      if (d.probes_in_flight > 0) --d.probes_in_flight;
      if (++d.probe_successes >= options_.half_open_probes) {
        d = Domain{};  // back to a pristine closed domain
      }
      return;
    case State::kOpen:
      return;  // straggler; ignore
  }
}

CircuitBreaker::State CircuitBreaker::state(uint64_t domain) const {
  MutexLock lock(&mu_);
  auto it = domains_.find(domain);
  return it == domains_.end() ? State::kClosed : it->second.state;
}

}  // namespace tabbench
