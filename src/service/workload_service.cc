#include "service/workload_service.h"

#include <utility>

namespace tabbench {

namespace {

/// A future already holding `status` (admission rejections, dead sessions).
template <typename T>
std::future<Result<T>> ReadyFuture(Status status) {
  std::promise<Result<T>> p;
  p.set_value(Result<T>(std::move(status)));
  return p.get_future();
}

}  // namespace

WorkloadService::WorkloadService(const Database* db, ServiceOptions options)
    : db_(db),
      options_(options),
      // Admission control lives at the service level (max_in_flight), so
      // the pool queue itself is unbounded: every admitted job is owed a
      // fulfilled future and must reach a worker.
      pool_(ThreadPool::Options{options.workers, 0}) {}

WorkloadService::~WorkloadService() { Shutdown(); }

bool WorkloadService::AdmitLocked() {
  if (shutdown_) {
    ++stats_.rejected;
    return false;
  }
  if (options_.max_in_flight > 0 && in_flight_ >= options_.max_in_flight) {
    ++stats_.rejected;
    return false;
  }
  ++in_flight_;
  ++stats_.submitted;
  return true;
}

Status WorkloadService::Dispatch(SessionId id, std::function<void()> job) {
  MutexLock lock(&mu_);
  if (id == kNoSession) {
    if (!AdmitLocked()) return Status::Unavailable("service at capacity");
    // Holding mu_ across Submit is what makes the shutdown_ check
    // authoritative: Shutdown() flips the flag under mu_ before shutting
    // the pool, so an admitted job always reaches a live pool.
    return pool_.Submit(std::move(job));
  }
  auto it = sessions_.find(id);
  if (it == sessions_.end() || it->second->closing) {
    return Status::NotFound("no such session");
  }
  if (!AdmitLocked()) return Status::Unavailable("service at capacity");
  SessionState* st = it->second.get();
  st->jobs.push_back(std::move(job));
  if (!st->running) {
    st->running = true;
    return pool_.Submit([this, id] { DrainSession(id); });
  }
  return Status::OK();
}

void WorkloadService::DrainSession(SessionId id) {
  for (;;) {
    std::function<void()> job;
    {
      MutexLock lock(&mu_);
      auto it = sessions_.find(id);
      if (it == sessions_.end()) return;
      SessionState* st = it->second.get();
      if (st->jobs.empty()) {
        st->running = false;
        if (st->closing) sessions_.erase(it);
        return;
      }
      job = std::move(st->jobs.front());
      st->jobs.pop_front();
    }
    job();
  }
}

void WorkloadService::FinishJob(bool was_cancelled, size_t timeouts) {
  MutexLock lock(&mu_);
  --in_flight_;
  ++stats_.completed;
  if (was_cancelled) ++stats_.cancelled;
  stats_.query_timeouts += timeouts;
}

std::future<Result<QueryResult>> WorkloadService::SubmitQuery(
    std::string sql, JobOptions options) {
  auto prom = std::make_shared<std::promise<Result<QueryResult>>>();
  std::future<Result<QueryResult>> fut = prom->get_future();

  Session* strand_session = nullptr;
  if (options.session != kNoSession) {
    MutexLock lock(&mu_);
    auto it = sessions_.find(options.session);
    if (it == sessions_.end() || it->second->closing) {
      return ReadyFuture<QueryResult>(Status::NotFound("no such session"));
    }
    strand_session = &it->second->session;
  }

  auto job = [this, sql = std::move(sql), options, strand_session, prom] {
    Result<QueryResult> r = [&]() -> Result<QueryResult> {
      if (options.cancel.cancelled()) {
        return Status::Cancelled("cancelled before execution");
      }
      if (strand_session != nullptr) {
        return strand_session->Execute(sql, options.deadline_seconds,
                                       options.cancel);
      }
      Session ephemeral(db_, options_.session);
      return ephemeral.Execute(sql, options.deadline_seconds, options.cancel);
    }();
    FinishJob(!r.ok() && r.status().IsCancelled(),
              r.ok() && r->timed_out ? 1 : 0);
    prom->set_value(std::move(r));
  };

  Status dispatched = Dispatch(options.session, std::move(job));
  if (!dispatched.ok()) return ReadyFuture<QueryResult>(dispatched);
  return fut;
}

std::future<Result<std::vector<QueryResult>>> WorkloadService::SubmitWorkload(
    std::vector<std::string> sql, JobOptions options) {
  auto prom =
      std::make_shared<std::promise<Result<std::vector<QueryResult>>>>();
  auto fut = prom->get_future();

  Session* strand_session = nullptr;
  if (options.session != kNoSession) {
    MutexLock lock(&mu_);
    auto it = sessions_.find(options.session);
    if (it == sessions_.end() || it->second->closing) {
      return ReadyFuture<std::vector<QueryResult>>(
          Status::NotFound("no such session"));
    }
    strand_session = &it->second->session;
  }

  auto job = [this, sql = std::move(sql), options, strand_session, prom] {
    size_t timeouts = 0;
    Result<std::vector<QueryResult>> r =
        [&]() -> Result<std::vector<QueryResult>> {
      Session ephemeral(db_, options_.session);
      Session* session =
          strand_session != nullptr ? strand_session : &ephemeral;
      std::vector<QueryResult> out;
      out.reserve(sql.size());
      for (const auto& q : sql) {
        if (options.cancel.cancelled()) {
          return Status::Cancelled("workload cancelled");
        }
        auto qr = session->Execute(q, options.deadline_seconds,
                                   options.cancel);
        if (!qr.ok()) return qr.status();
        if (qr->timed_out) ++timeouts;
        out.push_back(qr.TakeValue());
      }
      return out;
    }();
    FinishJob(!r.ok() && r.status().IsCancelled(), timeouts);
    prom->set_value(std::move(r));
  };

  Status dispatched = Dispatch(options.session, std::move(job));
  if (!dispatched.ok()) {
    return ReadyFuture<std::vector<QueryResult>>(dispatched);
  }
  return fut;
}

SessionId WorkloadService::OpenSession(SessionOptions options) {
  MutexLock lock(&mu_);
  if (shutdown_) return kNoSession;
  SessionId id = next_session_++;
  sessions_.emplace(id, std::make_unique<SessionState>(db_, options));
  return id;
}

Status WorkloadService::CloseSession(SessionId id) {
  MutexLock lock(&mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return Status::NotFound("no such session");
  SessionState* st = it->second.get();
  if (st->running || !st->jobs.empty()) {
    st->closing = true;  // destroyed once the strand drains
  } else {
    sessions_.erase(it);
  }
  return Status::OK();
}

Result<double> WorkloadService::SessionClock(SessionId id) const {
  MutexLock lock(&mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return Status::NotFound("no such session");
  return it->second->session.clock_seconds();
}

ServiceStats WorkloadService::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

void WorkloadService::Shutdown() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  pool_.Shutdown();  // drains every accepted job; their futures resolve
}

}  // namespace tabbench
