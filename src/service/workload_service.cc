#include "service/workload_service.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <utility>

#include "storage/buffer_pool.h"
#include "util/fault_injection.h"

namespace tabbench {

namespace {

/// A future already holding `status` (admission rejections, dead sessions).
template <typename T>
std::future<Result<T>> ReadyFuture(Status status) {
  std::promise<Result<T>> p;
  p.set_value(Result<T>(std::move(status)));
  return p.get_future();
}

/// Drops a fault latched after an attempt's last safe point so it cannot
/// leak into the next attempt (the runner does the same at its attempt
/// boundaries).
void DropStaleLatchedFault() {
  if (FaultInjectionArmed()) (void)FaultRegistry::TakePending();
}

/// Seed for the FaultScope of query `idx` of job `ordinal`. The shift
/// keeps distinct jobs' query seeds from colliding for workloads of up to
/// ~1M queries; schedules stay deterministic per (job, query) pair.
uint64_t JobScopeSeed(uint64_t ordinal, size_t idx) {
  return (ordinal << 20) ^ static_cast<uint64_t>(idx);
}

std::optional<std::chrono::steady_clock::time_point> WallDeadline(
    const JobOptions& options) {
  if (options.wall_timeout_seconds <= 0.0) return std::nullopt;
  return std::chrono::steady_clock::now() +
         std::chrono::duration_cast<std::chrono::steady_clock::duration>(
             std::chrono::duration<double>(options.wall_timeout_seconds));
}

/// The later point at which the watchdog force-cancels the job: the wall
/// budget scaled by the grace factor, leaving the cooperative checks first
/// claim on the budget itself.
std::optional<std::chrono::steady_clock::time_point> GraceDeadline(
    const JobOptions& options, const WatchdogOptions& wd) {
  if (options.wall_timeout_seconds <= 0.0) return std::nullopt;
  return std::chrono::steady_clock::now() +
         std::chrono::duration_cast<std::chrono::steady_clock::duration>(
             std::chrono::duration<double>(options.wall_timeout_seconds *
                                           std::max(wd.grace_factor, 0.0)));
}

/// One query's retry loop: transient errors sleep the policy's backoff in
/// wall-clock time and try again; the sleep returns kCancelled/kTimeout
/// promptly when the token fires or the wall budget expires mid-backoff.
/// The caller opens the FaultScope spanning all attempts.
Result<QueryResult> ExecuteWithRetry(
    Session* session, const std::string& sql, const JobOptions& options,
    const std::optional<std::chrono::steady_clock::time_point>& wall_deadline,
    uint64_t* retries) {
  for (int attempt = 1;; ++attempt) {
    auto res = session->Execute(sql, options.deadline_seconds, options.cancel);
    DropStaleLatchedFault();
    if (res.ok()) return res;
    if (!options.retry.ShouldRetry(res.status(), attempt)) return res;
    Status slept = SleepWithCancellation(options.retry.BackoffSeconds(attempt),
                                         options.cancel, wall_deadline);
    if (!slept.ok()) return slept;
    ++*retries;
  }
}

/// The cost a censored (failed) query is charged: the paper's timeout,
/// tightened by whichever simulated-seconds deadline governed the query.
double CensoredSeconds(const Database* db, const Session* session,
                       double deadline_override) {
  double t = db->options().cost.timeout_seconds;
  double deadline = deadline_override > 0.0
                        ? deadline_override
                        : session->options().deadline_seconds;
  if (deadline > 0.0) t = std::min(t, deadline);
  return t;
}

}  // namespace

WorkloadService::WorkloadService(const Database* db, ServiceOptions options)
    : db_(db),
      options_(options),
      breaker_(options.breaker),
      watchdog_(options.watchdog),
      // Admission control lives at the service level (max_in_flight), so
      // the pool queue itself is unbounded: every admitted job is owed a
      // fulfilled future and must reach a worker.
      pool_(ThreadPool::Options{options.workers, 0}) {
  if (!options_.journal_path.empty()) {
    JournalHeader header;
    header.metadata["writer"] = "workload-service";
    if (options_.shard_id != 0) {
      header.metadata["shard"] = std::to_string(options_.shard_id);
    }
    auto writer = RunJournalWriter::Create(options_.journal_path, header);
    if (writer.ok()) {
      journal_ = writer.TakeValue();
    } else {
      MutexLock lock(&mu_);
      journal_status_ = writer.status();
    }
  }
}

WorkloadService::~WorkloadService() { Shutdown(); }

bool WorkloadService::AdmitLocked() {
  if (shutdown_) {
    ++stats_.rejected;
    return false;
  }
  if (options_.max_in_flight > 0 && in_flight_ >= options_.max_in_flight) {
    ++stats_.rejected;
    return false;
  }
  ++in_flight_;
  ++stats_.submitted;
  return true;
}

Status WorkloadService::Dispatch(SessionId id, std::function<void()> job) {
  // The breaker guards the admission path ahead of capacity accounting: an
  // open domain's submissions bounce without consuming in-flight budget or
  // worker time. (Lock order is always mu_ -> breaker's internal mutex,
  // never the reverse — the breaker calls nothing back.)
  if (!breaker_.Allow(id)) {
    MutexLock lock(&mu_);
    ++stats_.rejected;
    ++stats_.breaker_rejections;
    return Status::Unavailable("circuit breaker open for this fault domain");
  }
  MutexLock lock(&mu_);
  if (id == kNoSession) {
    if (!AdmitLocked()) {
      breaker_.Abandon(id);
      return Status::Unavailable("service at capacity");
    }
    // Holding mu_ across Submit is what makes the shutdown_ check
    // authoritative: Shutdown() flips the flag under mu_ before shutting
    // the pool, so an admitted job always reaches a live pool.
    return pool_.Submit(std::move(job));
  }
  auto it = sessions_.find(id);
  if (it == sessions_.end() || it->second->closing) {
    breaker_.Abandon(id);
    return Status::NotFound("no such session");
  }
  if (!AdmitLocked()) {
    breaker_.Abandon(id);
    return Status::Unavailable("service at capacity");
  }
  SessionState* st = it->second.get();
  st->jobs.push_back(std::move(job));
  if (!st->running) {
    st->running = true;
    return pool_.Submit([this, id] { DrainSession(id); });
  }
  return Status::OK();
}

void WorkloadService::DrainSession(SessionId id) {
  // The drain terminates without a cancellation poll by construction: the
  // session queue only shrinks once Shutdown() stops admission, and each
  // job body carries its own watchdog/cancellation. Polling here would
  // drop accepted jobs whose futures must still resolve.
  // NOLINTNEXTLINE(tabbench-cancellation-poll)
  for (;;) {
    std::function<void()> job;
    {
      MutexLock lock(&mu_);
      auto it = sessions_.find(id);
      if (it == sessions_.end()) return;
      SessionState* st = it->second.get();
      if (st->jobs.empty()) {
        st->running = false;
        if (st->closing) sessions_.erase(it);
        return;
      }
      job = std::move(st->jobs.front());
      st->jobs.pop_front();
    }
    job();
  }
}

void WorkloadService::FinishJob(SessionId domain, const Status& status,
                                size_t timeouts, uint64_t retries,
                                uint64_t failures, bool watchdog_fired) {
  const bool user_cancelled = !status.ok() && status.IsCancelled();
  bool opened = false;
  if (status.ok()) {
    breaker_.RecordSuccess(domain);
  } else if (user_cancelled) {
    // Cancellation is a user action, not a health signal: release any
    // half-open probe slot this job held, with no verdict either way.
    breaker_.Abandon(domain);
  } else {
    // Everything else — hard errors, exhausted retries, watchdog/wall
    // timeouts — is the breaker's food: a domain that keeps producing
    // these should stop being admitted.
    opened = breaker_.RecordFailure(domain);
  }
  MutexLock lock(&mu_);
  --in_flight_;
  ++stats_.completed;
  if (user_cancelled) ++stats_.cancelled;
  stats_.query_timeouts += timeouts;
  stats_.retries += retries;
  stats_.failures += failures;
  if (watchdog_fired) ++stats_.watchdog_cancels;
  if (opened) ++stats_.breaker_opens;
}

void WorkloadService::JournalOutcome(double seconds, bool timed_out,
                                     bool failed, uint32_t attempts,
                                     const BufferPoolStats& before,
                                     const BufferPoolStats& after) {
  if (journal_ == nullptr) return;
  JournalQueryRecord rec;
  rec.shard_id = options_.shard_id;
  rec.query_index = journal_index_.fetch_add(1, std::memory_order_relaxed);
  rec.seconds = seconds;
  rec.timed_out = timed_out;
  rec.failed = failed;
  rec.attempts = attempts;
  rec.pool_hit_delta = after.hits - before.hits;
  rec.pool_miss_delta = after.misses - before.misses;
  Status appended = journal_->Append(rec);
  if (!appended.ok()) {
    MutexLock lock(&mu_);
    if (journal_status_.ok()) journal_status_ = appended;
  }
}

std::future<Result<QueryResult>> WorkloadService::SubmitQuery(
    std::string sql, JobOptions options) {
  auto prom = std::make_shared<std::promise<Result<QueryResult>>>();
  std::future<Result<QueryResult>> fut = prom->get_future();

  Session* strand_session = nullptr;
  if (options.session != kNoSession) {
    MutexLock lock(&mu_);
    auto it = sessions_.find(options.session);
    if (it == sessions_.end() || it->second->closing) {
      return ReadyFuture<QueryResult>(Status::NotFound("no such session"));
    }
    strand_session = &it->second->session;
  }

  const uint64_t ordinal = job_ordinal_.fetch_add(1, std::memory_order_relaxed);
  auto job = [this, sql = std::move(sql), options, strand_session, prom,
              ordinal] {
    uint64_t retries = 0;
    bool watchdog_fired = false;
    Result<QueryResult> r = [&]() -> Result<QueryResult> {
      if (options.cancel.cancelled()) {
        return Status::Cancelled("cancelled before execution");
      }
      auto wall_deadline = WallDeadline(options);
      JobOptions eff = options;
      std::optional<uint64_t> watch;
      if (wall_deadline.has_value()) {
        // The watchdog owns a private exec token: a deadline fire stays
        // distinguishable from the submitter's cancel, which the watchdog
        // forwards onto the same token every tick.
        eff.cancel = CancellationToken();
        watch = watchdog_.Watch(GraceDeadline(options, options_.watchdog),
                                eff.cancel, options.cancel);
      }
      FaultScope scope(JobScopeSeed(ordinal, 0));
      auto run = [&](Session* session) -> Result<QueryResult> {
        BufferPoolStats before = session->pool()->stats();
        auto res =
            ExecuteWithRetry(session, sql, eff, wall_deadline, &retries);
        if (watch.has_value()) {
          watchdog_fired = watchdog_.Release(*watch);
          if (!res.ok() && res.status().IsCancelled() && watchdog_fired &&
              !options.cancel.cancelled()) {
            // The watchdog fired for the wall budget, not for the user:
            // the budget's contract is Timeout.
            res = Status::Timeout(
                "wall-clock budget exhausted mid-attempt (watchdog)");
          }
        }
        if (res.ok()) {
          JournalOutcome(res->sim_seconds, res->timed_out, res->failed,
                         static_cast<uint32_t>(retries) + 1, before,
                         session->pool()->stats());
        } else if (!res.status().IsCancelled() && !res.status().IsTimeout()) {
          JournalOutcome(0.0, false, true,
                         static_cast<uint32_t>(retries) + 1, before,
                         session->pool()->stats());
        }
        return res;
      };
      if (strand_session != nullptr) return run(strand_session);
      Session ephemeral(db_, options_.session);
      return run(&ephemeral);
    }();
    FinishJob(options.session, r.status(), r.ok() && r->timed_out ? 1 : 0,
              retries, 0, watchdog_fired);
    prom->set_value(std::move(r));
  };

  Status dispatched = Dispatch(options.session, std::move(job));
  if (!dispatched.ok()) return ReadyFuture<QueryResult>(dispatched);
  return fut;
}

std::future<Result<std::vector<QueryResult>>> WorkloadService::SubmitWorkload(
    std::vector<std::string> sql, JobOptions options) {
  auto prom =
      std::make_shared<std::promise<Result<std::vector<QueryResult>>>>();
  auto fut = prom->get_future();

  Session* strand_session = nullptr;
  if (options.session != kNoSession) {
    MutexLock lock(&mu_);
    auto it = sessions_.find(options.session);
    if (it == sessions_.end() || it->second->closing) {
      return ReadyFuture<std::vector<QueryResult>>(
          Status::NotFound("no such session"));
    }
    strand_session = &it->second->session;
  }

  const uint64_t ordinal = job_ordinal_.fetch_add(1, std::memory_order_relaxed);
  auto job = [this, sql = std::move(sql), options, strand_session, prom,
              ordinal] {
    size_t timeouts = 0;
    uint64_t retries = 0;
    uint64_t failures = 0;
    bool watchdog_fired = false;
    Result<std::vector<QueryResult>> r =
        [&]() -> Result<std::vector<QueryResult>> {
      Session ephemeral(db_, options_.session);
      Session* session =
          strand_session != nullptr ? strand_session : &ephemeral;
      auto wall_deadline = WallDeadline(options);
      JobOptions eff = options;
      std::optional<uint64_t> watch;
      if (wall_deadline.has_value()) {
        // One watch spans the whole job — the wall budget is per job, and
        // the watchdog forwards the submitter's cancel onto the private
        // exec token every tick.
        eff.cancel = CancellationToken();
        watch = watchdog_.Watch(GraceDeadline(options, options_.watchdog),
                                eff.cancel, options.cancel);
      }
      Status aborted = Status::OK();
      std::vector<QueryResult> out;
      out.reserve(sql.size());
      for (size_t i = 0; i < sql.size(); ++i) {
        if (options.cancel.cancelled() || eff.cancel.cancelled()) {
          aborted = Status::Cancelled("workload cancelled");
          break;
        }
        // One scope per query spanning all its attempts, so fire-on-Nth
        // schedules converge across retries instead of re-firing.
        FaultScope scope(JobScopeSeed(ordinal, i));
        const uint64_t retries_before = retries;
        BufferPoolStats before = session->pool()->stats();
        auto qr =
            ExecuteWithRetry(session, sql[i], eff, wall_deadline, &retries);
        const uint32_t attempts =
            static_cast<uint32_t>(retries - retries_before) + 1;
        if (!qr.ok()) {
          Status st = qr.status();
          // Cancellation and the wall budget abort the job; everything
          // else is isolated as a censored placeholder — the workload
          // always completes, like the runner's failure isolation.
          if (st.IsCancelled() || st.IsTimeout()) {
            aborted = st;
            break;
          }
          QueryResult censored;
          censored.timed_out = true;
          censored.failed = true;
          censored.sim_seconds =
              CensoredSeconds(db_, session, options.deadline_seconds);
          ++timeouts;
          ++failures;
          JournalOutcome(censored.sim_seconds, true, true, attempts, before,
                         session->pool()->stats());
          out.push_back(std::move(censored));
          continue;
        }
        if (qr->timed_out) ++timeouts;
        JournalOutcome(qr->sim_seconds, qr->timed_out, qr->failed, attempts,
                       before, session->pool()->stats());
        out.push_back(qr.TakeValue());
      }
      if (watch.has_value()) {
        watchdog_fired = watchdog_.Release(*watch);
        if (!aborted.ok() && aborted.IsCancelled() && watchdog_fired &&
            !options.cancel.cancelled()) {
          aborted = Status::Timeout(
              "wall-clock budget exhausted mid-attempt (watchdog)");
        }
      }
      if (!aborted.ok()) return aborted;
      return out;
    }();
    FinishJob(options.session, r.status(), timeouts, retries, failures,
              watchdog_fired);
    prom->set_value(std::move(r));
  };

  Status dispatched = Dispatch(options.session, std::move(job));
  if (!dispatched.ok()) {
    return ReadyFuture<std::vector<QueryResult>>(dispatched);
  }
  return fut;
}

std::future<Result<ShadowIndexBuildResult>> WorkloadService::SubmitIndexBuild(
    IndexDef def, JobOptions options) {
  auto prom = std::make_shared<std::promise<Result<ShadowIndexBuildResult>>>();
  auto fut = prom->get_future();

  // Builds are always sessionless: the shadow tree lives in a private store
  // and the scan prices into a private pool, so strand affinity buys
  // nothing and a cold pool keeps the cost (and fingerprint) deterministic.
  const uint64_t ordinal = job_ordinal_.fetch_add(1, std::memory_order_relaxed);
  auto job = [this, def = std::move(def), options, prom, ordinal] {
    bool watchdog_fired = false;
    Result<ShadowIndexBuildResult> r = [&]() -> Result<ShadowIndexBuildResult> {
      if (options.cancel.cancelled()) {
        return Status::Cancelled("cancelled before execution");
      }
      auto wall_deadline = WallDeadline(options);
      JobOptions eff = options;
      std::optional<uint64_t> watch;
      if (wall_deadline.has_value()) {
        eff.cancel = CancellationToken();
        // The Release below is guarded by watch.has_value(), which is true
        // exactly when this branch ran; the analyzer cannot correlate the
        // two conditions. NOLINTNEXTLINE(tabbench-release-on-path)
        watch = watchdog_.Watch(GraceDeadline(options, options_.watchdog),
                                eff.cancel, options.cancel);
      }
      FaultScope scope(JobScopeSeed(ordinal, 0));
      Session ephemeral(db_, options_.session);
      CostParams params = db_->options().cost;
      if (options.deadline_seconds > 0 &&
          options.deadline_seconds < params.timeout_seconds) {
        params.timeout_seconds = options.deadline_seconds;
      }
      ExecContext ctx = db_->MakeSessionContext(ephemeral.pool(), params);
      ctx.set_cancellation_token(eff.cancel);
      BufferPoolStats before = ephemeral.pool()->stats();
      auto res = ShadowIndexBuild(*db_, def, &ctx);
      if (watch.has_value()) {
        watchdog_fired = watchdog_.Release(*watch);
        if (!res.ok() && res.status().IsCancelled() && watchdog_fired &&
            !options.cancel.cancelled()) {
          res = Status::Timeout(
              "wall-clock budget exhausted mid-attempt (watchdog)");
        }
      }
      if (res.ok()) {
        JournalOutcome(res->sim_seconds, false, false, 1, before,
                       ephemeral.pool()->stats());
      } else if (!res.status().IsCancelled() && !res.status().IsTimeout()) {
        JournalOutcome(0.0, false, true, 1, before,
                       ephemeral.pool()->stats());
      }
      return res;
    }();
    FinishJob(kNoSession, r.status(), 0, 0, 0, watchdog_fired);
    prom->set_value(std::move(r));
  };

  Status dispatched = Dispatch(kNoSession, std::move(job));
  if (!dispatched.ok()) return ReadyFuture<ShadowIndexBuildResult>(dispatched);
  return fut;
}

SessionId WorkloadService::OpenSession(SessionOptions options) {
  MutexLock lock(&mu_);
  if (shutdown_) return kNoSession;
  // Vectorized sessions draw their morsel helpers from the service's own
  // worker pool unless the caller supplied one: intra-query parallelism
  // then competes with job scheduling under the same admission control.
  if (options.intra_query_parallelism > 0 &&
      options.intra_query_pool == nullptr) {
    options.intra_query_pool = &pool_;
  }
  SessionId id = next_session_++;
  auto st = std::make_unique<SessionState>(db_, options);
  if (session_parallelism_cap_ > 0) {
    st->session.set_parallelism_cap(session_parallelism_cap_);
  }
  sessions_.emplace(id, std::move(st));
  return id;
}

Status WorkloadService::CloseSession(SessionId id) {
  MutexLock lock(&mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return Status::NotFound("no such session");
  SessionState* st = it->second.get();
  if (st->running || !st->jobs.empty()) {
    st->closing = true;  // destroyed once the strand drains
  } else {
    sessions_.erase(it);
  }
  return Status::OK();
}

Result<double> WorkloadService::SessionClock(SessionId id) const {
  MutexLock lock(&mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return Status::NotFound("no such session");
  return it->second->session.clock_seconds();
}

ServiceStats WorkloadService::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

uint64_t WorkloadService::in_flight() const {
  MutexLock lock(&mu_);
  return in_flight_;
}

void WorkloadService::CapSessionParallelism(size_t cap) {
  MutexLock lock(&mu_);
  session_parallelism_cap_ = cap;
  // set_parallelism_cap is an atomic store, so touching the Session here
  // does not violate the strand invariant (mu_ guards the map walk only).
  for (auto& [id, st] : sessions_) st->session.set_parallelism_cap(cap);
}

Status WorkloadService::SubmitRaw(std::function<void()> task) {
  MutexLock lock(&mu_);
  if (shutdown_) return Status::Unavailable("service is shutting down");
  return pool_.Submit(std::move(task));
}

Status WorkloadService::journal_status() const {
  MutexLock lock(&mu_);
  return journal_status_;
}

void WorkloadService::Shutdown() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  pool_.Shutdown();  // drains every accepted job; their futures resolve
  watchdog_.Stop();  // after the drain: jobs release their watches first
}

}  // namespace tabbench
