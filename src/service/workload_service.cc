#include "service/workload_service.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <utility>

#include "util/fault_injection.h"

namespace tabbench {

namespace {

/// A future already holding `status` (admission rejections, dead sessions).
template <typename T>
std::future<Result<T>> ReadyFuture(Status status) {
  std::promise<Result<T>> p;
  p.set_value(Result<T>(std::move(status)));
  return p.get_future();
}

/// Drops a fault latched after an attempt's last safe point so it cannot
/// leak into the next attempt (the runner does the same at its attempt
/// boundaries).
void DropStaleLatchedFault() {
  if (FaultInjectionArmed()) (void)FaultRegistry::TakePending();
}

/// Seed for the FaultScope of query `idx` of job `ordinal`. The shift
/// keeps distinct jobs' query seeds from colliding for workloads of up to
/// ~1M queries; schedules stay deterministic per (job, query) pair.
uint64_t JobScopeSeed(uint64_t ordinal, size_t idx) {
  return (ordinal << 20) ^ static_cast<uint64_t>(idx);
}

std::optional<std::chrono::steady_clock::time_point> WallDeadline(
    const JobOptions& options) {
  if (options.wall_timeout_seconds <= 0.0) return std::nullopt;
  return std::chrono::steady_clock::now() +
         std::chrono::duration_cast<std::chrono::steady_clock::duration>(
             std::chrono::duration<double>(options.wall_timeout_seconds));
}

/// One query's retry loop: transient errors sleep the policy's backoff in
/// wall-clock time and try again; the sleep returns kCancelled/kTimeout
/// promptly when the token fires or the wall budget expires mid-backoff.
/// The caller opens the FaultScope spanning all attempts.
Result<QueryResult> ExecuteWithRetry(
    Session* session, const std::string& sql, const JobOptions& options,
    const std::optional<std::chrono::steady_clock::time_point>& wall_deadline,
    uint64_t* retries) {
  for (int attempt = 1;; ++attempt) {
    auto res = session->Execute(sql, options.deadline_seconds, options.cancel);
    DropStaleLatchedFault();
    if (res.ok()) return res;
    if (!options.retry.ShouldRetry(res.status(), attempt)) return res;
    Status slept = SleepWithCancellation(options.retry.BackoffSeconds(attempt),
                                         options.cancel, wall_deadline);
    if (!slept.ok()) return slept;
    ++*retries;
  }
}

/// The cost a censored (failed) query is charged: the paper's timeout,
/// tightened by whichever simulated-seconds deadline governed the query.
double CensoredSeconds(const Database* db, const Session* session,
                       double deadline_override) {
  double t = db->options().cost.timeout_seconds;
  double deadline = deadline_override > 0.0
                        ? deadline_override
                        : session->options().deadline_seconds;
  if (deadline > 0.0) t = std::min(t, deadline);
  return t;
}

}  // namespace

WorkloadService::WorkloadService(const Database* db, ServiceOptions options)
    : db_(db),
      options_(options),
      // Admission control lives at the service level (max_in_flight), so
      // the pool queue itself is unbounded: every admitted job is owed a
      // fulfilled future and must reach a worker.
      pool_(ThreadPool::Options{options.workers, 0}) {}

WorkloadService::~WorkloadService() { Shutdown(); }

bool WorkloadService::AdmitLocked() {
  if (shutdown_) {
    ++stats_.rejected;
    return false;
  }
  if (options_.max_in_flight > 0 && in_flight_ >= options_.max_in_flight) {
    ++stats_.rejected;
    return false;
  }
  ++in_flight_;
  ++stats_.submitted;
  return true;
}

Status WorkloadService::Dispatch(SessionId id, std::function<void()> job) {
  MutexLock lock(&mu_);
  if (id == kNoSession) {
    if (!AdmitLocked()) return Status::Unavailable("service at capacity");
    // Holding mu_ across Submit is what makes the shutdown_ check
    // authoritative: Shutdown() flips the flag under mu_ before shutting
    // the pool, so an admitted job always reaches a live pool.
    return pool_.Submit(std::move(job));
  }
  auto it = sessions_.find(id);
  if (it == sessions_.end() || it->second->closing) {
    return Status::NotFound("no such session");
  }
  if (!AdmitLocked()) return Status::Unavailable("service at capacity");
  SessionState* st = it->second.get();
  st->jobs.push_back(std::move(job));
  if (!st->running) {
    st->running = true;
    return pool_.Submit([this, id] { DrainSession(id); });
  }
  return Status::OK();
}

void WorkloadService::DrainSession(SessionId id) {
  for (;;) {
    std::function<void()> job;
    {
      MutexLock lock(&mu_);
      auto it = sessions_.find(id);
      if (it == sessions_.end()) return;
      SessionState* st = it->second.get();
      if (st->jobs.empty()) {
        st->running = false;
        if (st->closing) sessions_.erase(it);
        return;
      }
      job = std::move(st->jobs.front());
      st->jobs.pop_front();
    }
    job();
  }
}

void WorkloadService::FinishJob(bool was_cancelled, size_t timeouts,
                                uint64_t retries, uint64_t failures) {
  MutexLock lock(&mu_);
  --in_flight_;
  ++stats_.completed;
  if (was_cancelled) ++stats_.cancelled;
  stats_.query_timeouts += timeouts;
  stats_.retries += retries;
  stats_.failures += failures;
}

std::future<Result<QueryResult>> WorkloadService::SubmitQuery(
    std::string sql, JobOptions options) {
  auto prom = std::make_shared<std::promise<Result<QueryResult>>>();
  std::future<Result<QueryResult>> fut = prom->get_future();

  Session* strand_session = nullptr;
  if (options.session != kNoSession) {
    MutexLock lock(&mu_);
    auto it = sessions_.find(options.session);
    if (it == sessions_.end() || it->second->closing) {
      return ReadyFuture<QueryResult>(Status::NotFound("no such session"));
    }
    strand_session = &it->second->session;
  }

  const uint64_t ordinal = job_ordinal_.fetch_add(1, std::memory_order_relaxed);
  auto job = [this, sql = std::move(sql), options, strand_session, prom,
              ordinal] {
    uint64_t retries = 0;
    Result<QueryResult> r = [&]() -> Result<QueryResult> {
      if (options.cancel.cancelled()) {
        return Status::Cancelled("cancelled before execution");
      }
      auto wall_deadline = WallDeadline(options);
      FaultScope scope(JobScopeSeed(ordinal, 0));
      if (strand_session != nullptr) {
        return ExecuteWithRetry(strand_session, sql, options, wall_deadline,
                                &retries);
      }
      Session ephemeral(db_, options_.session);
      return ExecuteWithRetry(&ephemeral, sql, options, wall_deadline,
                              &retries);
    }();
    FinishJob(!r.ok() && r.status().IsCancelled(),
              r.ok() && r->timed_out ? 1 : 0, retries, 0);
    prom->set_value(std::move(r));
  };

  Status dispatched = Dispatch(options.session, std::move(job));
  if (!dispatched.ok()) return ReadyFuture<QueryResult>(dispatched);
  return fut;
}

std::future<Result<std::vector<QueryResult>>> WorkloadService::SubmitWorkload(
    std::vector<std::string> sql, JobOptions options) {
  auto prom =
      std::make_shared<std::promise<Result<std::vector<QueryResult>>>>();
  auto fut = prom->get_future();

  Session* strand_session = nullptr;
  if (options.session != kNoSession) {
    MutexLock lock(&mu_);
    auto it = sessions_.find(options.session);
    if (it == sessions_.end() || it->second->closing) {
      return ReadyFuture<std::vector<QueryResult>>(
          Status::NotFound("no such session"));
    }
    strand_session = &it->second->session;
  }

  const uint64_t ordinal = job_ordinal_.fetch_add(1, std::memory_order_relaxed);
  auto job = [this, sql = std::move(sql), options, strand_session, prom,
              ordinal] {
    size_t timeouts = 0;
    uint64_t retries = 0;
    uint64_t failures = 0;
    Result<std::vector<QueryResult>> r =
        [&]() -> Result<std::vector<QueryResult>> {
      Session ephemeral(db_, options_.session);
      Session* session =
          strand_session != nullptr ? strand_session : &ephemeral;
      auto wall_deadline = WallDeadline(options);
      std::vector<QueryResult> out;
      out.reserve(sql.size());
      for (size_t i = 0; i < sql.size(); ++i) {
        if (options.cancel.cancelled()) {
          return Status::Cancelled("workload cancelled");
        }
        // One scope per query spanning all its attempts, so fire-on-Nth
        // schedules converge across retries instead of re-firing.
        FaultScope scope(JobScopeSeed(ordinal, i));
        auto qr = ExecuteWithRetry(session, sql[i], options, wall_deadline,
                                   &retries);
        if (!qr.ok()) {
          Status st = qr.status();
          // Cancellation and the wall budget abort the job; everything
          // else is isolated as a censored placeholder — the workload
          // always completes, like the runner's failure isolation.
          if (st.IsCancelled() || st.IsTimeout()) return st;
          QueryResult censored;
          censored.timed_out = true;
          censored.failed = true;
          censored.sim_seconds =
              CensoredSeconds(db_, session, options.deadline_seconds);
          ++timeouts;
          ++failures;
          out.push_back(std::move(censored));
          continue;
        }
        if (qr->timed_out) ++timeouts;
        out.push_back(qr.TakeValue());
      }
      return out;
    }();
    FinishJob(!r.ok() && r.status().IsCancelled(), timeouts, retries,
              failures);
    prom->set_value(std::move(r));
  };

  Status dispatched = Dispatch(options.session, std::move(job));
  if (!dispatched.ok()) {
    return ReadyFuture<std::vector<QueryResult>>(dispatched);
  }
  return fut;
}

SessionId WorkloadService::OpenSession(SessionOptions options) {
  MutexLock lock(&mu_);
  if (shutdown_) return kNoSession;
  SessionId id = next_session_++;
  sessions_.emplace(id, std::make_unique<SessionState>(db_, options));
  return id;
}

Status WorkloadService::CloseSession(SessionId id) {
  MutexLock lock(&mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return Status::NotFound("no such session");
  SessionState* st = it->second.get();
  if (st->running || !st->jobs.empty()) {
    st->closing = true;  // destroyed once the strand drains
  } else {
    sessions_.erase(it);
  }
  return Status::OK();
}

Result<double> WorkloadService::SessionClock(SessionId id) const {
  MutexLock lock(&mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return Status::NotFound("no such session");
  return it->second->session.clock_seconds();
}

ServiceStats WorkloadService::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

void WorkloadService::Shutdown() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  pool_.Shutdown();  // drains every accepted job; their futures resolve
}

}  // namespace tabbench
