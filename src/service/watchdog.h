#ifndef TABBENCH_SERVICE_WATCHDOG_H_
#define TABBENCH_SERVICE_WATCHDOG_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <optional>
#include <thread>

#include "util/cancellation.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace tabbench {

struct WatchdogOptions {
  /// Tick granularity while any watch is registered: the upper bound on how
  /// stale a deadline trip or a forwarded cancellation can be. With no
  /// watches the thread blocks on a condition variable and costs nothing.
  double poll_interval_seconds = 0.002;
  /// The service fires a job's watch at wall_timeout_seconds multiplied by
  /// this factor, giving the cooperative checks (between attempts, inside
  /// backoff sleeps) first claim on the budget; the watchdog is the backstop
  /// for attempts that overrun it from the inside.
  double grace_factor = 1.0;
};

/// The force-cancellation backstop behind the service's wall-clock budgets.
///
/// Cooperative cancellation (util/cancellation.h) only helps if somebody
/// flips the flag: a job whose single attempt overruns its whole wall budget
/// never reaches the between-attempts budget check, so before the watchdog
/// the budget was only enforced at retry boundaries. The watchdog is one
/// background thread that watches (deadline, token) pairs and requests
/// cancellation on any token whose deadline has passed — the executor's
/// per-row safe points then unwind the attempt with Status::Cancelled, which
/// the service remaps to Status::Timeout (the budget's contract).
///
/// A watch may also carry an *upstream* token (the submitter's): because the
/// watched victim token is private to the job, user cancellation is
/// forwarded onto it each tick, so one token reaches the executor but both
/// signals get through.
class Watchdog {
 public:
  explicit Watchdog(WatchdogOptions options = {});
  ~Watchdog();  // Stop()s

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Registers a watch: once `deadline` passes, `victim.RequestCancel()` is
  /// called (at most one fire per watch). While registered, a cancelled
  /// `upstream` is forwarded to `victim` every tick. Either signal may be
  /// absent (std::nullopt). Returns the id for Release.
  uint64_t Watch(std::optional<std::chrono::steady_clock::time_point> deadline,
                 CancellationToken victim,
                 std::optional<CancellationToken> upstream) TB_EXCLUDES(mu_);

  /// Unregisters; returns true iff the watchdog force-cancelled the victim
  /// because its deadline passed (the caller's cue to remap kCancelled to
  /// kTimeout and count the event).
  bool Release(uint64_t id) TB_EXCLUDES(mu_);

  /// Total deadline fires since construction.
  uint64_t fires() const TB_EXCLUDES(mu_);

  /// Stops the thread. Not safe to call concurrently with itself; the
  /// service calls it once from Shutdown (and the destructor repeats it
  /// harmlessly).
  void Stop() TB_EXCLUDES(mu_);

 private:
  struct Entry {
    std::optional<std::chrono::steady_clock::time_point> deadline;
    CancellationToken victim;
    std::optional<CancellationToken> upstream;
    bool fired = false;
  };

  void Loop() TB_EXCLUDES(mu_);

  const WatchdogOptions options_;
  /// Leaf lock: the watchdog's callbacks go through CancellationToken
  /// (lock-free), so mu_ never wraps another mutex and always orders after
  /// the service's mu_ (see workload_service.h).
  mutable Mutex mu_ TB_ACQUIRED_AFTER("WorkloadService::mu_");
  CondVar cv_;
  bool stop_ TB_GUARDED_BY(mu_) = false;
  uint64_t next_id_ TB_GUARDED_BY(mu_) = 1;
  uint64_t fires_ TB_GUARDED_BY(mu_) = 0;
  std::map<uint64_t, Entry> watches_ TB_GUARDED_BY(mu_);
  /// Interrupts the loop's current inter-tick sleep (a fresh token each
  /// tick) so a newly registered near deadline or Stop() acts promptly.
  CancellationToken wake_ TB_GUARDED_BY(mu_);
  std::thread thread_;  // last: joins after every guarded member is live
};

}  // namespace tabbench

#endif  // TABBENCH_SERVICE_WATCHDOG_H_
