#include "service/shard.h"

#include <utility>

namespace tabbench {

const char* ShardHealthName(ShardHealth health) {
  switch (health) {
    case ShardHealth::kHealthy:
      return "healthy";
    case ShardHealth::kDegraded:
      return "degraded";
    case ShardHealth::kQuarantined:
      return "quarantined";
    case ShardHealth::kRecovering:
      return "recovering";
  }
  return "unknown";
}

Shard::Shard(const Database* db, uint32_t id, const ShardOptions& options)
    : id_(id),
      options_(options),
      service_(std::make_unique<WorkloadService>(db, [&] {
        ServiceOptions svc = options.service;
        svc.shard_id = id;
        return svc;
      }())) {}

Shard::~Shard() { Shutdown(); }

ShardHealth Shard::health() const {
  MutexLock lock(&mu_);
  return health_;
}

bool Shard::serving() const {
  MutexLock lock(&mu_);
  return health_ == ShardHealth::kHealthy || health_ == ShardHealth::kDegraded;
}

LatencyDigest Shard::latency() const { return latency_.Snapshot(); }

uint64_t Shard::kill_epoch() const {
  MutexLock lock(&mu_);
  return kill_epoch_;
}

void Shard::RecordLatency(double seconds) { latency_.Record(seconds); }

void Shard::ApplyCapLocked(ShardHealth to) {
  // Ladder step 1. Only the healthy<->degraded boundary matters: a
  // quarantined shard serves nothing, and a recovering shard keeps the cap
  // until its probes prove it out.
  service_->CapSessionParallelism(to == ShardHealth::kHealthy ? 0 : 1);
}

Shard::Transition Shard::TransitionLocked(ShardHealth to, std::string reason) {
  Transition t;
  t.from = health_;
  t.to = to;
  t.reason = std::move(reason);
  t.changed = health_ != to;
  if (t.changed) {
    health_ = to;
    ApplyCapLocked(to);
  }
  return t;
}

Shard::Transition Shard::EvaluateHealth(double now) {
  const LatencyDigest digest = latency_.Snapshot();
  const ServiceStats svc = service_->stats();
  const uint64_t depth = service_->in_flight();
  MutexLock lock(&mu_);
  if (health_ == ShardHealth::kQuarantined ||
      health_ == ShardHealth::kRecovering) {
    Transition none;
    none.from = none.to = health_;
    return none;
  }
  const ShardHealthThresholds& th = options_.health;
  const uint64_t breaker_delta = svc.breaker_opens - last_breaker_opens_;
  const uint64_t watchdog_delta = svc.watchdog_cancels - last_watchdog_cancels_;
  last_breaker_opens_ = svc.breaker_opens;
  last_watchdog_cancels_ = svc.watchdog_cancels;
  const bool latency_live = digest.count >= th.min_latency_samples;
  if (latency_live && digest.count >= th.latency_window) latency_.Clear();

  std::string reason;
  ShardHealth target = ShardHealth::kHealthy;
  // Severe signals first: any one escalates straight to quarantine.
  if (th.quarantine_queue_depth > 0 && depth > th.quarantine_queue_depth) {
    target = ShardHealth::kQuarantined;
    reason = "queue depth " + std::to_string(depth) + " > " +
             std::to_string(th.quarantine_queue_depth);
  } else if (th.quarantine_breaker_opens > 0 &&
             breaker_delta >= th.quarantine_breaker_opens) {
    target = ShardHealth::kQuarantined;
    reason = "breaker opened " + std::to_string(breaker_delta) + "x";
  } else if (th.quarantine_watchdog_cancels > 0 &&
             watchdog_delta >= th.quarantine_watchdog_cancels) {
    target = ShardHealth::kQuarantined;
    reason = "watchdog cancelled " + std::to_string(watchdog_delta) + " jobs";
  } else if (latency_live && th.quarantine_p99_seconds > 0.0 &&
             digest.p99 > th.quarantine_p99_seconds) {
    target = ShardHealth::kQuarantined;
    reason = "p99 " + std::to_string(digest.p99) + "s > " +
             std::to_string(th.quarantine_p99_seconds) + "s";
  } else if (th.degrade_queue_depth > 0 && depth > th.degrade_queue_depth) {
    target = ShardHealth::kDegraded;
    reason = "queue depth " + std::to_string(depth) + " > " +
             std::to_string(th.degrade_queue_depth);
  } else if (latency_live && th.degrade_p95_seconds > 0.0 &&
             digest.p95 > th.degrade_p95_seconds) {
    target = ShardHealth::kDegraded;
    reason = "p95 " + std::to_string(digest.p95) + "s > " +
             std::to_string(th.degrade_p95_seconds) + "s";
  } else {
    reason = "signals nominal";
  }
  if (target == ShardHealth::kQuarantined) {
    quarantined_at_ = now;
    probes_in_flight_ = 0;
    probe_successes_ = 0;
  }
  return TransitionLocked(target, std::move(reason));
}

bool Shard::MaybeOpenProbeWindow(double now) {
  MutexLock lock(&mu_);
  if (health_ != ShardHealth::kQuarantined) return false;
  if (now - quarantined_at_ < options_.health.quarantine_cooldown_seconds) {
    return false;
  }
  health_ = ShardHealth::kRecovering;
  probes_in_flight_ = 0;
  probe_successes_ = 0;
  return true;
}

bool Shard::AdmitProbe() {
  MutexLock lock(&mu_);
  if (health_ != ShardHealth::kRecovering) return false;
  if (probes_in_flight_ + probe_successes_ >=
      options_.health.readmit_probe_quota) {
    return false;
  }
  ++probes_in_flight_;
  return true;
}

Shard::ProbeVerdict Shard::FinishProbe(bool success, double now) {
  MutexLock lock(&mu_);
  if (health_ != ShardHealth::kRecovering) return ProbeVerdict::kPending;
  if (probes_in_flight_ > 0) --probes_in_flight_;
  if (!success) {
    quarantined_at_ = now;
    probes_in_flight_ = 0;
    probe_successes_ = 0;
    health_ = ShardHealth::kQuarantined;
    return ProbeVerdict::kRequarantined;
  }
  ++probe_successes_;
  if (probe_successes_ >= options_.health.readmit_probe_quota) {
    health_ = ShardHealth::kHealthy;
    probes_in_flight_ = 0;
    probe_successes_ = 0;
    ApplyCapLocked(ShardHealth::kHealthy);
    return ProbeVerdict::kReadmitted;
  }
  return ProbeVerdict::kPending;
}

void Shard::Kill(double now) {
  MutexLock lock(&mu_);
  ++kill_epoch_;
  quarantined_at_ = now;
  probes_in_flight_ = 0;
  probe_successes_ = 0;
  health_ = ShardHealth::kQuarantined;
  ApplyCapLocked(ShardHealth::kQuarantined);
  // Cancel every attempt the shard is serving: their futures resolve
  // Cancelled, and the router (seeing the epoch bump) fails them over to a
  // sibling instead of reporting the cancel to the client. RequestCancel is
  // a relaxed atomic store — nothing blocks under mu_ here.
  for (auto& [ordinal, token] : inflight_) token.RequestCancel();
}

void Shard::RegisterAttempt(uint64_t ordinal, CancellationToken cancel) {
  MutexLock lock(&mu_);
  inflight_[ordinal] = std::move(cancel);
}

void Shard::UnregisterAttempt(uint64_t ordinal) {
  MutexLock lock(&mu_);
  inflight_.erase(ordinal);
}

void Shard::Shutdown() { service_->Shutdown(); }

}  // namespace tabbench
