#ifndef TABBENCH_SERVICE_SHARD_ROUTER_H_
#define TABBENCH_SERVICE_SHARD_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/database.h"
#include "service/shard.h"
#include "service/workload_service.h"
#include "util/cancellation.h"
#include "util/mutex.h"
#include "util/run_journal.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace tabbench {

/// Options for the sharded serving layer.
struct ShardRouterOptions {
  /// Worker shards; each owns a WorkloadService slice (thread pool, circuit
  /// breaker, watchdog, journal). Minimum 1.
  size_t shards = 2;
  /// Template for every shard (per-shard workers, breaker, watchdog, health
  /// thresholds). Per-shard journal paths and shard ids are derived.
  ShardOptions shard;
  /// Router dispatcher threads: each in-flight job occupies one while it
  /// blocks on its shard future. 0 sizes the pool at twice the summed shard
  /// workers (capped by max_in_flight when that is set).
  size_t router_workers = 0;
  /// Router-level admission cap on jobs in flight. A submission accepted
  /// under this cap is *admitted* — the no-lost-job invariant (a journaled
  /// terminal outcome per admitted job) starts here. 0 = no cap.
  size_t max_in_flight = 256;
  /// Directory for the audit journals: `router.tbj` (terminal outcomes +
  /// routing decisions) and `shard-<id>.tbj` (per-shard served queries).
  /// Empty disables journaling.
  std::string journal_dir;
  /// Clock for quarantine cooldowns and decision timestamps; tests inject a
  /// ManualServiceClock for deterministic replay. Not owned; null uses a
  /// steady wall clock owned by the router.
  ServiceClock* clock = nullptr;
  /// Route each domain's jobs onto a long-lived session on its current
  /// shard (warm-cache affinity). When false every job runs sessionless.
  bool use_domain_sessions = true;
  /// Ladder step 2: when a job's target shard is degraded, submissions with
  /// priority below this are shed with kUnavailable and a machine-readable
  /// retry hint (RetryAfterHintSeconds). Default priority is 1, so priority
  /// 0 marks sheddable background work out of the box.
  int shed_below_priority = 1;
  /// The hint embedded in shed rejections.
  double shed_retry_after_seconds = 0.05;
  /// Re-evaluate a shard's health every this many of its completions
  /// (Tick() forces a pass). 0 evaluates on every completion.
  uint64_t eval_every = 16;
  /// Dispatch attempts per job across shards before the job fails with the
  /// last error. 0 = number of shards + 1.
  size_t max_failover_attempts = 0;
  /// In-memory decision log bound (oldest entries dropped past it); the
  /// journal keeps the full stream.
  size_t max_decisions = 65536;
};

/// Per-submission routing knobs.
struct SubmitOptions {
  /// Session-affinity domain: all jobs sharing a domain run on the same
  /// shard (and, with use_domain_sessions, the same warm session) until the
  /// health machine moves the domain. Millions of client sessions hash down
  /// onto a bounded domain space upstream of the router.
  uint64_t domain = 0;
  /// Shedding priority (higher survives longer); see shed_below_priority.
  int priority = 1;
  /// Per-job execution knobs forwarded to the serving shard. `cancel` stays
  /// the *client's* token: the router wraps each dispatch attempt in its own
  /// token so a chaos shard kill cancels the attempt, not the job.
  JobOptions job;
};

/// Router counters (monotone since construction).
struct RouterStats {
  uint64_t submitted = 0;       // admitted jobs
  uint64_t completed = 0;       // admitted jobs resolved (any status)
  uint64_t rejected = 0;        // admission-cap / shutdown / fault bounces
  uint64_t shed = 0;            // ladder step 2 rejections
  uint64_t failovers = 0;       // dispatch attempts moved to a sibling
  uint64_t kills = 0;           // chaos kills (KillShard + injected)
  uint64_t quarantines = 0;     // transitions into kQuarantined
  uint64_t degrades = 0;        // transitions into kDegraded
  uint64_t recoveries = 0;      // degraded -> healthy via signals
  uint64_t reroutes = 0;        // domains moved off a non-serving shard
  uint64_t rehomes = 0;         // domains moved back to their home shard
  uint64_t probes = 0;          // probe jobs admitted to recovering shards
  uint64_t readmissions = 0;    // recovering -> healthy (quota met)
  uint64_t requarantines = 0;   // recovering -> quarantined (probe failed)
};

/// Parses the machine-readable hint ("retry_after_seconds=<x>") that shed
/// and capacity rejections embed in their status message; 0 when absent.
double RetryAfterHintSeconds(const Status& status);

/// The sharded front door of the serving layer: routes every submission to
/// a worker shard by session-domain affinity, fails admitted jobs over to
/// sibling shards when their shard dies under them, and walks the graceful
/// degradation ladder as per-shard health decays:
///
///   step 1  degraded shards cap session parallelism at 1 (Shard);
///   step 2  degraded shards shed low-priority load with kUnavailable and a
///           retry-after hint;
///   step 3  quarantined shards serve nothing — their domains re-route to
///           siblings — until a cooldown plus a quota of successful probes
///           re-admits them.
///
/// Invariants (audited by the chaos tests over the router journal):
///   - no lost admitted job: every submission the router admits resolves
///     its future AND appends exactly one terminal-outcome record;
///   - deterministic replay: with a ManualServiceClock, serialized
///     submissions, and a fixed fault schedule, two runs produce identical
///     decision logs (sequence, kind, shard, domain).
///
/// Chaos hooks: KillShard / the `service.shard.quarantine` fault point
/// quarantine a shard and cancel everything it is serving (the router fails
/// those jobs over); StallShard wedges a shard's workers so the queue-depth
/// signal escalates; `service.shard.route` bounces submissions at the door.
class ShardRouter {
 public:
  ShardRouter(const Database* db, ShardRouterOptions options = {});
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Submits one query. The future resolves with the QueryResult or the
  /// terminal error after any failover attempts; Unavailable rejections
  /// (capacity, shedding, no serving shard) may carry a retry-after hint.
  std::future<Result<QueryResult>> Submit(std::string sql,
                                          SubmitOptions options = {})
      TB_EXCLUDES(mu_);

  size_t num_shards() const { return shards_.size(); }
  /// Introspection for tests and the overload harness.
  Shard* shard(size_t index) { return shards_[index].get(); }
  ShardHealth shard_health(size_t index) const {
    return shards_[index]->health();
  }
  /// Static home shard of a domain (1-based id); pure hash, never moves.
  uint32_t HomeShardId(uint64_t domain) const;
  /// Current routing assignment of a domain (1-based id; home if unseen).
  uint32_t DomainShardId(uint64_t domain) const TB_EXCLUDES(mu_);

  /// Chaos: quarantines shard `index` (0-based) immediately and cancels all
  /// its in-flight attempts so the router fails them over.
  void KillShard(size_t index) TB_EXCLUDES(mu_);
  /// Chaos: wedges every worker of shard `index` until `release` fires, so
  /// accepted jobs pile up behind the blockers and the queue-depth signal
  /// drives the shard down the ladder.
  Status StallShard(size_t index, CancellationToken release)
      TB_EXCLUDES(mu_);

  /// Forces a health pass over every shard: opens due probe windows and
  /// re-evaluates the streaming signals. Submissions and completions do
  /// this lazily; Tick() exists for monitors and for stalled shards that
  /// never complete anything.
  void Tick() TB_EXCLUDES(mu_);

  RouterStats stats() const TB_EXCLUDES(mu_);
  /// Copy of the (bounded) in-memory decision log, in decision order. The
  /// deterministic-replay acceptance check compares this stream across runs.
  std::vector<JournalServiceEvent> decisions() const TB_EXCLUDES(mu_);
  /// First error that hit the router journal, or OK (mirrors
  /// WorkloadService::journal_status).
  Status journal_status() const TB_EXCLUDES(mu_);

  /// Stops admission, drains dispatchers and shards, closes journals.
  /// Idempotent; also run by the destructor.
  void Shutdown() TB_EXCLUDES(mu_);

 private:
  struct DomainState {
    bool initialized = false;
    size_t shard = 0;  // current assignment (index into shards_)
    SessionId session = kNoSession;
    size_t session_shard = 0;  // shard the session lives on
  };
  /// One routing decision for one dispatch attempt.
  struct Target {
    size_t shard_index = 0;
    SessionId session = kNoSession;
    bool probe = false;
    Status status;  // non-OK: shed / no serving shard
  };

  size_t HomeIndex(uint64_t domain) const;
  /// Picks the shard + session for one dispatch attempt of `domain`,
  /// walking the ladder: probe steering, rehoming, re-routing off
  /// non-serving shards, and step-2 shedding. Appends any decisions to the
  /// log and to `out_events` (journaled by the caller after unlocking).
  Target AcquireTargetLocked(uint64_t domain, int priority,
                             std::vector<JournalServiceEvent>* out_events)
      TB_REQUIRES(mu_);
  /// Opens probe windows whose quarantine cooldown has elapsed.
  void SweepQuarantinesLocked(double now,
                              std::vector<JournalServiceEvent>* out_events)
      TB_REQUIRES(mu_);
  /// Runs the shard's health evaluation and logs any transition.
  void EvaluateShardLocked(size_t index,
                           std::vector<JournalServiceEvent>* out_events)
      TB_REQUIRES(mu_);
  void KillShardLocked(size_t index, const std::string& reason,
                       std::vector<JournalServiceEvent>* out_events)
      TB_REQUIRES(mu_);
  void LogLocked(const char* kind, uint32_t shard_id, uint64_t domain,
                 std::string detail,
                 std::vector<JournalServiceEvent>* out_events)
      TB_REQUIRES(mu_);
  /// Dispatcher body: runs one admitted job to its terminal outcome
  /// (bounded failover attempts), records latency, evaluates health,
  /// journals the outcome, and only then fulfills the promise.
  void RunJob(std::string sql, SubmitOptions options, Target target,
              uint64_t ordinal,
              std::shared_ptr<std::promise<Result<QueryResult>>> promise)
      TB_EXCLUDES(mu_);
  /// Reports a probe outcome to its shard and logs the verdict.
  void ReportProbe(Shard* shard, bool success) TB_EXCLUDES(mu_);
  /// Appends events / the terminal record to the router journal (outside
  /// any router lock — the writer is internally synchronized and fsyncs).
  void AppendEvents(const std::vector<JournalServiceEvent>& events)
      TB_EXCLUDES(mu_);
  void JournalOutcome(uint64_t ordinal, const Result<QueryResult>& final_res,
                      uint32_t attempts, uint32_t served_by, double wall)
      TB_EXCLUDES(mu_);

  const Database* db_;
  const ShardRouterOptions options_;
  SteadyServiceClock own_clock_;   // used when options_.clock is null
  SteadyServiceClock wall_;        // latency digests always use wall time
  ServiceClock* const clock_;
  /// Built once in the constructor; the vector itself is immutable (shards
  /// synchronize internally).
  const std::vector<std::unique_ptr<Shard>> shards_;
  /// Created in the constructor, then only read; internally synchronized.
  std::unique_ptr<RunJournalWriter> journal_;
  std::atomic<bool> shutdown_{false};

  /// Router lock: routing tables, decision log, stats. Ordered before the
  /// shard/service locks it reaches into while routing (session churn,
  /// health transitions), and checked by both Clang -Wthread-safety and the
  /// analyzer's lock-order pass. Journal appends (fsync) happen outside it.
  mutable Mutex mu_ TB_ACQUIRED_BEFORE("Shard::mu_", "WorkloadService::mu_");
  uint64_t in_flight_ TB_GUARDED_BY(mu_) = 0;
  uint64_t next_ordinal_ TB_GUARDED_BY(mu_) = 0;
  uint64_t next_decision_seq_ TB_GUARDED_BY(mu_) = 0;
  std::map<uint64_t, DomainState> domains_ TB_GUARDED_BY(mu_);
  std::vector<uint64_t> shard_completions_ TB_GUARDED_BY(mu_);
  std::vector<JournalServiceEvent> decisions_ TB_GUARDED_BY(mu_);
  RouterStats stats_ TB_GUARDED_BY(mu_);
  Status journal_status_ TB_GUARDED_BY(mu_);

  /// Last member: dispatchers must be joined before anything above dies.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace tabbench

#endif  // TABBENCH_SERVICE_SHARD_ROUTER_H_
