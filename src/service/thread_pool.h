#ifndef TABBENCH_SERVICE_THREAD_POOL_H_
#define TABBENCH_SERVICE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.h"

namespace tabbench {

/// Fixed-size worker pool over a bounded FIFO job queue.
///
/// - `Submit` enqueues a job or fails fast with `Unavailable` when the
///   queue is at capacity (admission control) or the pool is shutting down
///   — it never blocks the caller.
/// - `SubmitOrRun` is the backpressure policy for internal fan-outs: when
///   the queue is full the caller's own thread runs the job (caller-runs),
///   so bulk submitters throttle themselves instead of failing.
/// - Shutdown (explicit or via the destructor) stops admission, drains
///   every already-accepted job, and joins the workers.
class ThreadPool {
 public:
  struct Options {
    /// Worker threads; 0 means std::thread::hardware_concurrency().
    size_t workers = 0;
    /// Queue capacity; 0 means unbounded (no admission control).
    size_t max_queue = 0;
  };

  explicit ThreadPool(Options options);
  explicit ThreadPool(size_t workers) : ThreadPool(Options{workers, 0}) {}
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `job`; Unavailable when the queue is full or after Shutdown.
  Status Submit(std::function<void()> job);

  /// Enqueues `job`, or runs it on the calling thread when the queue is
  /// full. Fails only after Shutdown.
  Status SubmitOrRun(std::function<void()> job);

  /// Blocks until every job accepted so far has finished. The pool stays
  /// usable afterwards.
  void Wait();

  /// Stops accepting jobs, drains the queue, joins the workers. Idempotent.
  void Shutdown();

  size_t num_workers() const { return workers_.size(); }
  size_t queue_capacity() const { return max_queue_; }
  /// Jobs currently queued (excludes running ones).
  size_t queued() const;
  /// Jobs rejected by admission control since construction.
  uint64_t rejected() const;
  uint64_t completed() const;

 private:
  void WorkerLoop();

  const size_t max_queue_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for jobs/shutdown
  std::condition_variable idle_cv_;   // Wait() waits for pending_ == 0
  std::deque<std::function<void()>> queue_;
  size_t pending_ = 0;  // queued + running
  uint64_t rejected_ = 0;
  uint64_t completed_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

/// One-shot join point for a known number of events.
class Latch {
 public:
  explicit Latch(size_t count) : count_(count) {}

  void CountDown() {
    std::lock_guard<std::mutex> lock(mu_);
    if (--count_ == 0) cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return count_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  size_t count_;
};

/// Runs `fn(i)` for every i in [0, n) on the pool — with the caller's own
/// thread pitching in when the queue is full (SubmitOrRun) — and joins
/// before returning. A shared pool may carry unrelated work, so this joins
/// on its own Latch, never ThreadPool::Wait().
///
/// `fn` must not throw and must write only state owned by its index (the
/// fan-out/fan-in makes per-slot results race-free without locks). When the
/// pool refuses a job (shut down mid-run), `on_reject(i, status)` runs on
/// the calling thread instead of `fn(i)`. A nullptr pool degrades to a
/// plain sequential loop.
template <typename Fn, typename Reject>
void ParallelFor(ThreadPool* pool, size_t n, Fn&& fn, Reject&& on_reject) {
  if (pool == nullptr) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  Latch latch(n);
  for (size_t i = 0; i < n; ++i) {
    Status s = pool->SubmitOrRun([i, &fn, &latch] {
      fn(i);
      latch.CountDown();
    });
    if (!s.ok()) {
      on_reject(i, std::move(s));
      latch.CountDown();
    }
  }
  latch.Wait();
}

}  // namespace tabbench

#endif  // TABBENCH_SERVICE_THREAD_POOL_H_
