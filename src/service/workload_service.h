#ifndef TABBENCH_SERVICE_WORKLOAD_SERVICE_H_
#define TABBENCH_SERVICE_WORKLOAD_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/database.h"
#include "engine/index_build.h"
#include "service/circuit_breaker.h"
#include "service/session.h"
#include "util/thread_pool.h"
#include "service/watchdog.h"
#include "storage/buffer_pool.h"
#include "util/cancellation.h"
#include "util/mutex.h"
#include "util/retry.h"
#include "util/run_journal.h"
#include "util/thread_annotations.h"

namespace tabbench {

/// Handle to a service session. 0 is "no session".
using SessionId = uint64_t;
inline constexpr SessionId kNoSession = 0;

struct ServiceOptions {
  /// Worker threads; 0 means hardware concurrency.
  size_t workers = 0;
  /// Admission-control cap on jobs in flight (queued + running). Further
  /// submissions are rejected with Unavailable until load drains. 0 = no cap.
  size_t max_in_flight = 64;
  /// Defaults for sessions the service creates (both OpenSession and the
  /// ephemeral cold session a sessionless job runs on).
  SessionOptions session;
  /// Watchdog (service/watchdog.h) enforcing per-job wall-clock budgets
  /// *mid-attempt*: a job whose wall_timeout_seconds elapses — scaled by
  /// watchdog.grace_factor — is force-cancelled through a private exec
  /// token even inside an attempt, and its future holds Status::Timeout.
  /// Without it the budget was only checked between retry attempts, so one
  /// long attempt could overrun it unboundedly.
  WatchdogOptions watchdog;
  /// Admission circuit breaker (service/circuit_breaker.h), one state
  /// machine per fault domain — the job's session id; sessionless jobs
  /// share domain 0. Disabled by default (failure_threshold = 0).
  CircuitBreakerOptions breaker;
  /// When non-empty, every executed query's outcome (timing, flags,
  /// attempts, pool deltas) is appended + fsync'd to a run journal
  /// (util/run_journal.h) at this path: a durable audit trail of what the
  /// service actually served. Service journals carry no charge traces, so
  /// they are not resumable — checkpoint/resume is the runners' journal.
  std::string journal_path;
  /// Identity stamped into every journal record this service writes
  /// (JournalQueryRecord::shard_id), so a post-hoc audit over a sharded
  /// deployment's journals can attribute each outcome to the worker shard
  /// that served it. 0 (default) marks an unsharded service.
  uint32_t shard_id = 0;
};

/// Per-job execution knobs.
struct JobOptions {
  /// Simulated-seconds deadline folded into the paper's 30-minute timeout
  /// as min(timeout, deadline); a trip is reported as a timed-out result,
  /// the `t_out` convention. <= 0 uses the session/database default.
  double deadline_seconds = -1.0;
  /// Cooperative cancellation; polled at every executor safe point. A
  /// cancelled job's future holds Status::Cancelled.
  CancellationToken cancel;
  /// Session to run on. kNoSession runs on a fresh cold private session
  /// (deterministic in isolation); a real session id gives warm-cache
  /// continuity, with the service serializing that session's jobs in
  /// submission order.
  SessionId session = kNoSession;
  /// Transient-error retry (Status::IsTransient). Between attempts the
  /// worker sleeps the policy's backoff in *wall-clock* time via
  /// SleepWithCancellation, so a cancellation or the wall budget below
  /// interrupts the sleep promptly. Default: no retry.
  RetryPolicy retry;
  /// Wall-clock budget for the whole job, including backoff sleeps; a
  /// backoff that would outlive it aborts the job with Status::Timeout
  /// (this is a *real-time* budget, distinct from the simulated-seconds
  /// deadline above). <= 0 disables.
  double wall_timeout_seconds = -1.0;
};

/// Service-level counters (monotone since construction).
struct ServiceStats {
  uint64_t submitted = 0;  // accepted jobs (queries count 1, workloads 1)
  uint64_t completed = 0;
  uint64_t rejected = 0;   // admission-control rejections
  uint64_t cancelled = 0;  // jobs that finished with Status::Cancelled
  uint64_t query_timeouts = 0;  // executed queries reported timed_out
  uint64_t retries = 0;    // extra execution attempts after transient errors
  /// Workload queries whose retries were exhausted and that were isolated
  /// as censored placeholder results (each also counts a query_timeout).
  uint64_t failures = 0;
  /// Submissions bounced because their fault domain's breaker was open
  /// (each also counts in `rejected`).
  uint64_t breaker_rejections = 0;
  /// closed/half-open -> open breaker transitions.
  uint64_t breaker_opens = 0;
  /// Jobs the watchdog force-cancelled for overrunning their wall budget
  /// mid-attempt.
  uint64_t watchdog_cancels = 0;
};

/// The concurrent query-serving front of the engine: a thread-pool-backed
/// service that accepts single queries or whole workloads against one
/// Database and hands back futures.
///
/// Responsibilities:
///  - scheduling: a fixed worker pool; per-session FIFO strands so one
///    session's jobs never interleave (its pool view stays deterministic)
///    while different sessions run fully in parallel;
///  - deadlines: per-job simulated-seconds deadlines folded into the
///    paper's per-query timeout;
///  - cancellation: cooperative tokens threaded into ExecContext;
///  - admission control: an in-flight cap with graceful Unavailable
///    rejection instead of unbounded queueing.
///
/// The database must stay read-only (no DDL / ApplyConfiguration / inserts)
/// while jobs are in flight; the service itself only ever executes queries.
class WorkloadService {
 public:
  explicit WorkloadService(const Database* db, ServiceOptions options = {});
  ~WorkloadService();

  WorkloadService(const WorkloadService&) = delete;
  WorkloadService& operator=(const WorkloadService&) = delete;

  /// Submits one query. The returned future holds the QueryResult, or
  /// Unavailable (rejected / shutting down), Cancelled, or a genuine
  /// execution error. Timeouts are successful results with timed_out set.
  /// With JobOptions::retry, transient errors are retried with backoff and
  /// the future holds the *final* attempt's error if they never clear.
  std::future<Result<QueryResult>> SubmitQuery(std::string sql,
                                               JobOptions options = {});

  /// Submits a whole workload as one job: the queries run back-to-back on
  /// one session (warm cache across queries, like the sequential runner),
  /// producing per-query results in workload order. A query whose retries
  /// are exhausted does not abort the workload: it is isolated as a
  /// censored placeholder result (timed_out + failed, priced at the
  /// effective timeout — the paper's t_out convention) and the remaining
  /// queries still run. Only cancellation and the wall budget abort.
  std::future<Result<std::vector<QueryResult>>> SubmitWorkload(
      std::vector<std::string> sql, JobOptions options = {});

  /// Submits a *shadow* index build (engine/index_build.h) as a background
  /// job: the full scan + sort cost is paid into a private session's pool
  /// and clock, the tree is built in a private store and discarded — the
  /// database itself stays read-only, so builds coexist with query traffic.
  /// The job runs under the same admission control, breaker, watchdog, and
  /// outcome journal as queries; the result's fingerprint is deterministic,
  /// which is how the sharded chaos audit proves a build replayed after a
  /// shard kill produced the identical index. Cancellation and the wall
  /// budget abort via the build's cooperative polls.
  std::future<Result<ShadowIndexBuildResult>> SubmitIndexBuild(
      IndexDef def, JobOptions options = {});

  /// Creates a session with its own buffer-pool view and simulated clock.
  SessionId OpenSession(SessionOptions options) TB_EXCLUDES(mu_);
  SessionId OpenSession() { return OpenSession(options_.session); }

  /// Closes a session. Jobs already accepted for it still run; the session
  /// is destroyed once they drain. New submissions to it are rejected.
  Status CloseSession(SessionId id) TB_EXCLUDES(mu_);

  /// Accumulated simulated seconds of a session's queries, or NotFound.
  Result<double> SessionClock(SessionId id) const TB_EXCLUDES(mu_);

  ServiceStats stats() const TB_EXCLUDES(mu_);
  size_t num_workers() const { return pool_.num_workers(); }

  /// Jobs currently accepted but not finished (queued on strands or the
  /// pool + running) — the queue-depth signal the shard health machine and
  /// the degradation ladder read.
  uint64_t in_flight() const TB_EXCLUDES(mu_);

  /// Applies a parallelism cap to every live session (and sessions opened
  /// later, until the cap is lifted with 0): degradation-ladder step 1.
  /// Does not touch ephemeral sessionless jobs, which never parallelize
  /// beyond ServiceOptions::session anyway.
  void CapSessionParallelism(size_t cap) TB_EXCLUDES(mu_);

  /// Chaos hook: occupies one worker with `task`, bypassing admission
  /// control, the breaker, and the journal. The overload harness uses it to
  /// wedge a shard's workers (a "stalled shard") so queued jobs pile up
  /// behind it; `task` must be cancellation-aware or the service cannot
  /// drain on Shutdown. Unavailable after Shutdown.
  Status SubmitRaw(std::function<void()> task) TB_EXCLUDES(mu_);

  /// OK while the outcome journal (ServiceOptions::journal_path) is healthy
  /// or disabled; otherwise the first error that hit it (creation failure,
  /// failed append). Journal errors never fail queries — the service keeps
  /// serving and surfaces the problem here.
  Status journal_status() const TB_EXCLUDES(mu_);

  /// Stops accepting work, drains accepted jobs, joins workers. Idempotent;
  /// also run by the destructor.
  void Shutdown() TB_EXCLUDES(mu_);

 private:
  struct SessionState {
    explicit SessionState(const Database* db, SessionOptions opts)
        : session(db, opts) {}
    Session session;
    std::deque<std::function<void()>> jobs;  // pending, FIFO
    bool running = false;  // a worker is draining this strand
    bool closing = false;  // destroy once drained
  };

  /// Admission check + accounting; returns false (and bumps `rejected`)
  /// when the job must be turned away.
  bool AdmitLocked() TB_REQUIRES(mu_);
  /// Enqueues `job` on the session's strand (scheduling a drain if idle)
  /// or directly on the pool for sessionless jobs. Returns Unavailable on
  /// admission rejection, NotFound for a dead session.
  Status Dispatch(SessionId id, std::function<void()> job) TB_EXCLUDES(mu_);
  /// Runs a session's pending jobs in FIFO order until its queue empties.
  void DrainSession(SessionId id) TB_EXCLUDES(mu_);
  /// Job epilogue: feeds the breaker (success / failure / abandoned for
  /// user cancels), then updates counters. `status` is the job's final
  /// status *after* any watchdog Cancelled->Timeout remap.
  void FinishJob(SessionId domain, const Status& status, size_t timeouts,
                 uint64_t retries, uint64_t failures, bool watchdog_fired)
      TB_EXCLUDES(mu_);
  /// Appends one executed query's outcome to the service journal (no-op
  /// when journaling is off; append errors land in journal_status()).
  void JournalOutcome(double seconds, bool timed_out, bool failed,
                      uint32_t attempts, const BufferPoolStats& before,
                      const BufferPoolStats& after) TB_EXCLUDES(mu_);

  const Database* db_;
  /// Immutable after construction; read from worker threads bare.
  const ServiceOptions options_;
  CircuitBreaker breaker_;
  Watchdog watchdog_;
  /// Created once in the constructor, then only read (the writer itself is
  /// internally synchronized); null when journaling is off or creation
  /// failed.
  std::unique_ptr<RunJournalWriter> journal_;
  std::atomic<uint32_t> journal_index_{0};
  ThreadPool pool_;
  /// Per-job ordinal seeding the job's FaultScope, so every job draws a
  /// distinct deterministic fault schedule regardless of which worker or
  /// session runs it.
  std::atomic<uint64_t> job_ordinal_{1};

  /// Outermost lock of the service: Dispatch calls into the breaker and
  /// the pool while holding it, never the reverse. The declared order is
  /// checked two ways: Clang's -Wthread-safety build, and tools/analyze's
  /// lock-order pass, which unions these edges with the acquisition edges
  /// it observes and fails CI on any cycle.
  mutable Mutex mu_
      TB_ACQUIRED_BEFORE("CircuitBreaker::mu_", "ThreadPool::mu_",
                         "Watchdog::mu_");
  bool shutdown_ TB_GUARDED_BY(mu_) = false;
  uint64_t in_flight_ TB_GUARDED_BY(mu_) = 0;
  SessionId next_session_ TB_GUARDED_BY(mu_) = 1;
  /// Current ladder-step-1 cap (0 = none), re-applied to sessions opened
  /// while it is in force.
  size_t session_parallelism_cap_ TB_GUARDED_BY(mu_) = 0;
  /// The map (membership, strand queues, flags) is guarded by mu_. The
  /// Session object *inside* a SessionState is deliberately not: exactly one
  /// drain job touches it at a time (the strand invariant), outside mu_.
  std::map<SessionId, std::unique_ptr<SessionState>> sessions_
      TB_GUARDED_BY(mu_);
  ServiceStats stats_ TB_GUARDED_BY(mu_);
  Status journal_status_ TB_GUARDED_BY(mu_);
};

}  // namespace tabbench

#endif  // TABBENCH_SERVICE_WORKLOAD_SERVICE_H_
