#include "service/session.h"

#include <algorithm>

#include "util/fault_injection.h"

namespace tabbench {

Session::Session(const Database* db, SessionOptions options)
    : db_(db),
      options_(options),
      pool_(options.pool_pages > 0 ? options.pool_pages
                                   : db->options().buffer_pool_pages) {}

Result<QueryResult> Session::Execute(const std::string& sql,
                                     double deadline_seconds,
                                     CancellationToken cancel) {
  // No FaultScope is opened here: the retry loop that owns this call
  // (WorkloadService) opens one spanning all attempts, so fire-on-Nth
  // schedules converge across retries instead of re-firing every attempt.
  TB_FAULT_POINT("service.session_execute");
  CostParams params = db_->options().cost;
  double deadline = deadline_seconds > 0.0 ? deadline_seconds
                                           : options_.deadline_seconds;
  if (deadline > 0.0) {
    params.timeout_seconds = std::min(params.timeout_seconds, deadline);
  }
  ExecContext ctx = db_->MakeSessionContext(&pool_, params);
  ctx.set_cancellation_token(std::move(cancel));
  Result<QueryResult> res = [&] {
    if (options_.intra_query_parallelism > 0) {
      const size_t cap = parallelism_cap_.load(std::memory_order_relaxed);
      vec::VecExecOptions vopts;
      vopts.pool = options_.intra_query_pool;
      vopts.max_parallelism =
          cap > 0 ? std::min(options_.intra_query_parallelism, cap)
                  : options_.intra_query_parallelism;
      return db_->RunWithContextVectorized(sql, &ctx, vopts);
    }
    return db_->RunWithContext(sql, &ctx);
  }();
  if (res.ok()) {
    queries_run_.fetch_add(1, std::memory_order_relaxed);
    clock_seconds_.store(clock_seconds() + res->sim_seconds,
                         std::memory_order_relaxed);  // single writer
    if (res->timed_out) timeouts_.fetch_add(1, std::memory_order_relaxed);
  }
  return res;
}

}  // namespace tabbench
