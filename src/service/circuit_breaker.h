#ifndef TABBENCH_SERVICE_CIRCUIT_BREAKER_H_
#define TABBENCH_SERVICE_CIRCUIT_BREAKER_H_

#include <chrono>
#include <cstdint>
#include <map>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace tabbench {

struct CircuitBreakerOptions {
  /// Consecutive job failures that trip a domain's breaker open. 0 disables
  /// the breaker entirely (every Allow passes) — the default, so services
  /// that never opted in keep their exact admission behavior.
  int failure_threshold = 0;
  /// Cooldown an open domain serves before probing: Allow rejects until
  /// this much wall time has passed since the trip, then the domain turns
  /// half-open.
  double open_seconds = 1.0;
  /// Consecutive probe successes a half-open domain needs to close. Also
  /// caps how many probes may be in flight at once, so a recovering
  /// dependency is not stampeded.
  int half_open_probes = 1;
};

/// Admission circuit breaker, one independent state machine per fault
/// domain (the service keys domains by session id; sessionless jobs share
/// domain 0).
///
///   closed ──N consecutive failures──▶ open
///   open ──cooldown elapsed, next Allow──▶ half-open
///   half-open ──M probe successes──▶ closed
///   half-open ──any probe failure──▶ open (cooldown restarts)
///
/// The point is failure *containment* under the fault-injection harness: a
/// session whose queries keep exhausting their retries stops consuming
/// worker time and retry backoff on arrival — its submissions bounce
/// immediately with Unavailable — while healthy sessions' domains stay
/// closed and unaffected. Internally synchronized; safe from any thread.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(CircuitBreakerOptions options = {});

  /// Admission check. False means reject now (domain open, or half-open
  /// with its probe quota in flight). May transition open -> half-open once
  /// the cooldown has elapsed; a true from a half-open domain claims a
  /// probe slot that RecordSuccess/RecordFailure/Abandon releases.
  bool Allow(uint64_t domain) TB_EXCLUDES(mu_);

  /// Releases an Allow that never became a job outcome (the job was turned
  /// away later on the admission path, or finished as user-cancelled —
  /// cancellation says nothing about the domain's health).
  void Abandon(uint64_t domain) TB_EXCLUDES(mu_);

  /// Records a job failure. Returns true iff this call tripped the domain
  /// open (from closed or half-open) — the caller's cue to count an "open"
  /// event.
  bool RecordFailure(uint64_t domain) TB_EXCLUDES(mu_);

  void RecordSuccess(uint64_t domain) TB_EXCLUDES(mu_);

  State state(uint64_t domain) const TB_EXCLUDES(mu_);

  bool enabled() const { return options_.failure_threshold > 0; }

 private:
  struct Domain {
    State state = State::kClosed;
    int consecutive_failures = 0;
    int probe_successes = 0;
    int probes_in_flight = 0;
    std::chrono::steady_clock::time_point opened_at;
  };

  const CircuitBreakerOptions options_;
  /// Leaf lock: the breaker calls nothing that takes another mutex, so it
  /// is always acquired after the service's mu_ (see workload_service.h).
  mutable Mutex mu_ TB_ACQUIRED_AFTER("WorkloadService::mu_");
  std::map<uint64_t, Domain> domains_ TB_GUARDED_BY(mu_);
};

}  // namespace tabbench

#endif  // TABBENCH_SERVICE_CIRCUIT_BREAKER_H_
