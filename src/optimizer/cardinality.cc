#include "optimizer/cardinality.h"

#include <algorithm>
#include <cmath>

namespace tabbench {

double CardinalityEstimator::TableRows(const std::string& table) const {
  const TableStats* ts = view_.stats->FindTable(table);
  if (ts == nullptr) return 1.0;
  return std::max<double>(1.0, static_cast<double>(ts->row_count));
}

double CardinalityEstimator::TablePages(const std::string& table) const {
  const TableStats* ts = view_.stats->FindTable(table);
  if (ts == nullptr) return 1.0;
  return std::max<double>(1.0, static_cast<double>(ts->pages));
}

double CardinalityEstimator::TableRowBytes(const std::string& table) const {
  const TableStats* ts = view_.stats->FindTable(table);
  if (ts == nullptr || ts->avg_row_bytes <= 0.0) return 64.0;
  return ts->avg_row_bytes;
}

double CardinalityEstimator::Distinct(const std::string& table,
                                      const std::string& column) const {
  const ColumnStats* cs = view_.stats->FindColumn(table, column);
  if (cs == nullptr || cs->num_distinct == 0) return 1.0;
  return static_cast<double>(cs->num_distinct);
}

double CardinalityEstimator::EqSelectivity(const std::string& table,
                                           const std::string& column,
                                           const Value& literal) const {
  const ColumnStats* cs = view_.stats->FindColumn(table, column);
  if (cs == nullptr) return 0.1;
  double sel = cs->EstimateEqSelectivity(literal);
  return std::clamp(sel, 0.0, 1.0);
}

double CardinalityEstimator::InFreqSelectivity(const std::string& table,
                                               const std::string& column,
                                               char cmp, int64_t k) const {
  const ColumnStats* cs = view_.stats->FindColumn(table, column);
  if (cs == nullptr) return 0.5;
  double sel = (cmp == '<') ? cs->FracRowsValueFreqLess(static_cast<uint64_t>(k))
                            : cs->FracRowsValueFreqEq(static_cast<uint64_t>(k));
  return std::clamp(sel, 0.0, 1.0);
}

double CardinalityEstimator::JoinSelectivity(const std::string& t1,
                                             const std::string& c1,
                                             const std::string& t2,
                                             const std::string& c2) const {
  double d1 = Distinct(t1, c1);
  double d2 = Distinct(t2, c2);
  return 1.0 / std::max({d1, d2, 1.0});
}

double CardinalityEstimator::GroupCount(
    const std::vector<BoundColumn>& group_by, double input_rows) const {
  if (group_by.empty()) return 1.0;
  double prod = 1.0;
  for (const auto& g : group_by) {
    prod *= Distinct(g.table, g.column);
    if (prod > input_rows) break;
  }
  // Damping: with several group columns the product overshoots badly; cap
  // by input rows (every group needs a witness row).
  return std::max(1.0, std::min(prod, input_rows));
}

}  // namespace tabbench
