#ifndef TABBENCH_OPTIMIZER_COST_MODEL_H_
#define TABBENCH_OPTIMIZER_COST_MODEL_H_

#include <algorithm>

#include "exec/exec_context.h"
#include "optimizer/config_view.h"

namespace tabbench {

/// Analytic mirror of the executor's charges. Estimated costs E(q, C) come
/// from these formulas over statistics; actual costs A(q, C) come from the
/// executor's per-page/per-tuple charging. The two diverge exactly where
/// real optimizers diverge from reality — the model assumes every page
/// access is an I/O (no buffer-pool reuse) and uniform value distributions —
/// and that divergence is a *feature*: Section 5 of the paper studies it.
class CostModel {
 public:
  explicit CostModel(const CostParams& p) : p_(p) {}

  /// Full scan of a heap: all pages + per-row CPU.
  double SeqScan(double pages, double rows) const {
    return pages * p_.page_io_seconds + rows * p_.cpu_tuple_seconds;
  }

  /// Full index-only walk of the leaf level.
  double IndexOnlyScan(const PhysicalIndex& idx) const {
    return (idx.height - 1 + idx.leaf_pages) * p_.page_io_seconds +
           idx.entries * p_.cpu_tuple_seconds;
  }

  /// One equality probe returning `matching` entries, plus heap fetches for
  /// each unless index-only. Probes are random I/O (seek-priced, unscaled).
  double IndexProbe(const PhysicalIndex& idx, double matching,
                    bool index_only) const {
    double entries_per_leaf = std::max(1.0, idx.entries / idx.leaf_pages);
    double leaf_io = std::max(1.0, matching / entries_per_leaf);
    double cost = (idx.height + leaf_io - 1) * p_.random_io_seconds +
                  matching * p_.cpu_tuple_seconds;
    if (!index_only) cost += HeapFetch(idx, matching);
    return cost;
  }

  /// Heap page I/O to fetch `matching` rows through the index, scaled by the
  /// measured (or assumed) clustering factor. Random I/O.
  double HeapFetch(const PhysicalIndex& idx, double matching) const {
    double switches_per_entry =
        idx.entries > 0 ? idx.clustering_factor / idx.entries : 1.0;
    switches_per_entry = std::clamp(switches_per_entry, 0.0, 1.0);
    return matching * switches_per_entry * p_.random_io_seconds +
           matching * p_.cpu_tuple_seconds;
  }

  /// Hash-table build over `rows` rows of `row_bytes` each, including spill.
  double HashBuild(double rows, double row_bytes) const {
    return rows * (p_.cpu_tuple_seconds + p_.cpu_hash_seconds) +
           Spill(rows * (row_bytes + 24.0));
  }

  /// Probe-side charges of a hash join producing `out_rows`.
  double HashProbe(double probe_rows, double out_rows, bool spilled,
                   double probe_row_bytes) const {
    double cost = probe_rows * p_.cpu_hash_seconds +
                  out_rows * p_.cpu_tuple_seconds;
    if (spilled) {
      cost += 2.0 * (probe_rows * probe_row_bytes / kPageSize) *
              p_.page_io_seconds;
    }
    return cost;
  }

  /// Grouped aggregation over `in_rows` input rows into `groups` groups,
  /// with `distinct_values` total per-group distinct-set insertions.
  double Aggregate(double in_rows, double groups, double key_bytes,
                   double distinct_values) const {
    return in_rows * (p_.cpu_tuple_seconds + p_.cpu_hash_seconds) +
           distinct_values * p_.cpu_hash_seconds +
           Spill(groups * (key_bytes + 32.0) + distinct_values * 24.0) +
           groups * p_.cpu_tuple_seconds;
  }

  /// Extra I/O when `bytes` of hash state exceed work_mem (write + re-read).
  double Spill(double bytes) const {
    double pages = bytes / static_cast<double>(kPageSize);
    double over = pages - static_cast<double>(p_.work_mem_pages);
    if (over <= 0) return 0.0;
    return 2.0 * over * p_.page_io_seconds;
  }

  /// True when a hash table over `rows`x`row_bytes` exceeds work_mem.
  bool WouldSpill(double rows, double row_bytes) const {
    return rows * (row_bytes + 24.0) >
           static_cast<double>(p_.work_mem_pages) *
               static_cast<double>(kPageSize);
  }

  const CostParams& params() const { return p_; }

 private:
  CostParams p_;
};

}  // namespace tabbench

#endif  // TABBENCH_OPTIMIZER_COST_MODEL_H_
