#include "optimizer/whatif.h"

#include <algorithm>
#include <cmath>

#include "storage/page_store.h"

namespace tabbench {

namespace {

double ColumnWidth(const Catalog& catalog, const std::string& table,
                   const std::string& column) {
  const TableDef* def = catalog.FindTable(table);
  if (def == nullptr) return 8.0;
  int ci = def->ColumnIndex(column);
  if (ci < 0) return 8.0;
  return static_cast<double>(def->columns[static_cast<size_t>(ci)].avg_width);
}

double ColumnNdv(const DatabaseStats& stats, const std::string& table,
                 const std::string& column) {
  const ColumnStats* cs = stats.FindColumn(table, column);
  if (cs == nullptr || cs->num_distinct == 0) return 1.0;
  return static_cast<double>(cs->num_distinct);
}

double ColumnNdvForWhatIf(const DatabaseStats& stats,
                          const std::string& table,
                          const std::string& column) {
  return ColumnNdv(stats, table, column);
}

}  // namespace

double EstimateIndexPages(const IndexDef& def, const Catalog& catalog,
                          const DatabaseStats& stats, double leaf_fill,
                          double target_rows) {
  double key_bytes = 0;
  for (const auto& c : def.columns) {
    key_bytes += ColumnWidth(catalog, def.target, c);
  }
  double rows = target_rows;
  if (rows <= 0) {
    const TableStats* ts = stats.FindTable(def.target);
    rows = ts == nullptr ? 1.0 : static_cast<double>(ts->row_count);
  }
  double entry_bytes = std::max(12.0, key_bytes + 8.0);
  double fanout =
      std::max(8.0, (static_cast<double>(kPageSize) - 64.0) / entry_bytes) *
      leaf_fill;
  double leaf_pages = std::max(1.0, rows / fanout);
  // Interior levels add ~1/fanout overhead per level; geometric sum.
  return leaf_pages * (1.0 + 2.0 / fanout) + 1.0;
}

PhysicalIndex DeriveHypotheticalIndex(const IndexDef& def,
                                      const Catalog& catalog,
                                      const DatabaseStats& stats,
                                      const HypotheticalRules& rules,
                                      double target_rows) {
  PhysicalIndex out;
  out.def = def;
  out.physical_name = "";
  out.hypothetical = true;
  out.allow_index_only = rules.credit_index_only;

  double rows = target_rows;
  if (rows <= 0) {
    const TableStats* ts = stats.FindTable(def.target);
    rows = ts == nullptr ? 1.0 : static_cast<double>(ts->row_count);
  }
  rows = std::max(1.0, rows);
  out.entries = rows;

  double key_bytes = 0;
  for (const auto& c : def.columns) {
    key_bytes += ColumnWidth(catalog, def.target, c);
  }
  double entry_bytes = std::max(12.0, key_bytes + 8.0);
  double fanout =
      std::max(8.0, (static_cast<double>(kPageSize) - 64.0) / entry_bytes) *
      rules.leaf_fill;
  out.leaf_pages = std::max(1.0, rows / fanout);

  double height = 1.0;
  double level = out.leaf_pages;
  while (level > 1.0) {
    level /= std::max(8.0, fanout);
    height += 1.0;
  }
  out.height = height;

  if (rules.composite_ndv_product) {
    double prod = 1.0;
    for (const auto& c : def.columns) {
      prod *= ColumnNdv(stats, def.target, c);
      if (prod > rows) break;
    }
    out.distinct_keys = std::min(prod, rows);
  } else {
    // Conservative: credit only the leading column's distinctness.
    out.distinct_keys =
        def.columns.empty()
            ? 1.0
            : std::min(ColumnNdv(stats, def.target, def.columns[0]), rows);
  }
  out.distinct_keys = std::max(1.0, out.distinct_keys);

  out.clustering_factor = rows * rules.clustering_pessimism;
  return out;
}

ViewSizeEstimate EstimateViewSize(const ViewDef& def, const Catalog& catalog,
                                  const DatabaseStats& stats) {
  ViewSizeEstimate out;
  double rows = 1.0;
  for (const auto& t : def.tables) {
    const TableStats* ts = stats.FindTable(t);
    rows *= ts == nullptr ? 1.0 : std::max<double>(1.0, ts->row_count);
  }
  for (const auto& j : def.joins) {
    double d1 = ColumnNdv(stats, j.left_table, j.left_column);
    double d2 = ColumnNdv(stats, j.right_table, j.right_column);
    rows /= std::max({d1, d2, 1.0});
  }
  out.rows = std::max(1.0, rows);
  double row_bytes = 0;
  for (const auto& pc : def.projection) {
    row_bytes += ColumnWidth(catalog, pc.table, pc.column);
  }
  row_bytes = std::max(16.0, row_bytes + 2.0 * def.projection.size());
  out.pages =
      std::max(1.0, out.rows * row_bytes / static_cast<double>(kPageSize));
  return out;
}

DatabaseStats DegradeToUniform(const DatabaseStats& stats) {
  DatabaseStats out = stats;
  for (auto& [tname, ts] : out.tables) {
    for (auto& [cname, cs] : ts.columns) {
      cs.mcvs.clear();
      cs.histogram = EquiDepthHistogram();
    }
  }
  return out;
}

Result<ConfigView> MakeHypotheticalView(const Configuration& config,
                                        const ConfigView& base,
                                        const HypotheticalRules& rules) {
  if (base.catalog == nullptr || base.stats == nullptr) {
    return Status::InvalidArgument("base view missing catalog or stats");
  }
  ConfigView out;
  out.catalog = base.catalog;
  out.stats = base.stats;
  out.params = base.params;

  // Primary-key indexes exist in every configuration; inherit them (with
  // their measured stats) from the current built view.
  for (const auto& idx : base.indexes) {
    if (idx.def.is_primary) out.indexes.push_back(idx);
  }

  // Hypothetical views first, so hypothetical indexes over views can size
  // themselves from the view's estimated row count.
  for (const auto& vd : config.views) {
    ViewSizeEstimate est = EstimateViewSize(vd, *base.catalog, *base.stats);
    PhysicalView pv;
    pv.def = vd;
    pv.physical_name = "";
    pv.rows = est.rows;
    pv.pages = est.pages;
    pv.hypothetical = true;
    out.views.push_back(std::move(pv));
  }

  for (const auto& def : config.indexes) {
    if (def.is_primary) continue;  // already inherited
    const PhysicalView* pv = out.FindView(def.target);
    if (pv == nullptr) {
      out.indexes.push_back(DeriveHypotheticalIndex(
          def, *base.catalog, *base.stats, rules, /*target_rows=*/-1.0));
      continue;
    }
    // Index over a hypothetical view: translate the view columns back to
    // their base-table columns so widths and NDVs come from real stats.
    IndexDef base_equiv = def;
    PhysicalIndex pi;
    {
      std::vector<double> ndvs;
      double key_bytes = 0.0;
      for (auto& c : base_equiv.columns) {
        for (const auto& pc : pv->def.projection) {
          if (pc.view_name != c) continue;
          ndvs.push_back(ColumnNdvForWhatIf(*base.stats, pc.table, pc.column));
          key_bytes += ColumnWidth(*base.catalog, pc.table, pc.column);
          break;
        }
      }
      pi.def = def;
      pi.hypothetical = true;
      pi.allow_index_only = rules.credit_index_only;
      pi.entries = std::max(1.0, pv->rows);
      double entry_bytes = std::max(12.0, key_bytes + 8.0);
      double fanout = std::max(
          8.0, (static_cast<double>(kPageSize) - 64.0) / entry_bytes) *
          rules.leaf_fill;
      pi.leaf_pages = std::max(1.0, pi.entries / fanout);
      double height = 1.0;
      for (double level = pi.leaf_pages; level > 1.0;
           level /= std::max(8.0, fanout)) {
        height += 1.0;
      }
      pi.height = height;
      if (rules.composite_ndv_product) {
        double prod = 1.0;
        for (double d : ndvs) {
          prod *= d;
          if (prod > pi.entries) break;
        }
        pi.distinct_keys = std::max(1.0, std::min(prod, pi.entries));
      } else {
        pi.distinct_keys =
            ndvs.empty() ? 1.0
                         : std::max(1.0, std::min(ndvs.front(), pi.entries));
      }
      pi.clustering_factor = pi.entries * rules.clustering_pessimism;
    }
    out.indexes.push_back(std::move(pi));
  }
  return out;
}

}  // namespace tabbench
