#ifndef TABBENCH_OPTIMIZER_WHATIF_H_
#define TABBENCH_OPTIMIZER_WHATIF_H_

#include "catalog/catalog.h"
#include "catalog/configuration.h"
#include "optimizer/config_view.h"
#include "util/status.h"

namespace tabbench {

/// How hypothetical-index statistics are derived from base-table stats.
/// These knobs model the conservatism of real what-if implementations that
/// Section 5 of the paper identifies: a what-if call cannot measure the
/// index it has not built, so H(q, C_h, C_a) is systematically more
/// pessimistic than E(q, C_h) evaluated in the built target configuration.
struct HypotheticalRules {
  /// Assumed heap-page switch rate per fetched entry for an unbuilt index
  /// (1.0 = every fetch is a fresh page — worst case). Built indexes carry
  /// their *measured* clustering factor, typically much lower.
  double clustering_pessimism = 1.0;
  /// Assumed leaf fill factor when sizing an unbuilt index (built trees are
  /// bulk-loaded at ~0.9).
  double leaf_fill = 0.67;
  /// Whether hypothetical indexes are credited with covering (index-only)
  /// plans. Advisor profile B models a what-if that cannot.
  bool credit_index_only = true;
  /// Composite-key distinct estimate: when false, use only the leading
  /// column's NDV (conservative: overestimates rows per probe); when true,
  /// use the capped product of column NDVs.
  bool composite_ndv_product = false;
  /// When true, hypothetical-mode cost estimation ignores MCVs and
  /// histograms and falls back to uniform value densities (rows / NDV) —
  /// the dominant what-if simplification of the paper's era. Harmless on
  /// uniform data; badly misleading on Zipf-skewed data, which is the
  /// mechanism behind the paper's Fig 8 (skewed) vs Fig 9 (uniform)
  /// recommender-quality contrast.
  bool uniform_value_assumption = false;
};

/// Statistics with value-distribution detail removed (no MCVs, no
/// histograms): equality selectivities degrade to rows/NDV. Used to model
/// `uniform_value_assumption` (the caller owns the copy).
DatabaseStats DegradeToUniform(const DatabaseStats& stats);

/// Builds a planner view of `config` *without building anything*: every
/// secondary index and view in `config` appears with statistics derived
/// from `stats` under `rules`. Primary-key indexes are inherited from
/// `base`, the view of the currently-built configuration (they exist in
/// every configuration).
Result<ConfigView> MakeHypotheticalView(const Configuration& config,
                                        const ConfigView& base,
                                        const HypotheticalRules& rules);

/// Derived statistics for one unbuilt index (exposed for tests/advisors).
PhysicalIndex DeriveHypotheticalIndex(const IndexDef& def,
                                      const Catalog& catalog,
                                      const DatabaseStats& stats,
                                      const HypotheticalRules& rules,
                                      double target_rows);

/// Estimated size, in pages, of an unbuilt index (the advisor's budget
/// accounting).
double EstimateIndexPages(const IndexDef& def, const Catalog& catalog,
                          const DatabaseStats& stats, double leaf_fill,
                          double target_rows);

/// Estimated rows and pages of an unbuilt view.
struct ViewSizeEstimate {
  double rows = 0;
  double pages = 1;
};
ViewSizeEstimate EstimateViewSize(const ViewDef& def, const Catalog& catalog,
                                  const DatabaseStats& stats);

}  // namespace tabbench

#endif  // TABBENCH_OPTIMIZER_WHATIF_H_
