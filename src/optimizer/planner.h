#ifndef TABBENCH_OPTIMIZER_PLANNER_H_
#define TABBENCH_OPTIMIZER_PLANNER_H_

#include "exec/plan.h"
#include "optimizer/config_view.h"
#include "sql/binder.h"
#include "util/status.h"

namespace tabbench {

/// Cost-based planning of a bound query against a configuration.
///
/// Search space: for every partition of the FROM occurrences into units
/// (base relations, or materialized views matched to a subset of them),
/// every left-deep order of the units, with per-unit access paths
/// (sequential scan, index seek on literal prefixes, covering index-only
/// scan) and per-step join methods (hash join, index nested-loop join).
/// IN-frequency subqueries are planned as one materialization each, either
/// a heap scan or an index-only walk of an index led by the subquery
/// column.
///
/// Returns the cheapest plan found together with its estimated cost
/// E(q, C) in `PhysicalPlan::est_cost` (simulated seconds).
Result<PhysicalPlan> PlanQuery(const BoundQuery& q, const ConfigView& view);

/// Convenience: only the estimated cost E(q, C).
Result<double> EstimateCost(const BoundQuery& q, const ConfigView& view);

}  // namespace tabbench

#endif  // TABBENCH_OPTIMIZER_PLANNER_H_
