#include "optimizer/planner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>

#include "optimizer/cardinality.h"
#include "optimizer/cost_model.h"

namespace tabbench {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// A literal filter bound to an exposed slot of a unit.
struct FilterBinding {
  SlotRef slot;
  std::string object_column;  // column name within the unit's object
  Value literal;
  double selectivity = 1.0;
};

/// An IN-frequency predicate bound to an exposed slot of a unit.
struct InBinding {
  SlotRef slot;
  int set_id = -1;
  double selectivity = 1.0;
};

/// A scannable unit: one base relation occurrence, or a materialized view
/// standing in for several joined occurrences.
struct UnitDesc {
  std::vector<int> rels;
  std::string object;
  bool is_view = false;
  const PhysicalView* view = nullptr;
  double base_rows = 0;
  double pages = 1;
  double row_bytes = 64;
  /// Exposed columns in object order; layout[i] is the slot the i-th
  /// object column carries.
  std::vector<SlotRef> layout;
  std::vector<std::string> col_names;  // object column names, same order
  std::vector<FilterBinding> filters;
  std::vector<InBinding> in_preds;
  /// Join predicates entirely inside this unit that the physical object
  /// does not pre-apply (e.g. r.a = r.b on one occurrence, or a query join
  /// not among a matched view's join conditions).
  std::vector<std::pair<SlotRef, SlotRef>> residual_joins;
  std::vector<SlotRef> needed;
  double filtered_rows = 0;

  int ColumnPos(const std::string& name) const {
    for (size_t i = 0; i < col_names.size(); ++i) {
      if (col_names[i] == name) return static_cast<int>(i);
    }
    return -1;
  }
  bool Exposes(const SlotRef& s) const {
    for (const auto& l : layout) {
      if (l == s) return true;
    }
    return false;
  }
};

/// A partially-built plan over a set of units.
struct SubPlan {
  std::unique_ptr<PlanNode> node;
  double rows = 0;
  double cost = kInf;
  double row_bytes = 64;
  std::vector<int> rels;
};

struct ViewMatch {
  const PhysicalView* view = nullptr;
  /// rel occurrence assigned to each view table (by view-table position).
  std::vector<int> rel_of_table;
};

class Planner {
 public:
  Planner(const BoundQuery& q, const ConfigView& view)
      : q_(q), view_(view), card_(view), cost_(view.params) {}

  Result<PhysicalPlan> Run() {
    TB_RETURN_IF_ERROR(Prepare());

    PhysicalPlan best;
    best.est_cost = kInf;

    // Unit partitions: all base units, or one view match replacing its rels.
    std::vector<std::vector<UnitDesc>> partitions;
    partitions.push_back(BaseUnits());
    for (const auto& m : FindViewMatches()) {
      partitions.push_back(PartitionWithView(m));
    }

    for (auto& units : partitions) {
      auto plan = PlanUnits(&units);
      if (!plan.ok()) continue;
      if (plan->est_cost < best.est_cost) best = std::move(*plan);
    }
    if (best.est_cost == kInf) {
      return Status::Internal("no plan found for query");
    }
    return best;
  }

 private:
  // ------------------------------------------------------------ preparation

  Status Prepare() {
    // Assign IN-set ids in q order and pick their evaluation strategy.
    for (const auto& p : q_.in_preds) {
      InSetSpec spec;
      spec.table = p.sub_table;
      spec.column = p.sub_column;
      spec.cmp = p.cmp;
      spec.k = p.k;
      const TableDef* def = view_.catalog->FindTable(p.sub_table);
      if (def == nullptr) return Status::NotFound("table " + p.sub_table);
      spec.column_pos = def->ColumnIndex(p.sub_column);
      if (spec.column_pos < 0) {
        return Status::NotFound("column " + p.sub_column);
      }
      // Heap scan vs index-only frequency walk.
      double best_cost =
          cost_.SeqScan(card_.TablePages(p.sub_table),
                        card_.TableRows(p.sub_table)) +
          card_.TableRows(p.sub_table) * view_.params.cpu_hash_seconds;
      for (const PhysicalIndex* idx : view_.IndexesOn(p.sub_table)) {
        if (idx->def.columns.empty() || idx->def.columns[0] != p.sub_column) {
          continue;
        }
        if (!idx->allow_index_only) continue;
        double c = cost_.IndexOnlyScan(*idx) +
                   idx->entries * view_.params.cpu_hash_seconds;
        if (c < best_cost) {
          best_cost = c;
          spec.index_name =
              idx->physical_name.empty() ? idx->def.name : idx->physical_name;
        }
      }
      in_set_costs_.push_back(best_cost);
      in_specs_.push_back(std::move(spec));
    }

    // Needed slots per relation occurrence.
    needed_.resize(static_cast<size_t>(q_.num_relations()));
    auto add_needed = [&](const BoundColumn& c) {
      auto& v = needed_[static_cast<size_t>(c.rel)];
      SlotRef s{c.rel, c.col};
      for (const auto& e : v) {
        if (e == s) return;
      }
      v.push_back(s);
    };
    for (const auto& j : q_.joins) {
      add_needed(j.left);
      add_needed(j.right);
    }
    for (const auto& f : q_.filters) add_needed(f.column);
    for (const auto& p : q_.in_preds) add_needed(p.column);
    for (const auto& g : q_.group_by) add_needed(g);
    for (const auto& s : q_.select) {
      if (s.kind != BoundSelectItem::Kind::kCountStar) add_needed(s.column);
    }
    return Status::OK();
  }

  // Base unit for each relation occurrence.
  std::vector<UnitDesc> BaseUnits() const {
    std::vector<UnitDesc> units;
    for (int r = 0; r < q_.num_relations(); ++r) {
      units.push_back(MakeBaseUnit(r));
    }
    return units;
  }

  UnitDesc MakeBaseUnit(int r) const {
    UnitDesc u;
    const std::string& table = q_.relations[static_cast<size_t>(r)];
    const TableDef* def = view_.catalog->FindTable(table);
    u.rels = {r};
    u.object = table;
    u.base_rows = card_.TableRows(table);
    u.pages = card_.TablePages(table);
    u.row_bytes = card_.TableRowBytes(table);
    for (size_t c = 0; c < def->columns.size(); ++c) {
      u.layout.push_back(SlotRef{r, static_cast<int>(c)});
      u.col_names.push_back(def->columns[c].name);
    }
    FillUnitPredicates(&u);
    return u;
  }

  void FillUnitPredicates(UnitDesc* u) const {
    double sel = 1.0;
    for (const auto& f : q_.filters) {
      SlotRef s{f.column.rel, f.column.col};
      if (!u->Exposes(s)) continue;
      FilterBinding fb;
      fb.slot = s;
      fb.object_column = ObjectColumnName(*u, s);
      fb.literal = f.literal;
      fb.selectivity =
          card_.EqSelectivity(f.column.table, f.column.column, f.literal);
      sel *= fb.selectivity;
      u->filters.push_back(std::move(fb));
    }
    for (size_t i = 0; i < q_.in_preds.size(); ++i) {
      const auto& p = q_.in_preds[i];
      SlotRef s{p.column.rel, p.column.col};
      if (!u->Exposes(s)) continue;
      InBinding ib;
      ib.slot = s;
      ib.set_id = static_cast<int>(i);
      ib.selectivity = card_.InFreqSelectivity(p.sub_table, p.sub_column,
                                               p.cmp, p.k);
      sel *= ib.selectivity;
      u->in_preds.push_back(ib);
    }
    for (const auto& j : q_.joins) {
      SlotRef ls{j.left.rel, j.left.col};
      SlotRef rs{j.right.rel, j.right.col};
      if (!u->Exposes(ls) || !u->Exposes(rs)) continue;
      if (u->is_view && ViewPreApplies(u->view->def, j)) continue;
      u->residual_joins.emplace_back(ls, rs);
      sel *= card_.JoinSelectivity(j.left.table, j.left.column,
                                   j.right.table, j.right.column);
    }
    for (int r : u->rels) {
      for (const auto& s : needed_[static_cast<size_t>(r)]) {
        if (u->Exposes(s)) u->needed.push_back(s);
      }
    }
    u->filtered_rows = std::max(1e-6, u->base_rows * sel);
  }

  static bool ViewPreApplies(const ViewDef& vd, const BoundJoin& j) {
    for (const auto& vj : vd.joins) {
      auto is = [&](const BoundColumn& a, const std::string& table,
                    const std::string& column) {
        return a.table == table && a.column == column;
      };
      if ((is(j.left, vj.left_table, vj.left_column) &&
           is(j.right, vj.right_table, vj.right_column)) ||
          (is(j.left, vj.right_table, vj.right_column) &&
           is(j.right, vj.left_table, vj.left_column))) {
        return true;
      }
    }
    return false;
  }

  std::string ObjectColumnName(const UnitDesc& u, const SlotRef& s) const {
    for (size_t i = 0; i < u.layout.size(); ++i) {
      if (u.layout[i] == s) return u.col_names[i];
    }
    return "";
  }

  // --------------------------------------------------------- view matching

  std::vector<ViewMatch> FindViewMatches() const {
    std::vector<ViewMatch> matches;
    for (const auto& pv : view_.views) {
      const ViewDef& vd = pv.def;
      // Candidate rels per view table.
      std::vector<std::vector<int>> cands(vd.tables.size());
      for (size_t t = 0; t < vd.tables.size(); ++t) {
        for (int r = 0; r < q_.num_relations(); ++r) {
          if (q_.relations[static_cast<size_t>(r)] == vd.tables[t]) {
            cands[t].push_back(r);
          }
        }
        if (cands[t].empty()) goto next_view;
      }
      // Enumerate injective assignments (view tables <= 3 in practice).
      {
        std::vector<int> assign(vd.tables.size(), -1);
        EnumerateAssignments(pv, cands, 0, &assign, &matches);
      }
    next_view:;
    }
    return matches;
  }

  void EnumerateAssignments(const PhysicalView& pv,
                            const std::vector<std::vector<int>>& cands,
                            size_t t, std::vector<int>* assign,
                            std::vector<ViewMatch>* out) const {
    const ViewDef& vd = pv.def;
    if (t == cands.size()) {
      if (ViewJoinsPresent(vd, *assign) && ViewCoversNeeded(vd, *assign)) {
        out->push_back(ViewMatch{&pv, *assign});
      }
      return;
    }
    for (int r : cands[t]) {
      bool used = false;
      for (size_t i = 0; i < t; ++i) {
        if ((*assign)[i] == r) used = true;
      }
      if (used) continue;
      (*assign)[t] = r;
      EnumerateAssignments(pv, cands, t + 1, assign, out);
      (*assign)[t] = -1;
    }
  }

  int RelOfViewTable(const ViewDef& vd, const std::vector<int>& assign,
                     const std::string& table) const {
    for (size_t t = 0; t < vd.tables.size(); ++t) {
      if (vd.tables[t] == table) return assign[t];
    }
    return -1;
  }

  bool ViewJoinsPresent(const ViewDef& vd,
                        const std::vector<int>& assign) const {
    for (const auto& vj : vd.joins) {
      int lr = RelOfViewTable(vd, assign, vj.left_table);
      int rr = RelOfViewTable(vd, assign, vj.right_table);
      if (lr < 0 || rr < 0) return false;
      bool found = false;
      for (const auto& qj : q_.joins) {
        auto is = [&](const BoundColumn& a, int rel, const std::string& col) {
          return a.rel == rel && a.column == col;
        };
        if ((is(qj.left, lr, vj.left_column) &&
             is(qj.right, rr, vj.right_column)) ||
            (is(qj.left, rr, vj.right_column) &&
             is(qj.right, lr, vj.left_column))) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
    return true;
  }

  bool ViewCoversNeeded(const ViewDef& vd,
                        const std::vector<int>& assign) const {
    auto covered = [&](int rel) {
      return std::find(assign.begin(), assign.end(), rel) != assign.end();
    };
    for (size_t t = 0; t < vd.tables.size(); ++t) {
      int r = assign[t];
      const TableDef* def = view_.catalog->FindTable(vd.tables[t]);
      for (const auto& s : needed_[static_cast<size_t>(r)]) {
        // A slot whose only uses are join predicates *internal* to the view
        // need not be projected: the view pre-applied those joins.
        bool needed_externally = false;
        for (const auto& f : q_.filters) {
          if (SlotRef{f.column.rel, f.column.col} == s) {
            needed_externally = true;
          }
        }
        for (const auto& p : q_.in_preds) {
          if (SlotRef{p.column.rel, p.column.col} == s) {
            needed_externally = true;
          }
        }
        for (const auto& g : q_.group_by) {
          if (SlotRef{g.rel, g.col} == s) needed_externally = true;
        }
        for (const auto& sel : q_.select) {
          if (sel.kind != BoundSelectItem::Kind::kCountStar &&
              SlotRef{sel.column.rel, sel.column.col} == s) {
            needed_externally = true;
          }
        }
        for (const auto& j : q_.joins) {
          bool left_is_s = SlotRef{j.left.rel, j.left.col} == s;
          bool right_is_s = SlotRef{j.right.rel, j.right.col} == s;
          if (!left_is_s && !right_is_s) continue;
          int other = left_is_s ? j.right.rel : j.left.rel;
          if (!covered(other)) {
            needed_externally = true;
            continue;
          }
          // Both sides covered; internal only if the view pre-applies this
          // exact predicate — otherwise it must run as a residual and needs
          // the column.
          bool in_view_joins = false;
          for (const auto& vj : vd.joins) {
            auto is = [&](const BoundColumn& a, const std::string& table,
                          const std::string& column) {
              return a.table == table && a.column == column;
            };
            if ((is(j.left, vj.left_table, vj.left_column) &&
                 is(j.right, vj.right_table, vj.right_column)) ||
                (is(j.left, vj.right_table, vj.right_column) &&
                 is(j.right, vj.left_table, vj.left_column))) {
              in_view_joins = true;
            }
          }
          if (!in_view_joins) needed_externally = true;
        }
        if (!needed_externally) continue;
        const std::string& col =
            def->columns[static_cast<size_t>(s.col)].name;
        if (vd.ViewColumnIndex(vd.tables[t], col) < 0) return false;
      }
    }
    return true;
  }

  std::vector<UnitDesc> PartitionWithView(const ViewMatch& m) const {
    std::vector<UnitDesc> units;
    UnitDesc vu;
    vu.is_view = true;
    vu.view = m.view;
    vu.object = m.view->def.name;
    vu.rels = m.rel_of_table;
    std::sort(vu.rels.begin(), vu.rels.end());
    vu.base_rows = std::max(1.0, m.view->rows);
    vu.pages = std::max(1.0, m.view->pages);
    vu.row_bytes = 0;
    const ViewDef& vd = m.view->def;
    for (const auto& pc : vd.projection) {
      int rel = RelOfViewTable(vd, m.rel_of_table, pc.table);
      const TableDef* def = view_.catalog->FindTable(pc.table);
      int ci = def->ColumnIndex(pc.column);
      vu.layout.push_back(SlotRef{rel, ci});
      vu.col_names.push_back(pc.view_name);
      vu.row_bytes += def->columns[static_cast<size_t>(ci)].avg_width;
    }
    vu.row_bytes = std::max(16.0, vu.row_bytes);
    FillUnitPredicates(&vu);
    units.push_back(std::move(vu));
    for (int r = 0; r < q_.num_relations(); ++r) {
      bool covered = false;
      for (int c : units[0].rels) {
        if (c == r) covered = true;
      }
      if (!covered) units.push_back(MakeBaseUnit(r));
    }
    return units;
  }

  // ---------------------------------------------------------- access paths

  /// Residual predicates for the unit, excluding filters whose slots appear
  /// in `consumed_filters` (already used for an index seek).
  std::vector<ResidualPred> UnitResiduals(
      const UnitDesc& u, const std::set<std::string>& consumed_filters) const {
    std::vector<ResidualPred> out;
    for (const auto& f : u.filters) {
      if (consumed_filters.count(f.object_column)) continue;
      ResidualPred p;
      p.kind = ResidualPred::Kind::kColEqLit;
      p.a = f.slot;
      p.literal = f.literal;
      out.push_back(std::move(p));
    }
    for (const auto& ip : u.in_preds) {
      ResidualPred p;
      p.kind = ResidualPred::Kind::kInSet;
      p.a = ip.slot;
      p.in_set = ip.set_id;
      out.push_back(std::move(p));
    }
    for (const auto& [ls, rs] : u.residual_joins) {
      ResidualPred p;
      p.kind = ResidualPred::Kind::kColEqCol;
      p.a = ls;
      p.b = rs;
      out.push_back(std::move(p));
    }
    return out;
  }

  /// All scan paths for a unit (used as the leftmost input or as a hash-join
  /// input). Each option's `rows` reflects every unit predicate.
  std::vector<SubPlan> UnitPaths(const UnitDesc& u) const {
    std::vector<SubPlan> paths;

    // 1. Sequential scan.
    {
      SubPlan p;
      p.node = std::make_unique<PlanNode>();
      p.node->kind = PlanNode::Kind::kSeqScan;
      p.node->object = u.object;
      p.node->is_view = u.is_view;
      p.node->output_cols = u.layout;
      p.node->residual = UnitResiduals(u, {});
      p.rows = u.filtered_rows;
      p.cost = cost_.SeqScan(u.pages, u.base_rows);
      p.row_bytes = u.row_bytes;
      p.rels = u.rels;
      p.node->est_rows = p.rows;
      p.node->est_cost = p.cost;
      paths.push_back(std::move(p));
    }

    // 2. Index paths.
    for (const PhysicalIndex* idx : view_.IndexesOn(u.object)) {
      // Map key columns to unit positions; skip if any key column is
      // unknown to the unit (cannot happen for base tables).
      std::vector<int> key_pos;
      bool ok = true;
      for (const auto& kc : idx->def.columns) {
        int pos = u.ColumnPos(kc);
        if (pos < 0) {
          ok = false;
          break;
        }
        key_pos.push_back(pos);
      }
      if (!ok) continue;

      bool covering = idx->allow_index_only && Covers(u, key_pos);

      // 2a. Seek with leading literal filters.
      std::vector<SeekKeyPart> seek;
      std::set<std::string> consumed;
      double seek_sel = 1.0;
      for (int pos : key_pos) {
        const FilterBinding* fb = nullptr;
        for (const auto& f : u.filters) {
          if (f.slot == u.layout[static_cast<size_t>(pos)]) {
            fb = &f;
            break;
          }
        }
        if (fb == nullptr) break;
        SeekKeyPart part;
        part.from_outer = false;
        part.literal = fb->literal;
        seek.push_back(std::move(part));
        consumed.insert(fb->object_column);
        seek_sel *= fb->selectivity;
      }
      if (!seek.empty()) {
        double matching = std::max(1e-6, u.base_rows * seek_sel);
        SubPlan p;
        p.node = std::make_unique<PlanNode>();
        p.node->kind = PlanNode::Kind::kIndexScan;
        p.node->object = u.object;
        p.node->is_view = u.is_view;
        p.node->index_name =
            idx->physical_name.empty() ? idx->def.name : idx->physical_name;
        p.node->seek = seek;
        p.node->index_only = covering;
        p.node->output_cols =
            covering ? KeyLayout(u, key_pos) : u.layout;
        p.node->residual = UnitResiduals(u, consumed);
        p.rows = u.filtered_rows;  // all predicates applied by the end
        p.cost = cost_.IndexProbe(*idx, matching, covering);
        p.row_bytes = u.row_bytes;
        p.rels = u.rels;
        p.node->est_rows = p.rows;
        p.node->est_cost = p.cost;
        paths.push_back(std::move(p));
      }

      // 2b. Covering index-only full scan (no seekable filter needed).
      if (covering) {
        SubPlan p;
        p.node = std::make_unique<PlanNode>();
        p.node->kind = PlanNode::Kind::kIndexScan;
        p.node->object = u.object;
        p.node->is_view = u.is_view;
        p.node->index_name =
            idx->physical_name.empty() ? idx->def.name : idx->physical_name;
        p.node->index_only = true;
        p.node->output_cols = KeyLayout(u, key_pos);
        p.node->residual = UnitResiduals(u, {});
        p.rows = u.filtered_rows;
        p.cost = cost_.IndexOnlyScan(*idx);
        p.row_bytes = std::max(16.0, u.row_bytes / 2.0);
        p.rels = u.rels;
        p.node->est_rows = p.rows;
        p.node->est_cost = p.cost;
        paths.push_back(std::move(p));
      }
    }
    return paths;
  }

  bool Covers(const UnitDesc& u, const std::vector<int>& key_pos) const {
    for (const auto& need : u.needed) {
      bool found = false;
      for (int pos : key_pos) {
        if (u.layout[static_cast<size_t>(pos)] == need) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
    return true;
  }

  std::vector<SlotRef> KeyLayout(const UnitDesc& u,
                                 const std::vector<int>& key_pos) const {
    std::vector<SlotRef> out;
    for (int pos : key_pos) out.push_back(u.layout[static_cast<size_t>(pos)]);
    return out;
  }

  // ------------------------------------------------------------------ joins

  /// Join predicates connecting `rels` (already joined) with unit `u`.
  /// Returned with `left` on the already-joined side.
  std::vector<BoundJoin> ConnectingJoins(const std::vector<int>& rels,
                                         const UnitDesc& u) const {
    auto in = [](const std::vector<int>& v, int r) {
      return std::find(v.begin(), v.end(), r) != v.end();
    };
    std::vector<BoundJoin> out;
    for (const auto& j : q_.joins) {
      if (in(rels, j.left.rel) && in(u.rels, j.right.rel)) {
        out.push_back(j);
      } else if (in(rels, j.right.rel) && in(u.rels, j.left.rel)) {
        out.push_back(BoundJoin{j.right, j.left});
      }
    }
    return out;
  }

  double JoinOutputRows(double acc_rows, const UnitDesc& u,
                        const std::vector<BoundJoin>& joins) const {
    double rows = acc_rows * u.filtered_rows;
    for (const auto& j : joins) {
      rows *= card_.JoinSelectivity(j.left.table, j.left.column,
                                    j.right.table, j.right.column);
    }
    return std::max(1e-6, rows);
  }

  /// Extends `acc` with unit `u`; returns the cheapest join alternative.
  Result<SubPlan> JoinStep(SubPlan acc, const UnitDesc& u) const {
    std::vector<BoundJoin> joins = ConnectingJoins(acc.rels, u);
    double out_rows = JoinOutputRows(acc.rows, u, joins);
    double out_bytes = acc.row_bytes + u.row_bytes;

    SubPlan best;
    best.cost = kInf;

    // Option A: hash join (build on the smaller input).
    {
      std::vector<SubPlan> unit_paths = UnitPaths(u);
      for (auto& up : unit_paths) {
        bool build_acc = acc.rows <= up.rows;
        const SubPlan& build = build_acc ? acc : up;
        const SubPlan& probe = build_acc ? up : acc;
        bool spilled = cost_.WouldSpill(build.rows, build.row_bytes);
        double cost = acc.cost + up.cost +
                      cost_.HashBuild(build.rows, build.row_bytes) +
                      cost_.HashProbe(probe.rows, out_rows, spilled,
                                      probe.row_bytes);
        if (cost >= best.cost) continue;

        auto node = std::make_unique<PlanNode>();
        node->kind = PlanNode::Kind::kHashJoin;
        // Clone inputs: plans own their nodes, so deep-copy on demand.
        node->children.push_back(ClonePlan(*(build_acc ? acc.node : up.node)));
        node->children.push_back(ClonePlan(*(build_acc ? up.node : acc.node)));
        for (const auto& j : joins) {
          SlotRef accs{j.left.rel, j.left.col};
          SlotRef us{j.right.rel, j.right.col};
          if (build_acc) {
            node->hash_keys.emplace_back(accs, us);
          } else {
            node->hash_keys.emplace_back(us, accs);
          }
        }
        node->output_cols = node->children[0]->output_cols;
        node->output_cols.insert(node->output_cols.end(),
                                 node->children[1]->output_cols.begin(),
                                 node->children[1]->output_cols.end());
        node->est_rows = out_rows;
        node->est_cost = cost;
        best.node = std::move(node);
        best.rows = out_rows;
        best.cost = cost;
        best.row_bytes = out_bytes;
      }
    }

    // Option B: index nested-loop join (single-object inner with an index
    // whose leading key columns are bound by join columns or literals).
    if (!joins.empty()) {
      for (const PhysicalIndex* idx : view_.IndexesOn(u.object)) {
        std::vector<int> key_pos;
        bool ok = true;
        for (const auto& kc : idx->def.columns) {
          int pos = u.ColumnPos(kc);
          if (pos < 0) {
            ok = false;
            break;
          }
          key_pos.push_back(pos);
        }
        if (!ok) continue;

        std::vector<SeekKeyPart> seek;
        std::set<std::string> consumed;
        std::set<size_t> used_joins;
        double probe_sel = 1.0;
        bool used_outer = false;
        for (int pos : key_pos) {
          const SlotRef& slot = u.layout[static_cast<size_t>(pos)];
          // Prefer a join binding for this key column.
          bool bound = false;
          for (size_t ji = 0; ji < joins.size(); ++ji) {
            if (used_joins.count(ji)) continue;
            const auto& j = joins[ji];
            if (SlotRef{j.right.rel, j.right.col} == slot) {
              SeekKeyPart part;
              part.from_outer = true;
              part.outer = SlotRef{j.left.rel, j.left.col};
              seek.push_back(std::move(part));
              used_joins.insert(ji);
              probe_sel /= card_.Distinct(j.right.table, j.right.column);
              bound = true;
              used_outer = true;
              break;
            }
          }
          if (!bound) {
            for (const auto& f : u.filters) {
              if (f.slot == slot) {
                SeekKeyPart part;
                part.from_outer = false;
                part.literal = f.literal;
                seek.push_back(std::move(part));
                consumed.insert(f.object_column);
                probe_sel *= f.selectivity;
                bound = true;
                break;
              }
            }
          }
          if (!bound) break;
        }
        if (!used_outer || seek.empty()) continue;

        bool covering = idx->allow_index_only && Covers(u, key_pos);
        double matching = std::max(1e-6, u.base_rows * probe_sel);
        double per_probe = cost_.IndexProbe(*idx, matching, covering);
        double cost = acc.cost + acc.rows * per_probe;
        if (cost >= best.cost) continue;

        auto node = std::make_unique<PlanNode>();
        node->kind = PlanNode::Kind::kIndexNLJoin;
        node->children.push_back(ClonePlan(*acc.node));
        node->object = u.object;
        node->is_view = u.is_view;
        node->index_name =
            idx->physical_name.empty() ? idx->def.name : idx->physical_name;
        node->seek = seek;
        node->index_only = covering;
        node->output_cols = node->children[0]->output_cols;
        std::vector<SlotRef> inner_cols =
            covering ? KeyLayout(u, key_pos) : u.layout;
        node->output_cols.insert(node->output_cols.end(), inner_cols.begin(),
                                 inner_cols.end());
        // Residuals: unit predicates not consumed by the seek, plus join
        // predicates not used as seek columns.
        node->residual = UnitResiduals(u, consumed);
        for (size_t ji = 0; ji < joins.size(); ++ji) {
          if (used_joins.count(ji)) continue;
          ResidualPred p;
          p.kind = ResidualPred::Kind::kColEqCol;
          p.a = SlotRef{joins[ji].left.rel, joins[ji].left.col};
          p.b = SlotRef{joins[ji].right.rel, joins[ji].right.col};
          node->residual.push_back(std::move(p));
        }
        node->est_rows = out_rows;
        node->est_cost = cost;
        best.node = std::move(node);
        best.rows = out_rows;
        best.cost = cost;
        best.row_bytes = out_bytes;
      }
    }

    if (best.cost == kInf) {
      return Status::Internal("no join method applicable");
    }
    best.rels = acc.rels;
    for (int r : u.rels) best.rels.push_back(r);
    std::sort(best.rels.begin(), best.rels.end());
    return best;
  }

  static std::unique_ptr<PlanNode> ClonePlan(const PlanNode& n) {
    auto out = std::make_unique<PlanNode>();
    out->kind = n.kind;
    out->output_cols = n.output_cols;
    out->residual = n.residual;
    out->object = n.object;
    out->is_view = n.is_view;
    out->index_name = n.index_name;
    out->seek = n.seek;
    out->index_only = n.index_only;
    out->hash_keys = n.hash_keys;
    out->select = n.select;
    out->group_by = n.group_by;
    out->est_rows = n.est_rows;
    out->est_cost = n.est_cost;
    for (const auto& c : n.children) out->children.push_back(ClonePlan(*c));
    return out;
  }

  // ----------------------------------------------------------- enumeration

  Result<PhysicalPlan> PlanUnits(std::vector<UnitDesc>* units) const {
    const size_t n = units->size();
    std::vector<size_t> perm(n);
    for (size_t i = 0; i < n; ++i) perm[i] = i;

    SubPlan best;
    best.cost = kInf;
    do {
      auto plan = PlanPermutation(*units, perm);
      if (!plan.ok()) continue;
      if (plan->cost < best.cost) best = std::move(*plan);
    } while (std::next_permutation(perm.begin(), perm.end()));

    if (best.cost == kInf) {
      return Status::Internal("no join order worked");
    }
    return Finalize(std::move(best));
  }

  Result<SubPlan> PlanPermutation(const std::vector<UnitDesc>& units,
                                  const std::vector<size_t>& perm) const {
    // Leftmost unit: cheapest access path.
    std::vector<SubPlan> first = UnitPaths(units[perm[0]]);
    SubPlan acc;
    acc.cost = kInf;
    for (auto& p : first) {
      if (p.cost < acc.cost) acc = std::move(p);
    }
    if (acc.cost == kInf) return Status::Internal("no access path");
    for (size_t i = 1; i < perm.size(); ++i) {
      auto next = JoinStep(std::move(acc), units[perm[i]]);
      if (!next.ok()) return next.status();
      acc = std::move(*next);
    }
    return acc;
  }

  Result<PhysicalPlan> Finalize(SubPlan acc) const {
    PhysicalPlan plan;
    plan.in_sets = in_specs_;
    double total = acc.cost;
    for (double c : in_set_costs_) total += c;

    if (q_.IsAggregate()) {
      auto root = std::make_unique<PlanNode>();
      root->kind = PlanNode::Kind::kHashAggregate;
      root->select = q_.select;
      root->group_by = q_.group_by;
      double groups = card_.GroupCount(q_.group_by, acc.rows);
      bool has_distinct = false;
      for (const auto& s : q_.select) {
        if (s.kind == BoundSelectItem::Kind::kCountDistinct) {
          has_distinct = true;
        }
      }
      double key_bytes = 16.0 * static_cast<double>(q_.group_by.size());
      total += cost_.Aggregate(acc.rows, groups, key_bytes,
                               has_distinct ? acc.rows : 0.0);
      root->est_rows = groups;
      root->children.push_back(std::move(acc.node));
      // Aggregate output: select-list shape; output_cols unused above root.
      root->est_cost = total;
      plan.root = std::move(root);
    } else {
      auto root = std::make_unique<PlanNode>();
      root->kind = PlanNode::Kind::kProject;
      root->select = q_.select;
      root->est_rows = acc.rows;
      root->est_cost = total;
      root->children.push_back(std::move(acc.node));
      plan.root = std::move(root);
    }
    plan.est_cost = total;
    return plan;
  }

  const BoundQuery& q_;
  const ConfigView& view_;
  CardinalityEstimator card_;
  CostModel cost_;
  std::vector<InSetSpec> in_specs_;
  std::vector<double> in_set_costs_;
  std::vector<std::vector<SlotRef>> needed_;
};

}  // namespace

Result<PhysicalPlan> PlanQuery(const BoundQuery& q, const ConfigView& view) {
  if (view.catalog == nullptr || view.stats == nullptr) {
    return Status::InvalidArgument("ConfigView missing catalog or stats");
  }
  Planner p(q, view);
  return p.Run();
}

Result<double> EstimateCost(const BoundQuery& q, const ConfigView& view) {
  PhysicalPlan plan;
  TB_ASSIGN_OR_RETURN(plan, PlanQuery(q, view));
  return plan.est_cost;
}

}  // namespace tabbench
