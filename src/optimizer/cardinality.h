#ifndef TABBENCH_OPTIMIZER_CARDINALITY_H_
#define TABBENCH_OPTIMIZER_CARDINALITY_H_

#include <string>

#include "optimizer/config_view.h"
#include "sql/binder.h"
#include "types/value.h"

namespace tabbench {

/// Cardinality estimation over collected statistics. All estimates follow
/// the classical System-R assumptions (uniformity outside MCVs,
/// independence of predicates, containment of join values) — deliberately
/// so: the paper's Section 5 analysis hinges on optimizers being *estimate
/// driven*, and on those estimates degrading with query complexity.
class CardinalityEstimator {
 public:
  explicit CardinalityEstimator(const ConfigView& view) : view_(view) {}

  /// Rows in `table`.
  double TableRows(const std::string& table) const;
  /// Pages of `table`.
  double TablePages(const std::string& table) const;
  /// Average encoded row width of `table` in bytes.
  double TableRowBytes(const std::string& table) const;

  /// Distinct non-null values of table.column (>= 1 when the table is
  /// non-empty).
  double Distinct(const std::string& table, const std::string& column) const;

  /// Selectivity of `table.column = literal` in [0, 1].
  double EqSelectivity(const std::string& table, const std::string& column,
                       const Value& literal) const;

  /// Selectivity of `column IN (SELECT .. HAVING COUNT(*) cmp k)`: the
  /// fraction of rows whose value has frequency < k (or == k).
  double InFreqSelectivity(const std::string& table, const std::string& column,
                           char cmp, int64_t k) const;

  /// Selectivity of the equi-join t1.c1 = t2.c2: 1 / max(ndv1, ndv2).
  double JoinSelectivity(const std::string& t1, const std::string& c1,
                         const std::string& t2, const std::string& c2) const;

  /// Expected number of groups when grouping `input_rows` rows by the given
  /// columns (capped at input_rows).
  double GroupCount(const std::vector<BoundColumn>& group_by,
                    double input_rows) const;

 private:
  const ConfigView& view_;
};

}  // namespace tabbench

#endif  // TABBENCH_OPTIMIZER_CARDINALITY_H_
