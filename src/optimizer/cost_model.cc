#include "optimizer/cost_model.h"

// Header-only; translation unit anchors the library archive.

namespace tabbench {}  // namespace tabbench
