#ifndef TABBENCH_OPTIMIZER_CONFIG_VIEW_H_
#define TABBENCH_OPTIMIZER_CONFIG_VIEW_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/configuration.h"
#include "exec/exec_context.h"
#include "stats/table_stats.h"

namespace tabbench {

/// The optimizer's view of one index: its definition plus the statistics the
/// cost model consumes. For *built* indexes these are measured off the
/// actual B+-tree; for *hypothetical* indexes (what-if mode, Section 5 of
/// the paper) they are derived from base-table statistics — necessarily
/// coarser, which is precisely the mechanism behind recommender conservatism
/// that the paper investigates.
struct PhysicalIndex {
  IndexDef def;
  /// Resolver key of the built structure; empty for hypothetical indexes.
  std::string physical_name;
  double height = 2;
  double leaf_pages = 1;
  double entries = 0;
  /// Distinct full composite keys.
  double distinct_keys = 1;
  /// Heap page switches over a full in-key-order walk (Oracle-style
  /// clustering factor). Heap cost per fetched entry ~ clustering/entries.
  double clustering_factor = 0;
  bool hypothetical = false;
  /// Whether the planner may use this index for covering (index-only)
  /// access. Real what-if implementations differ on crediting hypothetical
  /// indexes with index-only plans; advisor profiles toggle this to model
  /// that conservatism (see advisor/profiles.h).
  bool allow_index_only = true;
};

/// The optimizer's view of one materialized view.
struct PhysicalView {
  ViewDef def;
  std::string physical_name;  // empty for hypothetical views
  double rows = 0;
  double pages = 1;
  bool hypothetical = false;
};

/// Everything the planner knows about a configuration: base-table stats
/// (always real — the paper's systems collect statistics up front) plus the
/// index/view inventory with measured or derived stats.
struct ConfigView {
  const Catalog* catalog = nullptr;
  const DatabaseStats* stats = nullptr;
  CostParams params;
  std::vector<PhysicalIndex> indexes;
  std::vector<PhysicalView> views;

  std::vector<const PhysicalIndex*> IndexesOn(const std::string& target) const {
    std::vector<const PhysicalIndex*> out;
    for (const auto& i : indexes) {
      if (i.def.target == target) out.push_back(&i);
    }
    return out;
  }

  const PhysicalView* FindView(const std::string& name) const {
    for (const auto& v : views) {
      if (v.def.name == name) return &v;
    }
    return nullptr;
  }
};

}  // namespace tabbench

#endif  // TABBENCH_OPTIMIZER_CONFIG_VIEW_H_
