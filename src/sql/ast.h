#ifndef TABBENCH_SQL_AST_H_
#define TABBENCH_SQL_AST_H_

#include <string>
#include <vector>

#include "types/value.h"

namespace tabbench {

/// `qualifier.column` as written in the query (qualifier = alias or table).
struct AstColumnRef {
  std::string qualifier;
  std::string column;

  std::string ToSql() const {
    return qualifier.empty() ? column : qualifier + "." + column;
  }
  bool operator==(const AstColumnRef& o) const {
    return qualifier == o.qualifier && column == o.column;
  }
};

/// An item in the SELECT list: a grouping column, COUNT(*), or
/// COUNT(DISTINCT col) — the only aggregates the benchmark families use.
struct AstSelectItem {
  enum class Kind { kColumn, kCountStar, kCountDistinct };
  Kind kind = Kind::kColumn;
  AstColumnRef column;  // for kColumn / kCountDistinct

  std::string ToSql() const;
};

/// `table [alias]` in the FROM clause.
struct AstTableRef {
  std::string table;
  std::string alias;  // defaults to the table name

  std::string ToSql() const {
    return alias.empty() || alias == table ? table : table + " " + alias;
  }
};

/// `col IN (SELECT c FROM T GROUP BY c HAVING COUNT(*) <op> k)` — the
/// frequency-restriction subquery used by families NREF2J and SkTH3J.
struct AstInSubquery {
  std::string table;
  std::string column;
  char cmp = '<';  // '<' or '='
  int64_t k = 0;

  std::string ToSql() const;
};

/// One conjunct of the WHERE clause.
struct AstPredicate {
  enum class Kind { kColEqCol, kColEqLiteral, kColInSubquery };
  Kind kind = Kind::kColEqCol;
  AstColumnRef left;
  AstColumnRef right;   // kColEqCol
  Value literal;        // kColEqLiteral
  AstInSubquery sub;    // kColInSubquery

  std::string ToSql() const;
};

/// The benchmark SQL fragment: select-project-join with simple aggregates,
/// equality predicates, and at most one level of nesting (Section 3.2.2).
struct SelectStmt {
  std::vector<AstSelectItem> items;
  std::vector<AstTableRef> from;
  std::vector<AstPredicate> where;
  std::vector<AstColumnRef> group_by;

  std::string ToSql() const;
};

}  // namespace tabbench

#endif  // TABBENCH_SQL_AST_H_
