#ifndef TABBENCH_SQL_PARSER_H_
#define TABBENCH_SQL_PARSER_H_

#include <string>

#include "sql/ast.h"
#include "util/status.h"

namespace tabbench {

/// Parses the benchmark SQL fragment into a SelectStmt. Grammar:
///
///   stmt      := SELECT items FROM tables [WHERE conj] [GROUP BY cols]
///   items     := item (',' item)*
///   item      := colref | COUNT '(' '*' ')' | COUNT '(' DISTINCT colref ')'
///   tables    := table [alias] (',' table [alias])*
///   conj      := pred (AND pred)*
///   pred      := colref '=' (colref | literal)
///              | colref IN '(' SELECT ident FROM ident
///                  GROUP BY ident HAVING COUNT '(' '*' ')' ('<'|'=') int ')'
///   colref    := ident ['.' ident]
Result<SelectStmt> ParseSelect(const std::string& sql);

}  // namespace tabbench

#endif  // TABBENCH_SQL_PARSER_H_
