#ifndef TABBENCH_SQL_LEXER_H_
#define TABBENCH_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace tabbench {

enum class TokenType {
  kIdentifier,
  kKeyword,   // normalized to upper case
  kInt,
  kDouble,
  kString,    // quoted literal, quotes stripped
  kComma,
  kLParen,
  kRParen,
  kDot,
  kStar,
  kEq,
  kLt,
  kGt,
  kEof,
};

struct Token {
  TokenType type = TokenType::kEof;
  std::string text;       // identifier (as written) / keyword (upper) / literal text
  int64_t int_value = 0;
  double double_value = 0.0;
  size_t position = 0;    // byte offset, for error messages
};

/// Tokenizes the SQL fragment used by the benchmark query families.
/// Keywords are case-insensitive; identifiers keep their original case.
Result<std::vector<Token>> Lex(const std::string& sql);

}  // namespace tabbench

#endif  // TABBENCH_SQL_LEXER_H_
