#include "sql/parser.h"

#include "sql/lexer.h"
#include "util/strings.h"

namespace tabbench {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectStmt> Parse() {
    SelectStmt stmt;
    TB_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    TB_RETURN_IF_ERROR(ParseItems(&stmt));
    TB_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    TB_RETURN_IF_ERROR(ParseTables(&stmt));
    if (AcceptKeyword("WHERE")) {
      TB_RETURN_IF_ERROR(ParseConjuncts(&stmt));
    }
    if (AcceptKeyword("GROUP")) {
      TB_RETURN_IF_ERROR(ExpectKeyword("BY"));
      TB_RETURN_IF_ERROR(ParseGroupBy(&stmt));
    }
    if (Peek().type != TokenType::kEof) {
      return Err("trailing tokens after statement");
    }
    return stmt;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }

  bool AcceptKeyword(const std::string& kw) {
    if (Peek().type == TokenType::kKeyword && Peek().text == kw) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool Accept(TokenType t) {
    if (Peek().type == t) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const std::string& kw) {
    if (!AcceptKeyword(kw)) return Err("expected " + kw);
    return Status::OK();
  }
  Status Expect(TokenType t, const std::string& what) {
    if (!Accept(t)) return Err("expected " + what);
    return Status::OK();
  }
  Status Err(const std::string& msg) const {
    return Status::InvalidArgument(
        StrFormat("parse error at offset %zu ('%s'): %s", Peek().position,
                  Peek().text.c_str(), msg.c_str()));
  }

  Result<AstColumnRef> ParseColumnRef() {
    if (Peek().type != TokenType::kIdentifier) {
      return Status::InvalidArgument(
          StrFormat("parse error at offset %zu: expected column reference",
                    Peek().position));
    }
    AstColumnRef ref;
    std::string first = Advance().text;
    if (Accept(TokenType::kDot)) {
      if (Peek().type != TokenType::kIdentifier) {
        return Status::InvalidArgument("expected column after '.'");
      }
      ref.qualifier = first;
      ref.column = Advance().text;
    } else {
      ref.column = first;
    }
    return ref;
  }

  Status ParseItems(SelectStmt* stmt) {
    do {
      AstSelectItem item;
      if (AcceptKeyword("COUNT")) {
        TB_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
        if (Accept(TokenType::kStar)) {
          item.kind = AstSelectItem::Kind::kCountStar;
        } else {
          TB_RETURN_IF_ERROR(ExpectKeyword("DISTINCT"));
          TB_ASSIGN_OR_RETURN(item.column, ParseColumnRef());
          item.kind = AstSelectItem::Kind::kCountDistinct;
        }
        TB_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      } else {
        TB_ASSIGN_OR_RETURN(item.column, ParseColumnRef());
        item.kind = AstSelectItem::Kind::kColumn;
      }
      stmt->items.push_back(std::move(item));
    } while (Accept(TokenType::kComma));
    return Status::OK();
  }

  Status ParseTables(SelectStmt* stmt) {
    do {
      if (Peek().type != TokenType::kIdentifier) {
        return Err("expected table name");
      }
      AstTableRef ref;
      ref.table = Advance().text;
      AcceptKeyword("AS");
      if (Peek().type == TokenType::kIdentifier) {
        ref.alias = Advance().text;
      } else {
        ref.alias = ref.table;
      }
      stmt->from.push_back(std::move(ref));
    } while (Accept(TokenType::kComma));
    return Status::OK();
  }

  Status ParseConjuncts(SelectStmt* stmt) {
    do {
      AstPredicate pred;
      TB_ASSIGN_OR_RETURN(pred.left, ParseColumnRef());
      if (AcceptKeyword("IN")) {
        pred.kind = AstPredicate::Kind::kColInSubquery;
        TB_RETURN_IF_ERROR(ParseInSubquery(&pred.sub));
      } else {
        TB_RETURN_IF_ERROR(Expect(TokenType::kEq, "'='"));
        const Token& t = Peek();
        if (t.type == TokenType::kIdentifier) {
          pred.kind = AstPredicate::Kind::kColEqCol;
          TB_ASSIGN_OR_RETURN(pred.right, ParseColumnRef());
        } else if (t.type == TokenType::kInt) {
          pred.kind = AstPredicate::Kind::kColEqLiteral;
          pred.literal = Value(Advance().int_value);
        } else if (t.type == TokenType::kDouble) {
          pred.kind = AstPredicate::Kind::kColEqLiteral;
          pred.literal = Value(Advance().double_value);
        } else if (t.type == TokenType::kString) {
          pred.kind = AstPredicate::Kind::kColEqLiteral;
          pred.literal = Value(Advance().text);
        } else {
          return Err("expected column or literal after '='");
        }
      }
      stmt->where.push_back(std::move(pred));
    } while (AcceptKeyword("AND"));
    return Status::OK();
  }

  Status ParseInSubquery(AstInSubquery* sub) {
    TB_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
    TB_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    if (Peek().type != TokenType::kIdentifier) return Err("expected column");
    sub->column = Advance().text;
    TB_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    if (Peek().type != TokenType::kIdentifier) return Err("expected table");
    sub->table = Advance().text;
    TB_RETURN_IF_ERROR(ExpectKeyword("GROUP"));
    TB_RETURN_IF_ERROR(ExpectKeyword("BY"));
    if (Peek().type != TokenType::kIdentifier ||
        Peek().text != sub->column) {
      return Err("subquery GROUP BY must match its SELECT column");
    }
    Advance();
    TB_RETURN_IF_ERROR(ExpectKeyword("HAVING"));
    TB_RETURN_IF_ERROR(ExpectKeyword("COUNT"));
    TB_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
    TB_RETURN_IF_ERROR(Expect(TokenType::kStar, "'*'"));
    TB_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    if (Accept(TokenType::kLt)) {
      sub->cmp = '<';
    } else if (Accept(TokenType::kEq)) {
      sub->cmp = '=';
    } else {
      return Err("expected '<' or '=' in HAVING");
    }
    if (Peek().type != TokenType::kInt) return Err("expected integer");
    sub->k = Advance().int_value;
    TB_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    return Status::OK();
  }

  Status ParseGroupBy(SelectStmt* stmt) {
    do {
      AstColumnRef ref;
      TB_ASSIGN_OR_RETURN(ref, ParseColumnRef());
      stmt->group_by.push_back(std::move(ref));
    } while (Accept(TokenType::kComma));
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SelectStmt> ParseSelect(const std::string& sql) {
  std::vector<Token> tokens;
  TB_ASSIGN_OR_RETURN(tokens, Lex(sql));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace tabbench
