#include "sql/ast.h"

#include "util/strings.h"

namespace tabbench {

std::string AstSelectItem::ToSql() const {
  switch (kind) {
    case Kind::kColumn:
      return column.ToSql();
    case Kind::kCountStar:
      return "COUNT(*)";
    case Kind::kCountDistinct:
      return "COUNT(DISTINCT " + column.ToSql() + ")";
  }
  return "";
}

std::string AstInSubquery::ToSql() const {
  return StrFormat("(SELECT %s FROM %s GROUP BY %s HAVING COUNT(*) %c %lld)",
                   column.c_str(), table.c_str(), column.c_str(), cmp,
                   static_cast<long long>(k));
}

std::string AstPredicate::ToSql() const {
  switch (kind) {
    case Kind::kColEqCol:
      return left.ToSql() + " = " + right.ToSql();
    case Kind::kColEqLiteral:
      return left.ToSql() + " = " + literal.ToString();
    case Kind::kColInSubquery:
      return left.ToSql() + " IN " + sub.ToSql();
  }
  return "";
}

std::string SelectStmt::ToSql() const {
  std::vector<std::string> parts;
  for (const auto& i : items) parts.push_back(i.ToSql());
  std::string sql = "SELECT " + StrJoin(parts, ", ");

  parts.clear();
  for (const auto& t : from) parts.push_back(t.ToSql());
  sql += " FROM " + StrJoin(parts, ", ");

  if (!where.empty()) {
    parts.clear();
    for (const auto& p : where) parts.push_back(p.ToSql());
    sql += " WHERE " + StrJoin(parts, " AND ");
  }
  if (!group_by.empty()) {
    parts.clear();
    for (const auto& g : group_by) parts.push_back(g.ToSql());
    sql += " GROUP BY " + StrJoin(parts, ", ");
  }
  return sql;
}

}  // namespace tabbench
