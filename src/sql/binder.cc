#include "sql/binder.h"

#include <algorithm>

#include "sql/parser.h"

namespace tabbench {

bool BoundQuery::IsAggregate() const {
  if (!group_by.empty()) return true;
  for (const auto& s : select) {
    if (s.kind != BoundSelectItem::Kind::kColumn) return true;
  }
  return false;
}

std::vector<BoundColumn> BoundQuery::ColumnsOf(int rel) const {
  std::vector<BoundColumn> out;
  auto add = [&](const BoundColumn& c) {
    if (c.rel != rel) return;
    for (const auto& e : out) {
      if (e.SameAs(c)) return;
    }
    out.push_back(c);
  };
  for (const auto& j : joins) {
    add(j.left);
    add(j.right);
  }
  for (const auto& f : filters) add(f.column);
  for (const auto& p : in_preds) add(p.column);
  for (const auto& g : group_by) add(g);
  return out;
}

namespace {

class Binder {
 public:
  Binder(const SelectStmt& stmt, const Catalog& catalog)
      : stmt_(stmt), catalog_(catalog) {}

  Result<BoundQuery> Run() {
    BoundQuery q;
    // FROM: register relation occurrences.
    if (stmt_.from.empty()) {
      return Status::InvalidArgument("empty FROM clause");
    }
    for (const auto& t : stmt_.from) {
      const TableDef* def = catalog_.FindTable(t.table);
      if (def == nullptr) {
        return Status::NotFound("unknown table " + t.table);
      }
      for (const auto& a : q.aliases) {
        if (a == t.alias) {
          return Status::InvalidArgument("duplicate alias " + t.alias);
        }
      }
      q.relations.push_back(t.table);
      q.aliases.push_back(t.alias);
    }

    // WHERE conjuncts.
    for (const auto& p : stmt_.where) {
      switch (p.kind) {
        case AstPredicate::Kind::kColEqCol: {
          BoundJoin j;
          TB_ASSIGN_OR_RETURN(j.left, Resolve(p.left, q));
          TB_ASSIGN_OR_RETURN(j.right, Resolve(p.right, q));
          if (j.left.type != j.right.type) {
            return Status::InvalidArgument("join type mismatch: " +
                                           p.ToSql());
          }
          q.joins.push_back(std::move(j));
          break;
        }
        case AstPredicate::Kind::kColEqLiteral: {
          BoundFilter f;
          TB_ASSIGN_OR_RETURN(f.column, Resolve(p.left, q));
          if (!LiteralMatches(f.column.type, p.literal)) {
            return Status::InvalidArgument("literal type mismatch: " +
                                           p.ToSql());
          }
          f.literal = p.literal;
          q.filters.push_back(std::move(f));
          break;
        }
        case AstPredicate::Kind::kColInSubquery: {
          BoundInFreq in;
          TB_ASSIGN_OR_RETURN(in.column, Resolve(p.left, q));
          const TableDef* sub = catalog_.FindTable(p.sub.table);
          if (sub == nullptr) {
            return Status::NotFound("unknown table " + p.sub.table);
          }
          int ci = sub->ColumnIndex(p.sub.column);
          if (ci < 0) {
            return Status::NotFound("unknown column " + p.sub.table + "." +
                                    p.sub.column);
          }
          if (sub->columns[static_cast<size_t>(ci)].type != in.column.type) {
            return Status::InvalidArgument("IN subquery type mismatch: " +
                                           p.ToSql());
          }
          if (p.sub.cmp != '<' && p.sub.cmp != '=') {
            return Status::Unsupported("HAVING comparison " +
                                       std::string(1, p.sub.cmp));
          }
          if (p.sub.k <= 0) {
            return Status::InvalidArgument("HAVING COUNT(*) bound must be positive");
          }
          in.sub_table = p.sub.table;
          in.sub_column = p.sub.column;
          in.cmp = p.sub.cmp;
          in.k = p.sub.k;
          q.in_preds.push_back(std::move(in));
          break;
        }
      }
    }

    // GROUP BY.
    for (const auto& g : stmt_.group_by) {
      BoundColumn c;
      TB_ASSIGN_OR_RETURN(c, Resolve(g, q));
      q.group_by.push_back(std::move(c));
    }

    // SELECT list.
    bool has_aggregate = false;
    for (const auto& item : stmt_.items) {
      if (item.kind != AstSelectItem::Kind::kColumn) has_aggregate = true;
    }
    for (const auto& item : stmt_.items) {
      BoundSelectItem s;
      switch (item.kind) {
        case AstSelectItem::Kind::kCountStar:
          s.kind = BoundSelectItem::Kind::kCountStar;
          break;
        case AstSelectItem::Kind::kCountDistinct: {
          s.kind = BoundSelectItem::Kind::kCountDistinct;
          TB_ASSIGN_OR_RETURN(s.column, Resolve(item.column, q));
          break;
        }
        case AstSelectItem::Kind::kColumn: {
          s.kind = BoundSelectItem::Kind::kColumn;
          TB_ASSIGN_OR_RETURN(s.column, Resolve(item.column, q));
          if (has_aggregate || !stmt_.group_by.empty()) {
            bool in_group = std::any_of(
                q.group_by.begin(), q.group_by.end(),
                [&](const BoundColumn& g) { return g.SameAs(s.column); });
            if (!in_group) {
              return Status::InvalidArgument(
                  "select column " + item.column.ToSql() +
                  " not in GROUP BY");
            }
          }
          break;
        }
      }
      q.select.push_back(std::move(s));
    }
    if (q.select.empty()) {
      return Status::InvalidArgument("empty SELECT list");
    }
    return q;
  }

 private:
  Result<BoundColumn> Resolve(const AstColumnRef& ref, const BoundQuery& q) {
    BoundColumn out;
    int found = -1;
    for (int i = 0; i < q.num_relations(); ++i) {
      const TableDef* def = catalog_.FindTable(q.relations[static_cast<size_t>(i)]);
      if (!ref.qualifier.empty() &&
          q.aliases[static_cast<size_t>(i)] != ref.qualifier) {
        continue;
      }
      int ci = def->ColumnIndex(ref.column);
      if (ci < 0) continue;
      if (found >= 0) {
        return Status::InvalidArgument("ambiguous column " + ref.ToSql());
      }
      found = i;
      out.rel = i;
      out.col = ci;
      out.table = def->name;
      out.column = ref.column;
      out.type = def->columns[static_cast<size_t>(ci)].type;
    }
    if (found < 0) {
      return Status::NotFound("unresolved column " + ref.ToSql());
    }
    return out;
  }

  bool LiteralMatches(TypeId t, const Value& v) {
    if (v.is_null()) return true;
    switch (t) {
      case TypeId::kInt:
        return v.is_int();
      case TypeId::kDouble:
        return v.is_double() || v.is_int();
      case TypeId::kString:
        return v.is_string();
    }
    return false;
  }

  const SelectStmt& stmt_;
  const Catalog& catalog_;
};

}  // namespace

Result<BoundQuery> Bind(const SelectStmt& stmt, const Catalog& catalog) {
  Binder b(stmt, catalog);
  return b.Run();
}

Result<BoundQuery> ParseAndBind(const std::string& sql,
                                const Catalog& catalog) {
  SelectStmt stmt;
  TB_ASSIGN_OR_RETURN(stmt, ParseSelect(sql));
  return Bind(stmt, catalog);
}

}  // namespace tabbench
