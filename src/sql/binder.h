#ifndef TABBENCH_SQL_BINDER_H_
#define TABBENCH_SQL_BINDER_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "sql/ast.h"
#include "util/status.h"

namespace tabbench {

/// A column resolved against the FROM list: `rel` is the occurrence index in
/// BoundQuery::relations (distinguishing the two sides of a self-join),
/// `col` the column position in the base table.
struct BoundColumn {
  int rel = -1;
  int col = -1;
  std::string table;   // base table name
  std::string column;  // column name
  TypeId type = TypeId::kInt;

  bool SameAs(const BoundColumn& o) const {
    return rel == o.rel && col == o.col;
  }
  std::string ToString() const {
    return table + "[" + std::to_string(rel) + "]." + column;
  }
};

struct BoundJoin {
  BoundColumn left, right;
};

struct BoundFilter {
  BoundColumn column;
  Value literal;
};

/// `column IN (SELECT sub_column FROM sub_table GROUP BY .. HAVING
/// COUNT(*) cmp k)`.
struct BoundInFreq {
  BoundColumn column;
  std::string sub_table;
  std::string sub_column;
  char cmp = '<';
  int64_t k = 0;
};

struct BoundSelectItem {
  enum class Kind { kColumn, kCountStar, kCountDistinct };
  Kind kind = Kind::kColumn;
  BoundColumn column;  // kColumn / kCountDistinct
};

/// A type-checked query over the catalog — the form consumed by both the
/// optimizer and the executor.
struct BoundQuery {
  std::vector<std::string> relations;  // base-table name per FROM occurrence
  std::vector<std::string> aliases;
  std::vector<BoundSelectItem> select;
  std::vector<BoundColumn> group_by;
  std::vector<BoundJoin> joins;
  std::vector<BoundFilter> filters;
  std::vector<BoundInFreq> in_preds;

  bool IsAggregate() const;
  /// Number of distinct relation occurrences.
  int num_relations() const { return static_cast<int>(relations.size()); }
  /// All equality/IN/group-by predicates touching occurrence `rel`.
  std::vector<BoundColumn> ColumnsOf(int rel) const;
};

/// Resolves aliases and column references, type-checks literals, and
/// validates the aggregate shape (every plain select column must be a
/// GROUP BY column when aggregates are present).
Result<BoundQuery> Bind(const SelectStmt& stmt, const Catalog& catalog);

/// Convenience: parse + bind.
Result<BoundQuery> ParseAndBind(const std::string& sql,
                                const Catalog& catalog);

}  // namespace tabbench

#endif  // TABBENCH_SQL_BINDER_H_
