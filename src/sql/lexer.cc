#include "sql/lexer.h"

#include <cctype>
#include <set>

#include "util/strings.h"

namespace tabbench {

namespace {
const std::set<std::string>& Keywords() {
  static const std::set<std::string> kw = {
      "SELECT", "FROM", "WHERE", "GROUP",    "BY",    "HAVING",
      "COUNT",  "IN",   "AND",   "DISTINCT", "AS",    "NULL",
      "ORDER",  "ASC",  "DESC"};
  return kw;
}

std::string ToUpper(const std::string& s) {
  std::string out = s;
  for (auto& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}
}  // namespace

Result<std::vector<Token>> Lex(const std::string& sql) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.position = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(sql[j])) ||
                       sql[j] == '_')) {
        ++j;
      }
      std::string word = sql.substr(i, j - i);
      std::string upper = ToUpper(word);
      if (Keywords().count(upper)) {
        tok.type = TokenType::kKeyword;
        tok.text = upper;
      } else {
        tok.type = TokenType::kIdentifier;
        tok.text = word;
      }
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t j = i + 1;
      bool is_double = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(sql[j])) ||
                       sql[j] == '.')) {
        if (sql[j] == '.') is_double = true;
        ++j;
      }
      std::string num = sql.substr(i, j - i);
      if (is_double) {
        tok.type = TokenType::kDouble;
        tok.double_value = std::stod(num);
      } else {
        tok.type = TokenType::kInt;
        tok.int_value = std::stoll(num);
      }
      tok.text = num;
      i = j;
    } else if (c == '\'') {
      std::string text;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (sql[j] == '\'') {
          if (j + 1 < n && sql[j + 1] == '\'') {  // escaped quote
            text += '\'';
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        text += sql[j];
        ++j;
      }
      if (!closed) {
        return Status::InvalidArgument(
            StrFormat("unterminated string literal at offset %zu", i));
      }
      tok.type = TokenType::kString;
      tok.text = std::move(text);
      i = j;
    } else {
      switch (c) {
        case ',': tok.type = TokenType::kComma; break;
        case '(': tok.type = TokenType::kLParen; break;
        case ')': tok.type = TokenType::kRParen; break;
        case '.': tok.type = TokenType::kDot; break;
        case '*': tok.type = TokenType::kStar; break;
        case '=': tok.type = TokenType::kEq; break;
        case '<': tok.type = TokenType::kLt; break;
        case '>': tok.type = TokenType::kGt; break;
        default:
          return Status::InvalidArgument(
              StrFormat("unexpected character '%c' at offset %zu", c, i));
      }
      tok.text = std::string(1, c);
      ++i;
    }
    out.push_back(std::move(tok));
  }
  Token eof;
  eof.type = TokenType::kEof;
  eof.position = n;
  out.push_back(eof);
  return out;
}

}  // namespace tabbench
