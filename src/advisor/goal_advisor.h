#ifndef TABBENCH_ADVISOR_GOAL_ADVISOR_H_
#define TABBENCH_ADVISOR_GOAL_ADVISOR_H_

#include "advisor/advisor.h"
#include "core/goal.h"

namespace tabbench {

/// Outcome of goal-driven recommendation.
struct GoalRecommendation {
  Configuration config;
  /// Goal shortfall of the estimated CFC before/after (0 = goal met).
  double est_shortfall_before = 0.0;
  double est_shortfall_after = 0.0;
  double est_pages = 0.0;
  bool goal_met_by_estimates = false;
};

/// The recommender the paper argues for but no 2004 tool offered
/// (Sections 2.2 and 6): instead of minimizing total workload cost, accept
/// a quality-of-service goal G — a monotone step function over elapsed
/// times — and search for the *cheapest* configuration whose estimated
/// cumulative frequency curve satisfies CFC > G.
///
/// "Our use of curves depicting the cumulative frequencies of query
///  execution times ... bring forward the advantages of designing
///  recommenders that can accept quality of service goals specified by
///  constraints on these curves."
///
/// The search is the same candidate/greedy machinery as Advisor, scored by
/// shortfall reduction per page (ties broken by total-cost reduction), and
/// stops as soon as the estimated curve clears the goal — so it naturally
/// spends *less* space than a total-cost advisor when the goal is modest.
class GoalDrivenAdvisor {
 public:
  GoalDrivenAdvisor(ConfigView base, AdvisorOptions options,
                    PerformanceGoal goal)
      : base_(std::move(base)),
        options_(std::move(options)),
        goal_(std::move(goal)) {}

  Result<GoalRecommendation> Recommend(
      const std::vector<BoundQuery>& workload);

 private:
  ConfigView base_;
  AdvisorOptions options_;
  PerformanceGoal goal_;
};

}  // namespace tabbench

#endif  // TABBENCH_ADVISOR_GOAL_ADVISOR_H_
