#ifndef TABBENCH_ADVISOR_ADVISOR_H_
#define TABBENCH_ADVISOR_ADVISOR_H_

#include <string>
#include <vector>

#include "advisor/candidates.h"
#include "optimizer/config_view.h"
#include "optimizer/whatif.h"
#include "util/thread_pool.h"
#include "util/rng.h"
#include "util/status.h"

namespace tabbench {

/// Tuning of one configuration recommender. Together with HypotheticalRules
/// this is what distinguishes the modeled commercial systems (profiles.h).
struct AdvisorOptions {
  CandidateOptions candidates;
  HypotheticalRules whatif;
  /// Space budget for secondary structures, in pages. Negative = unlimited.
  /// The benchmark sets size(1C) - size(P), Section 3.2.3.
  double space_budget_pages = -1.0;
  /// Number of workload queries evaluated per what-if round (larger = more
  /// faithful, slower). The tools the paper tested compress workloads the
  /// same way (reference [4]).
  size_t eval_sample = 30;
  /// Maximum structures picked by the greedy search.
  int max_picks = 24;
  /// Minimum estimated improvement for a pick, as a fraction of the
  /// workload's current estimated cost. Structures that only help cheap
  /// queries fall below this bar — the recommenders optimize total workload
  /// cost and so "favor improving long-running queries (the ones that
  /// dominate total cost)" (Section 4.3); this knob is that behavior.
  double min_benefit_frac = 0.005;
  /// Give up entirely when more than this fraction of the workload is
  /// unanalyzable (System A on NREF3J).
  double max_unsupported_frac = 0.5;
  /// Update-aware extension (paper Section 4.4 calls update workloads "a
  /// valuable extension to the current benchmark"): expected single-row
  /// inserts per workload query. Every candidate's benefit is charged its
  /// estimated maintenance cost — descent I/O plus a leaf write per index
  /// (double for materialized views, which also maintain the view rows).
  /// 0 = the paper's read-only setting.
  double updates_per_query = 0.0;
  /// Multiplier on the benefit-per-page score of materialized-view units.
  /// System C's search strongly favors MV-based designs (paper Table 3:
  /// 12 of its 16 UnTH3J indexes sit on materialized views); this knob
  /// models that bias explicitly. 1.0 = neutral.
  double view_score_boost = 1.0;
  uint64_t seed = 7;
  /// Worker pool for the per-round candidate evaluation (each candidate's
  /// what-if costing is independent). The recommendation is identical with
  /// or without it: units are scored into per-unit slots and the argmax is
  /// taken sequentially with the same ascending-index tie-break the
  /// sequential loop applies. nullptr = evaluate sequentially. Not owned.
  ThreadPool* eval_pool = nullptr;
};

/// A produced recommendation with its what-if bookkeeping.
struct Recommendation {
  Configuration config;
  double est_cost_before = 0.0;
  double est_cost_after = 0.0;
  double est_pages = 0.0;
  size_t candidates_considered = 0;
};

/// A what-if configuration recommender (Section 2.2's model): candidate
/// generation from workload syntax, greedy benefit-per-page selection under
/// a space budget, all costs taken from hypothetical optimizer estimates
/// H(q, C_h, C_current) — never from actual executions. That restriction is
/// the paper's central observation about the commercial tools.
class Advisor {
 public:
  /// `base` is the planner view of the *currently built* configuration
  /// (statistics collected, P indexes in place). Held by value: the advisor
  /// outlives any temporary view handed to it.
  Advisor(ConfigView base, AdvisorOptions options)
      : base_(std::move(base)), options_(std::move(options)) {}

  /// Produces a recommendation for the workload, or NotFound when the
  /// profile cannot analyze it (no configuration is produced at all).
  Result<Recommendation> Recommend(const std::vector<BoundQuery>& workload);

 private:
  ConfigView base_;
  AdvisorOptions options_;
};

}  // namespace tabbench

#endif  // TABBENCH_ADVISOR_ADVISOR_H_
