#ifndef TABBENCH_ADVISOR_CANDIDATES_H_
#define TABBENCH_ADVISOR_CANDIDATES_H_

#include <vector>

#include "catalog/catalog.h"
#include "catalog/configuration.h"
#include "sql/binder.h"
#include "stats/table_stats.h"
#include "util/status.h"

namespace tabbench {

/// One candidate physical structure with its estimated footprint.
struct IndexCandidate {
  IndexDef def;
  double est_pages = 0;
};

struct ViewCandidate {
  ViewDef def;
  /// Indexes proposed over the view (built together with it).
  std::vector<IndexDef> indexes;
  double est_pages = 0;
};

struct CandidateSet {
  std::vector<IndexCandidate> indexes;
  std::vector<ViewCandidate> views;
  /// Queries the candidate generator could not analyze (profile
  /// limitations). When this dominates the workload, the advisor declines
  /// to produce a recommendation — modeling the paper's System A failing on
  /// NREF3J (Section 4.1.2).
  size_t unsupported_queries = 0;
};

/// Knobs that differentiate the advisor profiles' candidate generation.
struct CandidateOptions {
  /// Widest composite index proposed (the paper observed none wider than 4).
  int max_index_width = 4;
  /// Merge predicate/join columns with group-by columns into covering
  /// composite candidates.
  bool covering_composites = true;
  /// Propose materialized views (join views and single-table projections)
  /// plus indexes over them. Profile C only.
  bool enable_views = false;
  /// Analyze columns inside IN-frequency subqueries and propose indexes
  /// enabling index-only frequency walks. The 2004-era tools analyzed the
  /// outer query block only — nested frequency predicates were opaque to
  /// candidate generation — so profiles A and B leave this off; leaving
  /// those columns uncovered is a major reason their recommendations trail
  /// the 1C baseline on NREF2J.
  bool analyze_subquery_columns = false;
  /// Decline queries that apply COUNT(DISTINCT ..) across a self-join —
  /// the shape of family NREF3J. Models System A's failure to produce any
  /// recommendation for that family.
  bool reject_count_distinct_self_joins = false;
  /// Hard cap; generation keeps the first N distinct candidates.
  size_t max_candidates = 512;
};

/// Derives the candidate structures for a workload: single-column indexes on
/// every predicate/join/IN-subquery column, covering composites up to
/// max_index_width, and (optionally) join/projection views with their own
/// indexes.
CandidateSet GenerateCandidates(const std::vector<BoundQuery>& workload,
                                const Catalog& catalog,
                                const DatabaseStats& stats,
                                const CandidateOptions& opts);

}  // namespace tabbench

#endif  // TABBENCH_ADVISOR_CANDIDATES_H_
