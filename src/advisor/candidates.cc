#include "advisor/candidates.h"

#include <algorithm>
#include <set>

#include "optimizer/whatif.h"
#include "util/strings.h"

namespace tabbench {

namespace {

std::string IndexName(const IndexDef& def) {
  std::string name = "ix_" + def.target;
  for (const auto& c : def.columns) name += "_" + c;
  return name;
}

std::string ViewName(const ViewDef& def) {
  std::string name = "mv";
  for (const auto& t : def.tables) name += "_" + t;
  for (const auto& j : def.joins) name += "_" + j.left_column;
  name += StrFormat("_w%zu", def.projection.size());
  return name;
}

bool IsSelfJoinCountDistinct(const BoundQuery& q) {
  bool self_join = false;
  for (const auto& j : q.joins) {
    if (j.left.rel != j.right.rel &&
        j.left.table == j.right.table) {
      self_join = true;
    }
  }
  if (!self_join) return false;
  for (const auto& s : q.select) {
    if (s.kind == BoundSelectItem::Kind::kCountDistinct) return true;
  }
  return false;
}

class Generator {
 public:
  Generator(const Catalog& catalog, const DatabaseStats& stats,
            const CandidateOptions& opts)
      : catalog_(catalog), stats_(stats), opts_(opts) {}

  void AddQuery(const BoundQuery& q) {
    if (opts_.reject_count_distinct_self_joins &&
        IsSelfJoinCountDistinct(q)) {
      ++out_.unsupported_queries;
      return;
    }
    // Per relation occurrence: collect the column roles.
    for (int r = 0; r < q.num_relations(); ++r) {
      const std::string& table = q.relations[static_cast<size_t>(r)];
      std::vector<std::string> filter_cols, join_cols, group_cols;
      for (const auto& f : q.filters) {
        if (f.column.rel == r) Push(&filter_cols, f.column.column);
      }
      for (const auto& j : q.joins) {
        if (j.left.rel == r) Push(&join_cols, j.left.column);
        if (j.right.rel == r) Push(&join_cols, j.right.column);
      }
      for (const auto& g : q.group_by) {
        if (g.rel == r) Push(&group_cols, g.column);
      }
      // IN-frequency predicates: a single-column index on the subquery
      // column enables the index-only frequency walk — but only advisors
      // that analyze nested blocks propose it.
      for (const auto& p : q.in_preds) {
        if (p.column.rel == r) Push(&join_cols, p.column.column);
        if (opts_.analyze_subquery_columns) {
          AddIndex(p.sub_table, {p.sub_column});
        }
      }

      // Single-column candidates for every predicate column.
      for (const auto& c : filter_cols) AddIndex(table, {c});
      for (const auto& c : join_cols) AddIndex(table, {c});

      if (opts_.covering_composites) {
        // Seed with the most useful leading column (filters first, then
        // joins), extend with the remaining predicate and group columns.
        std::vector<std::string> lead = filter_cols;
        for (const auto& c : join_cols) Push(&lead, c);
        for (const auto& seed : lead) {
          std::vector<std::string> cols{seed};
          for (const auto& c : lead) {
            if (static_cast<int>(cols.size()) >= opts_.max_index_width) break;
            Push(&cols, c);
          }
          for (const auto& c : group_cols) {
            if (static_cast<int>(cols.size()) >= opts_.max_index_width) break;
            Push(&cols, c);
          }
          if (cols.size() > 1) AddIndex(table, cols);
        }
      }
    }
    if (opts_.enable_views) AddViewCandidates(q);
  }

  CandidateSet Take() { return std::move(out_); }

 private:
  static void Push(std::vector<std::string>* v, const std::string& c) {
    if (std::find(v->begin(), v->end(), c) == v->end()) v->push_back(c);
  }

  bool Indexable(const std::string& table, const std::string& col) const {
    const TableDef* def = catalog_.FindTable(table);
    if (def == nullptr) return false;
    int ci = def->ColumnIndex(col);
    if (ci < 0) return false;
    return def->columns[static_cast<size_t>(ci)].indexable;
  }

  void AddIndex(const std::string& table,
                const std::vector<std::string>& cols) {
    if (out_.indexes.size() >= opts_.max_candidates) return;
    for (const auto& c : cols) {
      if (!Indexable(table, c)) return;
    }
    IndexDef def;
    def.target = table;
    def.columns = cols;
    def.name = IndexName(def);
    for (const auto& existing : out_.indexes) {
      if (existing.def == def) return;
    }
    IndexCandidate cand;
    cand.est_pages =
        EstimateIndexPages(def, catalog_, stats_, /*leaf_fill=*/0.67,
                           /*target_rows=*/-1.0);
    cand.def = std::move(def);
    out_.indexes.push_back(std::move(cand));
  }

  void AddViewCandidates(const BoundQuery& q) {
    // Join views: one per PK/FK join edge between distinct tables,
    // projecting the columns the query needs from both sides. Non-key join
    // edges are skipped — pre-joining them materializes the very blow-ups
    // the advisor is supposed to avoid (and DB2-style MV candidates come
    // from referential join subgraphs).
    for (const auto& j : q.joins) {
      if (j.left.table == j.right.table) continue;
      auto fk = catalog_.ForeignKeyJoin(j.left.table, j.right.table);
      if (fk.empty()) {
        fk = catalog_.ForeignKeyJoin(j.right.table, j.left.table);
      }
      bool edge_in_fk = false;
      for (const auto& [child, parent] : fk) {
        if ((child.column == j.left.column &&
             parent.column == j.right.column) ||
            (child.column == j.right.column &&
             parent.column == j.left.column)) {
          edge_in_fk = true;
        }
      }
      if (!edge_in_fk) continue;
      ViewDef def;
      def.tables = {j.left.table, j.right.table};
      // Join on the complete FK correspondence, not just this edge.
      for (const auto& [child, parent] : fk) {
        def.joins.push_back(
            ViewJoin{child.table, child.column, parent.table, parent.column});
      }
      AppendNeededColumns(q, j.left.rel, j.left.table, &def);
      AppendNeededColumns(q, j.right.rel, j.right.table, &def);
      if (def.projection.empty()) continue;
      def.name = ViewName(def);
      AddView(q, def);
    }
    // Single-table projection views (vertical partitions) for wide tables
    // of which the query needs only a few columns.
    for (int r = 0; r < q.num_relations(); ++r) {
      const std::string& table = q.relations[static_cast<size_t>(r)];
      const TableDef* tdef = catalog_.FindTable(table);
      if (tdef == nullptr || tdef->num_columns() < 6) continue;
      ViewDef def;
      def.tables = {table};
      AppendNeededColumns(q, r, table, &def);
      if (def.projection.size() < 2 ||
          def.projection.size() + 2 >= tdef->num_columns()) {
        continue;
      }
      def.name = ViewName(def);
      AddView(q, def);
    }
  }

  void AppendNeededColumns(const BoundQuery& q, int rel,
                           const std::string& table, ViewDef* def) {
    auto add = [&](const std::string& col) {
      if (!Indexable(table, col)) return;
      if (def->ViewColumnIndex(table, col) >= 0) return;
      def->projection.push_back(ViewColumn{table, col, table + "_" + col});
    };
    for (const auto& j : q.joins) {
      if (j.left.rel == rel) add(j.left.column);
      if (j.right.rel == rel) add(j.right.column);
    }
    for (const auto& f : q.filters) {
      if (f.column.rel == rel) add(f.column.column);
    }
    for (const auto& p : q.in_preds) {
      if (p.column.rel == rel) add(p.column.column);
    }
    for (const auto& g : q.group_by) {
      if (g.rel == rel) add(g.column);
    }
    for (const auto& s : q.select) {
      if (s.kind != BoundSelectItem::Kind::kCountStar && s.column.rel == rel) {
        add(s.column.column);
      }
    }
  }

  void AddView(const BoundQuery& q, const ViewDef& def) {
    if (out_.views.size() >= opts_.max_candidates / 8) return;
    for (const auto& existing : out_.views) {
      if (existing.def.name == def.name) return;
    }
    ViewCandidate cand;
    cand.def = def;
    ViewSizeEstimate est = EstimateViewSize(def, catalog_, stats_);
    cand.est_pages = est.pages;
    // Index the view on its filter columns (seekable) followed by group-by
    // columns — the shapes the paper's System C recommended (Table 3).
    std::vector<std::string> lead;
    for (const auto& f : q.filters) {
      int vc = -1;
      for (size_t i = 0; i < def.projection.size(); ++i) {
        if (def.projection[i].table == f.column.table &&
            def.projection[i].column == f.column.column) {
          vc = static_cast<int>(i);
        }
      }
      if (vc >= 0) Push(&lead, def.projection[static_cast<size_t>(vc)].view_name);
    }
    for (const auto& g : q.group_by) {
      int vc = def.ViewColumnIndex(
          q.relations[static_cast<size_t>(g.rel)], g.column);
      if (vc >= 0) Push(&lead, def.projection[static_cast<size_t>(vc)].view_name);
    }
    if (!lead.empty()) {
      IndexDef idx;
      idx.target = def.name;
      idx.columns.assign(
          lead.begin(),
          lead.begin() + std::min<size_t>(lead.size(),
                                          static_cast<size_t>(opts_.max_index_width)));
      idx.name = IndexName(idx);
      cand.est_pages += EstimateIndexPages(idx, catalog_, stats_, 0.67,
                                           EstimateViewSize(def, catalog_,
                                                            stats_)
                                               .rows);
      cand.indexes.push_back(std::move(idx));
    }
    out_.views.push_back(std::move(cand));
  }

  const Catalog& catalog_;
  const DatabaseStats& stats_;
  const CandidateOptions& opts_;
  CandidateSet out_;
};

}  // namespace

CandidateSet GenerateCandidates(const std::vector<BoundQuery>& workload,
                                const Catalog& catalog,
                                const DatabaseStats& stats,
                                const CandidateOptions& opts) {
  Generator gen(catalog, stats, opts);
  for (const auto& q : workload) gen.AddQuery(q);
  return gen.Take();
}

}  // namespace tabbench
