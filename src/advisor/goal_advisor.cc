#include "advisor/goal_advisor.h"

#include <algorithm>
#include <numeric>

#include "optimizer/planner.h"
#include "util/strings.h"

namespace tabbench {

namespace {

double ShortfallOf(const PerformanceGoal& goal,
                   const std::vector<double>& est_costs) {
  return goal.Shortfall(CumulativeFrequency::FromValues(est_costs));
}

}  // namespace

Result<GoalRecommendation> GoalDrivenAdvisor::Recommend(
    const std::vector<BoundQuery>& workload) {
  if (workload.empty()) {
    return Status::InvalidArgument("empty workload");
  }
  CandidateSet cands = GenerateCandidates(workload, *base_.catalog,
                                          *base_.stats, options_.candidates);
  if (static_cast<double>(cands.unsupported_queries) >
      options_.max_unsupported_frac * static_cast<double>(workload.size())) {
    return Status::NotFound("goal-driven recommender could not analyze the "
                            "workload; no configuration produced");
  }

  // Selectable units (indexes; views with their indexes as atomic picks).
  struct Unit {
    bool is_view = false;
    IndexCandidate index;
    ViewCandidate view;
    double pages = 0.0;
  };
  std::vector<Unit> units;
  for (auto& ic : cands.indexes) {
    units.push_back(Unit{false, ic, {}, ic.est_pages});
  }
  for (auto& vc : cands.views) {
    units.push_back(Unit{true, {}, vc, vc.est_pages});
  }

  ConfigView whatif_base = base_;
  DatabaseStats degraded;
  if (options_.whatif.uniform_value_assumption) {
    degraded = DegradeToUniform(*base_.stats);
    whatif_base.stats = &degraded;
  }

  auto make_config = [&](const std::vector<size_t>& picks) {
    Configuration config;
    config.name = "G";
    for (size_t ui : picks) {
      const Unit& u = units[ui];
      if (u.is_view) {
        config.views.push_back(u.view.def);
        for (const auto& idx : u.view.indexes) {
          config.indexes.push_back(idx);
        }
      } else {
        config.indexes.push_back(u.index.def);
      }
    }
    return config;
  };

  // The goal constrains the whole workload's curve, so evaluate every
  // query (goal satisfaction cannot be sampled away).
  std::vector<double> cur_cost(workload.size(), 0.0);
  {
    Configuration empty;
    ConfigView v;
    TB_ASSIGN_OR_RETURN(v,
                        MakeHypotheticalView(empty, whatif_base,
                                             options_.whatif));
    for (size_t i = 0; i < workload.size(); ++i) {
      auto c = EstimateCost(workload[i], v);
      if (!c.ok()) return c.status();
      cur_cost[i] = *c;
    }
  }

  GoalRecommendation rec;
  rec.est_shortfall_before = ShortfallOf(goal_, cur_cost);

  std::vector<size_t> picks;
  std::vector<bool> taken(units.size(), false);
  double pages_used = 0.0;
  double cur_shortfall = rec.est_shortfall_before;

  for (int round = 0; round < options_.max_picks && cur_shortfall > 0.0;
       ++round) {
    int best_unit = -1;
    double best_score = 0.0;
    double best_shortfall = cur_shortfall;
    std::vector<double> best_costs;

    for (size_t ui = 0; ui < units.size(); ++ui) {
      if (taken[ui]) continue;
      const Unit& u = units[ui];
      if (options_.space_budget_pages >= 0.0 &&
          pages_used + u.pages > options_.space_budget_pages) {
        continue;
      }
      std::vector<size_t> trial = picks;
      trial.push_back(ui);
      auto v = MakeHypotheticalView(make_config(trial), whatif_base,
                                    options_.whatif);
      if (!v.ok()) return v.status();
      std::vector<double> costs(workload.size());
      for (size_t i = 0; i < workload.size(); ++i) {
        auto c = EstimateCost(workload[i], *v);
        if (!c.ok()) return c.status();
        costs[i] = *c;
      }
      double shortfall = ShortfallOf(goal_, costs);
      double gain = cur_shortfall - shortfall;
      // Primary objective: shortfall per page. Secondary tie-break: total
      // cost reduction per page scaled down so it only orders equal-gain
      // picks.
      double total_before =
          std::accumulate(cur_cost.begin(), cur_cost.end(), 0.0);
      double total_after = std::accumulate(costs.begin(), costs.end(), 0.0);
      double score = gain / std::max(1.0, u.pages) +
                     1e-9 * (total_before - total_after) /
                         std::max(1.0, u.pages);
      if (gain <= 0.0) continue;
      if (score > best_score) {
        best_score = score;
        best_unit = static_cast<int>(ui);
        best_shortfall = shortfall;
        best_costs = std::move(costs);
      }
    }
    if (best_unit < 0) break;
    taken[static_cast<size_t>(best_unit)] = true;
    picks.push_back(static_cast<size_t>(best_unit));
    pages_used += units[static_cast<size_t>(best_unit)].pages;
    cur_cost = std::move(best_costs);
    cur_shortfall = best_shortfall;
  }

  rec.config = make_config(picks);
  rec.est_shortfall_after = cur_shortfall;
  rec.est_pages = pages_used;
  rec.goal_met_by_estimates = cur_shortfall <= 0.0;
  return rec;
}

}  // namespace tabbench
