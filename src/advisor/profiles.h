#ifndef TABBENCH_ADVISOR_PROFILES_H_
#define TABBENCH_ADVISOR_PROFILES_H_

#include "advisor/advisor.h"

namespace tabbench {

/// Advisor profiles modeling the behavior classes of the paper's three
/// anonymized commercial recommenders. The modeling targets the *observed
/// behaviors* (Sections 4-5), not vendor internals:
///
///   System A — index-only advisor; credits covering/index-only plans for
///   hypothetical indexes, so it finds real wins (R clearly beats P on
///   NREF2J, Fig. 3) — but it cannot analyze COUNT(DISTINCT) over
///   self-joins, so it produces NO recommendation for family NREF3J
///   (Section 4.1.2, Fig. 4).
///
///   System B — index-only advisor with a conservative what-if mode that
///   does not credit index-only access on unbuilt indexes; with NREF2J's
///   benefits living almost entirely in covering scans, it recommends
///   near-useless indexes (R ~= P, Fig. 5), while NREF3J's literal filters
///   still let it find seekable indexes (R between P and 1C, Fig. 6).
///
///   System C — indexes plus materialized views (the paper ran it on the
///   TPC-H databases; its recommendations include indexes on views over
///   Lineitem and Lineitem x Partsupp, Table 3).
AdvisorOptions SystemAProfile();
AdvisorOptions SystemBProfile();
AdvisorOptions SystemCProfile();

/// Name -> profile ("A", "B", "C").
AdvisorOptions ProfileByName(const std::string& name);

}  // namespace tabbench

#endif  // TABBENCH_ADVISOR_PROFILES_H_
