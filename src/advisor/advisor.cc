#include "advisor/advisor.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "optimizer/planner.h"
#include "util/strings.h"

namespace tabbench {

namespace {

/// A selectable unit: one index, or one view together with its indexes.
struct Unit {
  bool is_view = false;
  IndexCandidate index;
  ViewCandidate view;
  double pages = 0.0;

  const std::string& Target() const {
    return is_view ? view.def.name : index.def.target;
  }
  /// True when the unit could change plans of `q`.
  bool RelevantTo(const BoundQuery& q) const {
    auto touches = [&q](const std::string& table) {
      for (const auto& r : q.relations) {
        if (r == table) return true;
      }
      return false;
    };
    if (is_view) {
      for (const auto& t : view.def.tables) {
        if (touches(t)) return true;
      }
      return false;
    }
    // Index on a base table: relevant if the query touches the table,
    // including via an IN-frequency subquery over it.
    if (touches(index.def.target)) return true;
    for (const auto& p : q.in_preds) {
      if (p.sub_table == index.def.target) return true;
    }
    return false;
  }
};

Configuration MakeConfig(const std::vector<const Unit*>& chosen) {
  Configuration config;
  config.name = "R";
  for (const Unit* u : chosen) {
    if (u->is_view) {
      config.views.push_back(u->view.def);
      for (const auto& idx : u->view.indexes) config.indexes.push_back(idx);
    } else {
      config.indexes.push_back(u->index.def);
    }
  }
  return config;
}

}  // namespace

Result<Recommendation> Advisor::Recommend(
    const std::vector<BoundQuery>& workload) {
  if (workload.empty()) {
    return Status::InvalidArgument("empty workload");
  }
  CandidateSet cands = GenerateCandidates(workload, *base_.catalog,
                                          *base_.stats, options_.candidates);
  if (static_cast<double>(cands.unsupported_queries) >
      options_.max_unsupported_frac * static_cast<double>(workload.size())) {
    return Status::NotFound(StrFormat(
        "recommender could not analyze %zu of %zu workload queries; "
        "no configuration produced",
        cands.unsupported_queries, workload.size()));
  }

  std::vector<Unit> units;
  for (auto& ic : cands.indexes) {
    Unit u;
    u.is_view = false;
    u.index = ic;
    u.pages = ic.est_pages;
    units.push_back(std::move(u));
  }
  for (auto& vc : cands.views) {
    Unit u;
    u.is_view = true;
    u.view = vc;
    u.pages = vc.est_pages;
    units.push_back(std::move(u));
  }

  // Era-faithful estimation: what-if costing may ignore value-distribution
  // detail (uniform densities). The degraded copy lives for this call.
  ConfigView whatif_base = base_;
  DatabaseStats degraded;
  if (options_.whatif.uniform_value_assumption) {
    degraded = DegradeToUniform(*base_.stats);
    whatif_base.stats = &degraded;
  }

  // Evaluation sample: a deterministic subset of the workload.
  std::vector<const BoundQuery*> sample;
  {
    Rng rng(options_.seed);
    std::vector<size_t> idx = rng.SampleWithoutReplacement(
        workload.size(), std::min(options_.eval_sample, workload.size()));
    std::sort(idx.begin(), idx.end());
    for (size_t i : idx) sample.push_back(&workload[i]);
  }

  // Baseline hypothetical costs (the empty recommendation = P).
  std::vector<const Unit*> chosen;
  std::vector<double> cur_cost(sample.size(), 0.0);
  {
    Configuration empty;
    ConfigView v;
    TB_ASSIGN_OR_RETURN(v, MakeHypotheticalView(empty, whatif_base, options_.whatif));
    for (size_t i = 0; i < sample.size(); ++i) {
      auto c = EstimateCost(*sample[i], v);
      if (!c.ok()) return c.status();
      cur_cost[i] = *c;
    }
  }
  double before =
      std::accumulate(cur_cost.begin(), cur_cost.end(), 0.0,
                      [](double a, double b) { return a + b; });
  double pages_used = 0.0;
  std::vector<bool> taken(units.size(), false);

  // Scored outcome of trying one unit in one round. Units are evaluated
  // into per-unit slots — in parallel when options_.eval_pool is set, since
  // each trial's what-if costing is independent and read-only — and the
  // winner is then chosen by a sequential scan, so the pick (and therefore
  // the whole recommendation) is identical either way.
  struct UnitEval {
    bool eligible = false;  // passed budget + benefit bars
    double benefit = 0.0;
    double score = 0.0;
    std::vector<double> costs;
    Status status;
  };

  for (int round = 0; round < options_.max_picks; ++round) {
    double current_total =
        std::accumulate(cur_cost.begin(), cur_cost.end(), 0.0,
                        [](double a, double b) { return a + b; });
    double min_benefit =
        std::max(1e-6, options_.min_benefit_frac * current_total);

    std::vector<UnitEval> evals(units.size());
    ParallelFor(
        options_.eval_pool, units.size(),
        [&](size_t ui) {
          UnitEval& ev = evals[ui];
          if (taken[ui]) return;
          const Unit& u = units[ui];
          if (options_.space_budget_pages >= 0.0 &&
              pages_used + u.pages > options_.space_budget_pages) {
            return;
          }
          // Hypothetical view with the unit added.
          std::vector<const Unit*> trial = chosen;
          trial.push_back(&u);
          Configuration config = MakeConfig(trial);
          auto v = MakeHypotheticalView(config, whatif_base, options_.whatif);
          if (!v.ok()) {
            ev.status = v.status();
            return;
          }

          double benefit = 0.0;
          std::vector<double> costs = cur_cost;
          for (size_t i = 0; i < sample.size(); ++i) {
            if (!u.RelevantTo(*sample[i])) continue;
            auto c = EstimateCost(*sample[i], *v);
            if (!c.ok()) {
              ev.status = c.status();
              return;
            }
            costs[i] = *c;
            benefit += cur_cost[i] - *c;
          }
          // Update-aware charging: maintaining the structure costs I/O per
          // insert (descent + leaf write; views also re-derive their rows).
          if (options_.updates_per_query > 0.0) {
            const CostParams& cp = base_.params;
            double per_insert =
                2.0 * cp.random_io_seconds + cp.page_io_seconds;
            double structures = u.is_view
                                    ? 2.0 * (1.0 + static_cast<double>(
                                                       u.view.indexes.size()))
                                    : 1.0;
            benefit -= options_.updates_per_query *
                       static_cast<double>(sample.size()) * per_insert *
                       structures;
          }
          if (benefit <= min_benefit) return;
          double score = benefit / std::max(1.0, u.pages);
          if (u.is_view) score *= options_.view_score_boost;
          ev.eligible = true;
          ev.benefit = benefit;
          ev.score = score;
          ev.costs = std::move(costs);
        },
        [&](size_t ui, Status s) { evals[ui].status = std::move(s); });

    int best_unit = -1;
    double best_score = 0.0;
    for (size_t ui = 0; ui < units.size(); ++ui) {
      if (!evals[ui].status.ok()) return evals[ui].status;
      // Strict > keeps the sequential loop's ascending-index tie-break.
      if (evals[ui].eligible && evals[ui].score > best_score) {
        best_score = evals[ui].score;
        best_unit = static_cast<int>(ui);
      }
    }

    if (best_unit < 0) break;
    std::vector<double> best_costs =
        std::move(evals[static_cast<size_t>(best_unit)].costs);
    taken[static_cast<size_t>(best_unit)] = true;
    chosen.push_back(&units[static_cast<size_t>(best_unit)]);
    pages_used += units[static_cast<size_t>(best_unit)].pages;
    cur_cost = std::move(best_costs);
  }

  Recommendation rec;
  rec.config = MakeConfig(chosen);
  rec.est_cost_before = before;
  rec.est_cost_after =
      std::accumulate(cur_cost.begin(), cur_cost.end(), 0.0,
                      [](double a, double b) { return a + b; });
  rec.est_pages = pages_used;
  rec.candidates_considered = units.size();
  return rec;
}

}  // namespace tabbench
