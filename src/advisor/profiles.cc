#include "advisor/profiles.h"

namespace tabbench {

AdvisorOptions SystemAProfile() {
  AdvisorOptions o;
  o.candidates.enable_views = false;
  o.candidates.covering_composites = true;
  o.candidates.reject_count_distinct_self_joins = true;
  o.whatif.credit_index_only = true;
  o.whatif.clustering_pessimism = 1.0;
  o.whatif.composite_ndv_product = false;
  o.whatif.uniform_value_assumption = true;
  o.seed = 11;
  return o;
}

AdvisorOptions SystemBProfile() {
  AdvisorOptions o;
  o.candidates.enable_views = false;
  o.candidates.covering_composites = true;
  o.whatif.credit_index_only = false;  // the conservative what-if
  o.whatif.clustering_pessimism = 1.0;
  o.whatif.composite_ndv_product = false;
  o.whatif.uniform_value_assumption = true;
  o.seed = 13;
  return o;
}

AdvisorOptions SystemCProfile() {
  AdvisorOptions o;
  o.candidates.enable_views = true;
  o.candidates.analyze_subquery_columns = true;
  o.candidates.covering_composites = true;
  o.whatif.credit_index_only = true;
  o.whatif.clustering_pessimism = 1.0;
  o.whatif.composite_ndv_product = true;
  o.whatif.uniform_value_assumption = true;
  o.view_score_boost = 6.0;
  // Aggressive workload compression: C evaluates candidates on a small
  // sample. On uniform data the sample generalizes (Fig 9); on skewed data
  // it misses the patterns the sample did not cover (Fig 8).
  o.eval_sample = 15;
  o.seed = 17;
  return o;
}

AdvisorOptions ProfileByName(const std::string& name) {
  if (name == "A") return SystemAProfile();
  if (name == "B") return SystemBProfile();
  return SystemCProfile();
}

}  // namespace tabbench
