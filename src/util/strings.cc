#include "util/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace tabbench {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (auto& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

std::string HumanSeconds(double seconds) {
  if (seconds < 1e-3) return StrFormat("%.0fus", seconds * 1e6);
  if (seconds < 1.0) return StrFormat("%.1fms", seconds * 1e3);
  if (seconds < 120.0) return StrFormat("%.1fs", seconds);
  if (seconds < 7200.0) return StrFormat("%.1fmin", seconds / 60.0);
  return StrFormat("%.1fh", seconds / 3600.0);
}

std::string HumanBytes(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  return StrFormat("%.1f %s", bytes, units[u]);
}

}  // namespace tabbench
