#include "util/retry.h"

#include <algorithm>
#include <thread>

#include "util/rng.h"

namespace tabbench {

double RetryPolicy::BackoffSeconds(int attempt) const {
  if (attempt <= 0) return 0.0;
  double delay = initial_backoff_seconds;
  for (int i = 1; i < attempt; ++i) {
    delay *= backoff_multiplier;
    if (delay >= max_backoff_seconds) break;
  }
  delay = std::min(delay, max_backoff_seconds);
  if (jitter_fraction > 0.0) {
    // One draw per (seed, attempt); the golden-ratio stride decorrelates
    // consecutive attempts under the same seed.
    Rng rng(seed + 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(attempt));
    double factor = 1.0 + jitter_fraction * (2.0 * rng.UniformDouble() - 1.0);
    delay *= factor;
  }
  return std::max(delay, 0.0);
}

Status SleepWithCancellation(
    double seconds, const CancellationToken& cancel,
    std::optional<std::chrono::steady_clock::time_point> deadline) {
  auto now = std::chrono::steady_clock::now();
  auto wake = now + std::chrono::duration_cast<std::chrono::steady_clock::
                                                   duration>(
                        std::chrono::duration<double>(
                            std::max(seconds, 0.0)));
  while (true) {
    if (cancel.cancelled()) {
      return Status::Cancelled("cancelled during retry backoff");
    }
    now = std::chrono::steady_clock::now();
    if (deadline.has_value() && now >= *deadline) {
      return Status::Timeout("deadline expired during retry backoff");
    }
    if (now >= wake) return Status::OK();
    auto next = wake;
    if (deadline.has_value()) next = std::min(next, *deadline);
    auto slice = std::min(next - now,
                          std::chrono::steady_clock::duration(
                              std::chrono::milliseconds(1)));
    std::this_thread::sleep_for(slice);
  }
}

}  // namespace tabbench
