#include "util/retry.h"

#include <algorithm>
#include <thread>

#include "util/rng.h"

namespace tabbench {

double RetryPolicy::BackoffSeconds(int attempt) const {
  if (attempt <= 0) return 0.0;
  double delay = initial_backoff_seconds;
  for (int i = 1; i < attempt; ++i) {
    delay *= backoff_multiplier;
    if (delay >= max_backoff_seconds) break;
  }
  delay = std::min(delay, max_backoff_seconds);
  if (jitter_fraction > 0.0) {
    // One draw per (seed, attempt); the golden-ratio stride decorrelates
    // consecutive attempts under the same seed.
    Rng rng(seed + 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(attempt));
    double factor = 1.0 + jitter_fraction * (2.0 * rng.UniformDouble() - 1.0);
    delay *= factor;
  }
  return std::max(delay, 0.0);
}

Status SleepWithCancellation(
    double seconds, const CancellationToken& cancel,
    std::optional<std::chrono::steady_clock::time_point> deadline) {
  // ceil, not duration_cast: truncating the conversion shortens every sleep
  // by up to one clock tick, so a caller requesting a sub-millisecond
  // backoff was charged *less* than it asked for (and a zero-duration
  // conversion skipped the sleep entirely). Rounding up guarantees the full
  // requested duration elapses before OK.
  auto wake = std::chrono::steady_clock::now() +
              std::chrono::ceil<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(std::max(seconds, 0.0)));
  // The cancel/deadline checks lead the loop, so even a zero or sub-slice
  // request performs at least one of each before returning.
  while (true) {
    if (cancel.cancelled()) {
      return Status::Cancelled("cancelled during retry backoff");
    }
    auto now = std::chrono::steady_clock::now();
    if (deadline.has_value() && now >= *deadline) {
      return Status::Timeout("deadline expired during retry backoff");
    }
    if (now >= wake) return Status::OK();
    // sleep_until an absolute point (never a computed slice, which rounds
    // to zero for sub-millisecond remainders and turns the loop into a
    // busy spin): the next poll tick, capped by wake and the deadline.
    auto next = now + std::chrono::milliseconds(1);
    if (next > wake) next = wake;
    if (deadline.has_value() && next > *deadline) next = *deadline;
    std::this_thread::sleep_until(next);
  }
}

}  // namespace tabbench
