#include "util/run_journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/crc32c.h"

namespace tabbench {
namespace {

// Frame payloads start with a record type byte so a reader never confuses a
// header with a query record even if a file is truncated and re-appended.
constexpr uint8_t kHeaderRecord = 0;
constexpr uint8_t kQueryRecord = 1;
constexpr uint8_t kEventRecord = 2;  // service routing/health decisions
constexpr uint8_t kIndexBuildRecord = 3;  // online index-build transitions
constexpr uint32_t kJournalVersion = 1;
constexpr char kMagic[8] = {'t', 'b', 'j', 'o', 'u', 'r', 'n', 'l'};
// Frames larger than this are assumed to be garbage length prefixes from a
// torn write, not real records (the largest traces in a full campaign are
// a few MB).
constexpr uint32_t kMaxFrameBytes = 256u << 20;

// ---------------------------------------------------------------- encoding
// Little-endian, fixed-width. Doubles travel as their IEEE-754 bit pattern:
// resume must restore the simulated clock *bit for bit*, so no text
// round-trip is acceptable.

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}
void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}
void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}
void PutDouble(std::string* out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}
void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

// Bounds-checked cursor over one frame payload. Any short read marks the
// decoder failed; callers check ok() once at the end.
class Decoder {
 public:
  Decoder(const char* data, size_t size) : p_(data), end_(data + size) {}

  uint8_t U8() {
    if (!Need(1)) return 0;
    return static_cast<uint8_t>(*p_++);
  }
  uint32_t U32() {
    if (!Need(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(*p_++)) << (8 * i);
    }
    return v;
  }
  uint64_t U64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(*p_++)) << (8 * i);
    }
    return v;
  }
  double Double() {
    uint64_t bits = U64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string String() {
    uint32_t n = U32();
    if (!Need(n)) return {};
    std::string s(p_, n);
    p_ += n;
    return s;
  }

  bool ok() const { return ok_ && p_ == end_; }
  size_t remaining() const { return static_cast<size_t>(end_ - p_); }

 private:
  bool Need(size_t n) {
    if (!ok_ || static_cast<size_t>(end_ - p_) < n) {
      ok_ = false;
      return false;
    }
    return true;
  }
  const char* p_;
  const char* end_;
  bool ok_ = true;
};

std::string EncodeHeader(const JournalHeader& h) {
  std::string out;
  PutU8(&out, kHeaderRecord);
  out.append(kMagic, sizeof(kMagic));
  PutU32(&out, kJournalVersion);
  PutU32(&out, h.query_count);
  PutU32(&out, static_cast<uint32_t>(h.repetitions));
  PutU8(&out, h.collect_estimates ? 1 : 0);
  PutU8(&out, h.cold_start ? 1 : 0);
  PutU64(&out, h.fault_scope_salt);
  PutDouble(&out, h.timeout_seconds);
  PutU32(&out, static_cast<uint32_t>(h.retry.max_attempts));
  PutDouble(&out, h.retry.initial_backoff_seconds);
  PutDouble(&out, h.retry.backoff_multiplier);
  PutDouble(&out, h.retry.max_backoff_seconds);
  PutDouble(&out, h.retry.jitter_fraction);
  PutU64(&out, h.retry.seed);
  PutU32(&out, static_cast<uint32_t>(h.sql.size()));
  for (const auto& q : h.sql) PutString(&out, q);
  PutU32(&out, static_cast<uint32_t>(h.metadata.size()));
  for (const auto& [k, v] : h.metadata) {
    PutString(&out, k);
    PutString(&out, v);
  }
  return out;
}

bool DecodeHeader(const std::string& payload, JournalHeader* h) {
  Decoder d(payload.data(), payload.size());
  if (d.U8() != kHeaderRecord) return false;
  char magic[sizeof(kMagic)];
  for (char& c : magic) c = static_cast<char>(d.U8());
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) return false;
  if (d.U32() != kJournalVersion) return false;
  h->query_count = d.U32();
  h->repetitions = static_cast<int>(d.U32());
  h->collect_estimates = d.U8() != 0;
  h->cold_start = d.U8() != 0;
  h->fault_scope_salt = d.U64();
  h->timeout_seconds = d.Double();
  h->retry.max_attempts = static_cast<int>(d.U32());
  h->retry.initial_backoff_seconds = d.Double();
  h->retry.backoff_multiplier = d.Double();
  h->retry.max_backoff_seconds = d.Double();
  h->retry.jitter_fraction = d.Double();
  h->retry.seed = d.U64();
  uint32_t n_sql = d.U32();
  h->sql.clear();
  for (uint32_t i = 0; i < n_sql; ++i) h->sql.push_back(d.String());
  uint32_t n_meta = d.U32();
  h->metadata.clear();
  for (uint32_t i = 0; i < n_meta; ++i) {
    std::string k = d.String();
    h->metadata[k] = d.String();
  }
  return d.ok();
}

std::string EncodeQueryRecord(const JournalQueryRecord& r) {
  std::string out;
  PutU8(&out, kQueryRecord);
  PutU32(&out, r.query_index);
  PutDouble(&out, r.seconds);
  PutU8(&out, r.timed_out ? 1 : 0);
  PutU8(&out, r.failed ? 1 : 0);
  PutU32(&out, r.attempts);
  PutU8(&out, r.has_estimate ? 1 : 0);
  PutDouble(&out, r.estimate);
  PutU64(&out, r.pool_hit_delta);
  PutU64(&out, r.pool_miss_delta);
  PutU32(&out, static_cast<uint32_t>(r.attempt_log.size()));
  for (const auto& a : r.attempt_log) {
    PutU8(&out, static_cast<uint8_t>(a.code));
    PutString(&out, a.message);
    PutU8(&out, a.timed_out ? 1 : 0);
    PutU64(&out, a.trace.size());
    for (const TraceEvent& e : a.trace) {
      PutU8(&out, static_cast<uint8_t>(e.kind));
      PutU64(&out, e.arg);
    }
  }
  PutU32(&out, r.shard_id);  // optional trailer; absent in old journals
  return out;
}

bool DecodeQueryRecord(const std::string& payload, JournalQueryRecord* r) {
  Decoder d(payload.data(), payload.size());
  if (d.U8() != kQueryRecord) return false;
  r->query_index = d.U32();
  r->seconds = d.Double();
  r->timed_out = d.U8() != 0;
  r->failed = d.U8() != 0;
  r->attempts = d.U32();
  r->has_estimate = d.U8() != 0;
  r->estimate = d.Double();
  r->pool_hit_delta = d.U64();
  r->pool_miss_delta = d.U64();
  uint32_t n_attempts = d.U32();
  r->attempt_log.clear();
  for (uint32_t i = 0; i < n_attempts && i < payload.size(); ++i) {
    JournalAttempt a;
    a.code = static_cast<Status::Code>(d.U8());
    a.message = d.String();
    a.timed_out = d.U8() != 0;
    uint64_t n_events = d.U64();
    if (n_events > payload.size()) return false;  // bogus count
    a.trace.reserve(n_events);
    for (uint64_t e = 0; e < n_events; ++e) {
      TraceEvent ev;
      ev.kind = static_cast<TraceEvent::Kind>(d.U8());
      ev.arg = d.U64();
      a.trace.push_back(ev);
    }
    r->attempt_log.push_back(std::move(a));
  }
  // Optional trailer, absent in journals written before shards existed:
  // those decode to shard 0 (the unsharded writer id) and still pass ok()
  // because the conditional read consumes exactly the remaining bytes.
  if (d.remaining() >= 4) r->shard_id = d.U32();
  return d.ok();
}

std::string EncodeEvent(const JournalServiceEvent& e) {
  std::string out;
  PutU8(&out, kEventRecord);
  PutU64(&out, e.sequence);
  PutDouble(&out, e.clock_seconds);
  PutU32(&out, e.shard_id);
  PutU64(&out, e.domain);
  PutString(&out, e.kind);
  PutString(&out, e.detail);
  return out;
}

bool DecodeEvent(const std::string& payload, JournalServiceEvent* e) {
  Decoder d(payload.data(), payload.size());
  if (d.U8() != kEventRecord) return false;
  e->sequence = d.U64();
  e->clock_seconds = d.Double();
  e->shard_id = d.U32();
  e->domain = d.U64();
  e->kind = d.String();
  e->detail = d.String();
  return d.ok();
}

std::string EncodeIndexBuild(const JournalIndexBuildRecord& r) {
  std::string out;
  PutU8(&out, kIndexBuildRecord);
  PutU32(&out, r.build_id);
  PutU8(&out, r.state);
  PutU32(&out, r.op_index);
  PutU64(&out, r.side_log_entries);
  PutDouble(&out, r.clock_seconds);
  PutString(&out, r.index_name);
  PutString(&out, r.target);
  PutU32(&out, static_cast<uint32_t>(r.columns.size()));
  for (const auto& c : r.columns) PutString(&out, c);
  return out;
}

bool DecodeIndexBuild(const std::string& payload,
                      JournalIndexBuildRecord* r) {
  Decoder d(payload.data(), payload.size());
  if (d.U8() != kIndexBuildRecord) return false;
  r->build_id = d.U32();
  r->state = d.U8();
  r->op_index = d.U32();
  r->side_log_entries = d.U64();
  r->clock_seconds = d.Double();
  r->index_name = d.String();
  r->target = d.String();
  uint32_t n_cols = d.U32();
  r->columns.clear();
  for (uint32_t i = 0; i < n_cols && i < payload.size(); ++i) {
    r->columns.push_back(d.String());
  }
  return d.ok();
}

std::string Frame(const std::string& payload) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  PutU32(&out, MaskCrc32c(Crc32c(payload)));
  out.append(payload);
  return out;
}

Status WriteAndSync(int fd, const std::string& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("journal write failed: ") +
                              std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    return Status::Internal(std::string("journal fsync failed: ") +
                            std::strerror(errno));
  }
  return Status::OK();
}

/// Chaos-test arming (see set_crash_after_appends): mirrors TABBENCH_FAULTS'
/// env-driven fault schedules so a child benchmark process can be told to
/// die mid-run without any API plumbing.
int CrashAfterFromEnv() {
  const char* v = std::getenv("TABBENCH_JOURNAL_CRASH_AFTER");
  return v == nullptr ? -1 : std::atoi(v);
}

uint32_t ReadU32At(const std::string& buf, size_t off) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(buf[off + i])) << (8 * i);
  }
  return v;
}

}  // namespace

Result<RunJournal> LoadRunJournal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::InvalidArgument("cannot open run journal: " + path);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string buf = ss.str();

  RunJournal journal;
  size_t off = 0;
  bool have_header = false;
  while (off < buf.size()) {
    // A frame cut short by a crash — header bytes, payload bytes, or a
    // garbage length written before the payload made it — is the torn
    // tail: stop here, and OpenAppend truncates to this offset.
    if (buf.size() - off < 8) break;
    uint32_t len = ReadU32At(buf, off);
    uint32_t stored_crc = ReadU32At(buf, off + 4);
    if (len > kMaxFrameBytes || off + 8 + len > buf.size()) break;
    std::string payload = buf.substr(off + 8, len);
    if (MaskCrc32c(Crc32c(payload)) != stored_crc) {
      if (off + 8 + len == buf.size()) break;  // final frame: torn write
      // Bytes *behind* valid frames went bad: that is bit rot or an
      // overwrite, not a crash, and resuming past it would silently skip
      // work. Surface the offset for inspection.
      return Status::DataLoss("run journal checksum mismatch at offset " +
                              std::to_string(off) + ": " + path);
    }
    if (!have_header) {
      if (!DecodeHeader(payload, &journal.header)) {
        return Status::InvalidArgument("not a tabbench run journal: " + path);
      }
      have_header = true;
    } else if (!payload.empty() &&
               static_cast<uint8_t>(payload[0]) == kEventRecord) {
      JournalServiceEvent event;
      if (!DecodeEvent(payload, &event)) {
        return Status::DataLoss(
            "run journal event undecodable at offset " + std::to_string(off) +
            ": " + path);
      }
      journal.events.push_back(std::move(event));
    } else if (!payload.empty() &&
               static_cast<uint8_t>(payload[0]) == kIndexBuildRecord) {
      JournalIndexBuildRecord rec;
      if (!DecodeIndexBuild(payload, &rec)) {
        return Status::DataLoss(
            "run journal index-build record undecodable at offset " +
            std::to_string(off) + ": " + path);
      }
      journal.index_builds.push_back(std::move(rec));
    } else {
      JournalQueryRecord rec;
      if (!DecodeQueryRecord(payload, &rec)) {
        return Status::DataLoss(
            "run journal record undecodable at offset " + std::to_string(off) +
            ": " + path);
      }
      journal.records.push_back(std::move(rec));
    }
    off += 8 + len;
  }
  if (!have_header) {
    return Status::InvalidArgument("not a tabbench run journal: " + path);
  }
  journal.valid_bytes = off;
  return journal;
}

Result<std::unique_ptr<RunJournalWriter>> RunJournalWriter::Create(
    const std::string& path, const JournalHeader& header) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal("cannot create run journal " + path + ": " +
                            std::strerror(errno));
  }
  auto w = std::make_unique<RunJournalWriter>(path, fd);
  w->set_crash_after_appends(CrashAfterFromEnv());
  Status st = WriteAndSync(fd, Frame(EncodeHeader(header)));
  if (!st.ok()) return st;
  return w;
}

Result<std::unique_ptr<RunJournalWriter>> RunJournalWriter::OpenAppend(
    const std::string& path, const RunJournal& journal) {
  int fd = ::open(path.c_str(), O_WRONLY, 0644);
  if (fd < 0) {
    return Status::Internal("cannot open run journal " + path + ": " +
                            std::strerror(errno));
  }
  auto w = std::make_unique<RunJournalWriter>(path, fd);
  w->set_crash_after_appends(CrashAfterFromEnv());
  // Drop the torn tail so the next frame starts on a clean boundary; the
  // lost partial record is exactly the query that was in flight at the
  // crash, which resume re-executes.
  if (::ftruncate(fd, static_cast<off_t>(journal.valid_bytes)) != 0) {
    return Status::Internal("cannot truncate torn journal tail of " + path +
                            ": " + std::strerror(errno));
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    return Status::Internal("cannot seek run journal " + path + ": " +
                            std::strerror(errno));
  }
  return w;
}

RunJournalWriter::~RunJournalWriter() {
  MutexLock lock(&mu_);
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

Status RunJournalWriter::Append(const JournalServiceEvent& event) {
  std::string frame = Frame(EncodeEvent(event));
  MutexLock lock(&mu_);
  if (fd_ < 0) return Status::Internal("run journal writer is closed");
  // Same total-order-plus-durability contract as query records; event
  // appends share the mutex so the decision audit trail interleaves with
  // outcomes in commit order.
  // NOLINTNEXTLINE(tabbench-blocking-under-lock)
  return WriteAndSync(fd_, frame);
}

Status RunJournalWriter::Append(const JournalIndexBuildRecord& rec) {
  std::string frame = Frame(EncodeIndexBuild(rec));
  MutexLock lock(&mu_);
  if (fd_ < 0) return Status::Internal("run journal writer is closed");
  // Build transitions are durability points like query records (the fsync
  // under mu_ is the contract, as below).
  // NOLINTNEXTLINE(tabbench-blocking-under-lock)
  TB_RETURN_IF_ERROR(WriteAndSync(fd_, frame));
  ++appends_;
  if (crash_after_appends_ >= 0 && appends_ >= crash_after_appends_) {
    // Same chaos hook as query records: the kill-resume harness counts
    // every durable record, so a crash schedule can land *on* a build
    // transition (mid-build, mid-drop) as easily as between ops.
    (void)::raise(SIGKILL);
  }
  return Status::OK();
}

Status RunJournalWriter::Append(const JournalQueryRecord& rec) {
  std::string frame = Frame(EncodeQueryRecord(rec));
  MutexLock lock(&mu_);
  if (fd_ < 0) return Status::Internal("run journal writer is closed");
  // The fsync deliberately happens under mu_: Append's contract is a
  // totally ordered, durable-on-return journal, and serializing the
  // write+sync pair is what provides it. Waiters queue behind the sync by
  // design. NOLINTNEXTLINE(tabbench-blocking-under-lock)
  TB_RETURN_IF_ERROR(WriteAndSync(fd_, frame));
  ++appends_;
  if (crash_after_appends_ >= 0 && appends_ >= crash_after_appends_) {
    // Chaos hook: die *after* the fsync, so exactly `appends_` records are
    // durable — the kill-resume test's definition of "mid-run crash".
    (void)::raise(SIGKILL);
  }
  return Status::OK();
}

}  // namespace tabbench
