#ifndef TABBENCH_UTIL_CANCELLATION_H_
#define TABBENCH_UTIL_CANCELLATION_H_

#include <atomic>
#include <memory>

namespace tabbench {

/// Cooperative cancellation flag shared between a submitter and the worker
/// executing its job. Copies alias the same flag; the default-constructed
/// token is live (never-cancelled) and cheap enough to pass by value
/// everywhere a cancellation point might be reached.
///
/// Cancellation is *cooperative*: requesting it only flips the flag. The
/// executing side observes it at its existing safe points (the executor's
/// per-row `ExecContext::CheckTimeout` calls) and unwinds with
/// `Status::Cancelled`. Nothing is interrupted mid-operation, so partially
/// evaluated queries leave no broken state behind.
class CancellationToken {
 public:
  CancellationToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  /// Requests cancellation. Idempotent; safe from any thread.
  void RequestCancel() const { flag_->store(true, std::memory_order_relaxed); }

  /// True once any copy of this token was cancelled.
  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace tabbench

#endif  // TABBENCH_UTIL_CANCELLATION_H_
