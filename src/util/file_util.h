#ifndef TABBENCH_UTIL_FILE_UTIL_H_
#define TABBENCH_UTIL_FILE_UTIL_H_

#include <string>

#include "util/status.h"

namespace tabbench {

/// Writes `contents` to `path` atomically: the data goes to a temporary
/// file in the same directory (same filesystem, so the rename cannot turn
/// into a copy), is flushed, and is then renamed over `path`. A crash or
/// fault at any point leaves either the old file or the new one — never a
/// truncated hybrid. Benchmark artifacts (workload files, reports) are the
/// inputs of later analysis runs; a half-written file silently poisons
/// every downstream comparison.
Status AtomicWriteFile(const std::string& path, const std::string& contents);

}  // namespace tabbench

#endif  // TABBENCH_UTIL_FILE_UTIL_H_
