#ifndef TABBENCH_UTIL_FILE_UTIL_H_
#define TABBENCH_UTIL_FILE_UTIL_H_

#include <string>

#include "util/status.h"

namespace tabbench {

/// Writes `contents` to `path` atomically: the data goes to a temporary
/// file in the same directory (same filesystem, so the rename cannot turn
/// into a copy), is flushed, and is then renamed over `path`. A crash or
/// fault at any point leaves either the old file or the new one — never a
/// truncated hybrid. Benchmark artifacts (workload files, reports) are the
/// inputs of later analysis runs; a half-written file silently poisons
/// every downstream comparison.
Status AtomicWriteFile(const std::string& path, const std::string& contents);

/// Appends a `# crc32c: xxxxxxxx` trailer line protecting every byte of
/// `body` (a trailing newline is added first if missing, and is covered).
/// Text artifacts (saved workloads, reports) carry this so bit rot between
/// a save and a much later load is detected instead of silently skewing
/// downstream comparisons. The `#` prefix keeps the trailer a comment in
/// every line-oriented tabbench format.
std::string WithCrc32cTrailer(std::string body);

/// Verifies and strips the trailer of `contents` (as read from `path`,
/// named only for the error message). Returns the protected body on
/// success; kDataLoss with the offending byte offset on a checksum or
/// malformed-trailer mismatch. Contents without any trailer pass through
/// unchanged — artifacts written before checksumming stay loadable.
Result<std::string> VerifyCrc32cTrailer(const std::string& contents,
                                        const std::string& path);

}  // namespace tabbench

#endif  // TABBENCH_UTIL_FILE_UTIL_H_
