#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

#include "util/fault_injection.h"

namespace tabbench {

namespace {

size_t ResolveWorkers(size_t requested) {
  if (requested > 0) return requested;
  return std::max<size_t>(1, std::thread::hardware_concurrency());
}

}  // namespace

ThreadPool::ThreadPool(Options options)
    : max_queue_(options.max_queue),
      num_workers_(ResolveWorkers(options.workers)) {
  workers_.reserve(num_workers_);
  for (size_t i = 0; i < num_workers_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

Status ThreadPool::Submit(std::function<void()> job) {
  // Models a spawn rejection, the same shape as real admission-control
  // refusals below — and like them Unavailable (transient) by convention.
  // Deliberately not in SubmitOrRun: the runners' caller-runs fan-out must
  // not be perturbed by injected faults (their work still completes).
  TB_FAULT_POINT("util.task_spawn");
  {
    MutexLock lock(&mu_);
    if (shutdown_) {
      ++rejected_;
      return Status::Unavailable("thread pool is shut down");
    }
    if (max_queue_ > 0 && queue_.size() >= max_queue_) {
      ++rejected_;
      return Status::Unavailable("job queue is full");
    }
    queue_.push_back(std::move(job));
    ++pending_;
  }
  work_cv_.NotifyOne();
  return Status::OK();
}

Status ThreadPool::SubmitOrRun(std::function<void()> job) {
  {
    MutexLock lock(&mu_);
    if (shutdown_) return Status::Unavailable("thread pool is shut down");
    if (max_queue_ == 0 || queue_.size() < max_queue_) {
      queue_.push_back(std::move(job));
      ++pending_;
      work_cv_.NotifyOne();
      return Status::OK();
    }
  }
  // Queue full: caller-runs backpressure.
  job();
  return Status::OK();
}

void ThreadPool::Wait() {
  MutexLock lock(&mu_);
  while (pending_ != 0) idle_cv_.Wait(mu_);
}

void ThreadPool::Shutdown() {
  // Joining must happen outside mu_ (workers take mu_ to drain the queue),
  // so move the thread vector out under the lock and join the local copy.
  // A concurrent or repeated Shutdown() moves an empty vector: idempotent.
  std::vector<std::thread> workers;
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
    workers = std::move(workers_);
    workers_.clear();
  }
  work_cv_.NotifyAll();
  for (auto& t : workers) {
    if (t.joinable()) t.join();
  }
}

size_t ThreadPool::queued() const {
  MutexLock lock(&mu_);
  return queue_.size();
}

uint64_t ThreadPool::rejected() const {
  MutexLock lock(&mu_);
  return rejected_;
}

uint64_t ThreadPool::completed() const {
  MutexLock lock(&mu_);
  return completed_;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      MutexLock lock(&mu_);
      while (!shutdown_ && queue_.empty()) work_cv_.Wait(mu_);
      if (queue_.empty()) return;  // shutdown with a drained queue
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
    {
      MutexLock lock(&mu_);
      ++completed_;
      if (--pending_ == 0) idle_cv_.NotifyAll();
    }
  }
}

}  // namespace tabbench
