#ifndef TABBENCH_UTIL_STREAMING_STATS_H_
#define TABBENCH_UTIL_STREAMING_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace tabbench {

/// Streaming quantile sketch in the t-digest family: a bounded set of
/// weighted centroids over the observed distribution, with the merge budget
/// concentrated at the tails by the classic k1 scale function, so p95/p99
/// stay sharp while p50 tolerates coarser centroids. Memory is O(max
/// centroids) regardless of how many values stream in — the serving layer
/// feeds one of these per shard for live SLO percentiles without retaining
/// per-job samples.
///
/// Deterministic: the centroid layout is a pure function of the insertion
/// sequence (no RNG, no wall clock), so a replayed run reproduces the same
/// quantile estimates bit for bit. Not internally synchronized; wrap in
/// StreamingStats (below) for concurrent recording.
class QuantileSketch {
 public:
  /// `max_centroids` bounds the compressed size (the t-digest delta);
  /// 64 gives ~1% tail error on latency-shaped distributions.
  explicit QuantileSketch(size_t max_centroids = 64);

  void Add(double value);

  /// Estimated value at quantile q in [0, 1] (clamped); 0 when empty.
  /// Interpolates between centroid means, pinning the extreme quantiles to
  /// the observed min/max so p100 is never an extrapolation.
  double Quantile(double q) const;

  uint64_t count() const { return count_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return sum_; }

  void Clear();

  /// Folds another sketch into this one (centroid-level merge, then
  /// recompress). Used when aggregating per-shard digests into a
  /// service-wide view.
  void Merge(const QuantileSketch& other);

 private:
  struct Centroid {
    double mean = 0.0;
    uint64_t weight = 0;
  };

  /// Sorts buffered values in with the centroids and greedily re-merges
  /// under the scale-function weight bound.
  void Compress();
  /// Centroids + buffer merged into one sorted centroid list (the view
  /// Quantile interpolates over). Cheap: both inputs are bounded.
  std::vector<Centroid> MergedView() const;

  size_t max_centroids_;
  std::vector<Centroid> centroids_;  // sorted by mean
  std::vector<double> buffer_;       // raw values awaiting compression
  uint64_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Point-in-time percentile summary of one latency stream.
struct LatencyDigest {
  uint64_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Thread-safe latency recorder: many workers Record(), monitors Snapshot().
/// One lives inside each service shard; the router reads digests when
/// walking the degradation ladder, so the lock is held only for the O(max
/// centroids) sketch update — never across any blocking call.
class StreamingStats {
 public:
  explicit StreamingStats(size_t max_centroids = 64);

  void Record(double seconds) TB_EXCLUDES(mu_);
  LatencyDigest Snapshot() const TB_EXCLUDES(mu_);
  void Clear() TB_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  QuantileSketch sketch_ TB_GUARDED_BY(mu_);
};

}  // namespace tabbench

#endif  // TABBENCH_UTIL_STREAMING_STATS_H_
