#ifndef TABBENCH_UTIL_CRC32C_H_
#define TABBENCH_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace tabbench {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41). The same checksum RocksDB
/// and LevelDB frame their WAL records with; chosen here for the run
/// journal and saved benchmark artifacts because its error-detection
/// properties on short records are well studied. Software table
/// implementation — journal records are small and written once per query,
/// so hardware acceleration would be noise.

/// Extends `crc` with `data[0, n)`. Start a fresh checksum with crc = 0.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

/// Checksum of a whole buffer.
inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}
inline uint32_t Crc32c(const std::string& s) {
  return Crc32cExtend(0, s.data(), s.size());
}

/// CRC of `crc` masked the way RocksDB masks WAL checksums: a journal
/// record's payload may itself embed CRCs (e.g. a saved report with its own
/// trailer), and checksumming a string that contains its own checksum is a
/// classic way to weaken error detection. Masking makes the stored value
/// distinct from any raw CRC of the payload bytes.
inline uint32_t MaskCrc32c(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}
inline uint32_t UnmaskCrc32c(uint32_t masked) {
  uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace tabbench

#endif  // TABBENCH_UTIL_CRC32C_H_
