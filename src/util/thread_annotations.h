#ifndef TABBENCH_UTIL_THREAD_ANNOTATIONS_H_
#define TABBENCH_UTIL_THREAD_ANNOTATIONS_H_

/// Compiler-portable Clang thread-safety-analysis annotations, in the style
/// of Abseil's thread_annotations.h. Under Clang with -Wthread-safety these
/// expand to the `capability` attribute family and the analysis *proves* at
/// compile time that every access to a `TB_GUARDED_BY(mu)` field happens
/// with `mu` held; under GCC (which has no such analysis) they expand to
/// nothing. tools/ci/check.sh runs the Clang build with
/// -Werror=thread-safety whenever a clang++ is on PATH, so annotation
/// violations fail CI the same way a lint violation does.
///
/// The annotations only work on types the analysis knows are lockable —
/// std::mutex is opaque to it on libstdc++ — so mutex-protected code uses
/// the annotated wrappers in util/mutex.h rather than std::mutex directly.

#if defined(__clang__) && (!defined(SWIG))
#define TB_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define TB_THREAD_ANNOTATION_ATTRIBUTE_(x)  // no-op
#endif

/// Marks a class as a lockable capability ("mutex").
#define TB_CAPABILITY(x) TB_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))

/// Marks an RAII class that acquires a capability in its constructor and
/// releases it in its destructor.
#define TB_SCOPED_CAPABILITY TB_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

/// A data member that may only be read or written with `x` held.
#define TB_GUARDED_BY(x) TB_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))

/// A pointer member whose *pointee* may only be accessed with `x` held.
#define TB_PT_GUARDED_BY(x) TB_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

/// The function may only be called with the listed capabilities held.
#define TB_REQUIRES(...) \
  TB_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))

/// The function may only be called with the listed capabilities NOT held
/// (deadlock prevention for non-reentrant locks).
#define TB_EXCLUDES(...) \
  TB_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

/// The function acquires the capability and holds it on return.
#define TB_ACQUIRE(...) \
  TB_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))

/// The function releases the capability (which must be held on entry).
#define TB_RELEASE(...) \
  TB_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns true.
#define TB_TRY_ACQUIRE(...) \
  TB_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))

/// Runtime assertion (debug-checked, analysis-trusted) that the capability
/// is held.
#define TB_ASSERT_CAPABILITY(x) \
  TB_THREAD_ANNOTATION_ATTRIBUTE_(assert_capability(x))

/// Declares the global acquisition order between this mutex and others:
/// this mutex is always taken before (`BEFORE`) or after (`AFTER`) the
/// named ones. Arguments are string literals naming the other mutex as
/// "Class::member" (a cross-class member expression would not compile
/// under Clang's access checking). Clang's analysis accepts and ignores
/// string arguments; tools/analyze's lock-order pass parses them and
/// unions the declared edges with the acquisition edges it observes, so an
/// annotation that contradicts the code is reported as a cycle.
#define TB_ACQUIRED_BEFORE(...) \
  TB_THREAD_ANNOTATION_ATTRIBUTE_(acquired_before(__VA_ARGS__))
#define TB_ACQUIRED_AFTER(...) \
  TB_THREAD_ANNOTATION_ATTRIBUTE_(acquired_after(__VA_ARGS__))

/// The function returns a reference to the named capability.
#define TB_RETURN_CAPABILITY(x) TB_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

/// Escape hatch: the function intentionally accesses guarded state without
/// the analysis being able to prove safety (e.g. constructors/destructors of
/// the owning object). Use sparingly and leave a comment explaining why.
#define TB_NO_THREAD_SAFETY_ANALYSIS \
  TB_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)

#endif  // TABBENCH_UTIL_THREAD_ANNOTATIONS_H_
