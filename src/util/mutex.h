#ifndef TABBENCH_UTIL_MUTEX_H_
#define TABBENCH_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace tabbench {

/// std::mutex wrapped as an annotated capability so Clang's -Wthread-safety
/// analysis can track it (std::mutex itself carries no annotations on
/// libstdc++). Zero overhead: every method is a direct forward.
///
/// Also satisfies BasicLockable (lower-case lock/unlock) so std::lock_guard
/// and std::scoped_lock work, though MutexLock below is preferred because it
/// is annotated as a scoped capability.
class TB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() TB_ACQUIRE() { mu_.lock(); }
  void Unlock() TB_RELEASE() { mu_.unlock(); }
  bool TryLock() TB_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // BasicLockable spelling (std::lock_guard et al.).
  void lock() TB_ACQUIRE() { mu_.lock(); }
  void unlock() TB_RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock for Mutex, annotated as a scoped capability: the analysis knows
/// the mutex is held from construction to destruction.
class TB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) TB_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() TB_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Condition variable bound to the annotated Mutex. `Wait` requires the
/// mutex held (enforced by the analysis) and — like std::condition_variable
/// — atomically releases it while blocked and reacquires it before
/// returning, so the caller's critical section is intact on both sides.
///
/// Internally adopts the already-held std::mutex into a unique_lock for the
/// duration of the wait and releases ownership (not the lock) afterwards;
/// the annotated locking state never changes across the call.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// No predicate overload on purpose: callers spell the guard as an
  /// explicit `while (!cond) cv.Wait(mu);` loop, which keeps every guarded
  /// read inside the annotated function body (the analysis treats lambda
  /// bodies as separate, unannotated functions).
  void Wait(Mutex& mu) TB_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // still locked; hand ownership back to the caller
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace tabbench

#endif  // TABBENCH_UTIL_MUTEX_H_
