#include "util/rng.h"

#include <cassert>
#include <numeric>

namespace tabbench {

namespace {
// SplitMix64, used only to expand the seed into xoshiro state.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  assert(k <= n);
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), size_t{0});
  // Partial Fisher-Yates: after i swaps the first i entries are the sample.
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(Uniform(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace tabbench
