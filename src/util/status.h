#ifndef TABBENCH_UTIL_STATUS_H_
#define TABBENCH_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace tabbench {

/// Outcome of a fallible operation. Modeled on the RocksDB / Arrow Status
/// idiom: no exceptions cross library boundaries; every fallible call returns
/// a Status (or a Result<T>, below) that the caller must inspect.
///
/// [[nodiscard]] makes dropping a returned Status a compile error — the
/// compile-time twin of tabbench_lint's `unchecked-status` rule. Callers
/// that really mean to ignore an outcome must write `(void)Foo();`.
class [[nodiscard]] Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kAlreadyExists,
    kUnsupported,
    /// Query execution exceeded the (simulated) timeout limit. This is an
    /// *expected* outcome for benchmark workloads (the paper's `t_out` bin),
    /// not an internal error.
    kTimeout,
    kResourceExhausted,
    kInternal,
    /// The caller revoked the work via a CancellationToken before it
    /// finished. Like kTimeout this is a cooperative, expected outcome.
    kCancelled,
    /// The service cannot accept the request right now (admission control:
    /// the job queue is full or the service is shutting down). Retryable.
    kUnavailable,
    /// Durable data failed an integrity check: a checksum mismatch in a
    /// saved workload, report, or run journal. Unlike kInternal this points
    /// at bytes on disk, not a bug in this process; the message carries the
    /// offending file offset so the operator can inspect the corruption.
    kDataLoss,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(Code::kUnsupported, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(Code::kTimeout, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(Code::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(Code::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(Code::kDataLoss, std::move(msg));
  }
  /// Rebuilds a Status from its serialized parts (run-journal records store
  /// a per-attempt code + message). An out-of-range code — possible only
  /// with a corrupt journal that still passed its CRC — maps to kInternal
  /// rather than trusting the cast.
  static Status FromCode(Code code, std::string msg) {
    if (code == Code::kOk) return OK();
    if (code < Code::kInvalidArgument || code > Code::kDataLoss) {
      return Internal("invalid serialized status code");
    }
    return Status(code, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsTimeout() const { return code_ == Code::kTimeout; }
  bool IsCancelled() const { return code_ == Code::kCancelled; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsUnsupported() const { return code_ == Code::kUnsupported; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsDataLoss() const { return code_ == Code::kDataLoss; }

  /// True for errors worth retrying with backoff (see util/retry.h): the
  /// operation failed for a reason expected to clear on its own —
  /// kUnavailable (admission control, queue full) and kResourceExhausted
  /// (transient capacity). kTimeout and kCancelled are cooperative final
  /// outcomes and kInternal is a bug; retrying those wastes budget or
  /// hides defects.
  bool IsTransient() const {
    return code_ == Code::kUnavailable || code_ == Code::kResourceExhausted;
  }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// A value or an error. `ok()` must be checked before dereferencing.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status)                          // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() {
    assert(ok());
    return *value_;
  }
  const T& value() const {
    assert(ok());
    return *value_;
  }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Moves the value out of the Result.
  T TakeValue() {
    assert(ok());
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Propagates a non-OK Status to the caller.
#define TB_RETURN_IF_ERROR(expr)            \
  do {                                      \
    ::tabbench::Status _st = (expr);        \
    if (!_st.ok()) return _st;              \
  } while (0)

/// Evaluates a Result-returning expression; on error propagates the Status,
/// otherwise moves the value into `lhs`.
#define TB_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                             \
  if (!tmp.ok()) return tmp.status();            \
  lhs = tmp.TakeValue()

#define TB_ASSIGN_OR_RETURN_CAT(a, b) a##b
#define TB_ASSIGN_OR_RETURN_NAME(a, b) TB_ASSIGN_OR_RETURN_CAT(a, b)
#define TB_ASSIGN_OR_RETURN(lhs, expr) \
  TB_ASSIGN_OR_RETURN_IMPL(            \
      TB_ASSIGN_OR_RETURN_NAME(_result_tmp_, __LINE__), lhs, expr)

}  // namespace tabbench

#endif  // TABBENCH_UTIL_STATUS_H_
