#include "util/zipf.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tabbench {

ZipfSampler::ZipfSampler(size_t n, double theta) : n_(n), theta_(theta) {
  assert(n > 0);
  cdf_.resize(n);
  double total = 0.0;
  for (size_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), theta);
    cdf_[r] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

size_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_ - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfSampler::Pmf(size_t r) const {
  assert(r < n_);
  double prev = (r == 0) ? 0.0 : cdf_[r - 1];
  return cdf_[r] - prev;
}

}  // namespace tabbench
