#ifndef TABBENCH_UTIL_TRACE_EVENT_H_
#define TABBENCH_UTIL_TRACE_EVENT_H_

#include <cstdint>
#include <vector>

namespace tabbench {

/// One recorded cost-model charge of a query execution. A query's sequence
/// of charges is a pure function of the plan and the data — the buffer-pool
/// state only decides which *touches* are hits vs. misses, never which
/// pages are touched or in what order. That invariant is what lets the
/// parallel workload runner execute queries concurrently against private
/// session pools and later *replay* the recorded traces through the shared
/// pool, reproducing the sequential timings bit for bit (src/core/runner.h,
/// RunWorkloadParallel) — and what lets the run journal
/// (util/run_journal.h) restore a crashed run's clock and pool state by
/// replaying the journaled traces instead of re-executing queries.
///
/// Lives in util (below exec, where ExecContext records these and
/// ReplayTrace consumes them) so the journal can serialize traces without
/// inverting the layering.
struct TraceEvent {
  enum class Kind : uint8_t {
    kTouchSeq,      // TouchPage(arg)
    kTouchRandom,   // TouchPageRandom(arg)
    kIoPages,       // ChargeIoPages(arg)
    kTuples,        // ChargeTuples(arg)
    kHashOps,       // ChargeHashOps(arg)
    kTimeoutCheck,  // CheckTimeout() — a potential abort point
    /// arg repetitions of {ChargeTuples(1); CheckTimeout()} — the executor's
    /// per-tuple inner loop, coalesced so traces stay ~2 events per *page*
    /// instead of ~2 per tuple. Replay applies the identical per-repetition
    /// FP add and compare, so coalescing changes neither timings nor the
    /// abort tuple.
    kUnitTuplesChecked,
    /// arg repetitions of {ChargeHashOps(1); CheckTimeout()}.
    kUnitHashChecked,
  };
  Kind kind;
  uint64_t arg = 0;  // PageId for touches, count for charges, 0 for checks
};

using AccessTrace = std::vector<TraceEvent>;

}  // namespace tabbench

#endif  // TABBENCH_UTIL_TRACE_EVENT_H_
