#include "util/fault_injection.h"

#include <cstdio>
#include <cstdlib>

namespace tabbench {
namespace {

thread_local FaultScope* tls_scope = nullptr;

/// SplitMix64 finalizer: a full-avalanche mix so that consecutive hit
/// indices produce statistically independent decision draws.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashName(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Deterministic uniform draw in [0, 1) for one (spec, scope, hit) triple.
/// Pure function of its inputs — evaluation order across threads cannot
/// change any decision, which is what makes a fixed fault schedule
/// reproduce bit-identically in serial and parallel runs.
double DecisionDraw(uint64_t spec_seed, uint64_t scope_seed,
                    uint64_t name_hash, uint64_t hit_index) {
  uint64_t h = Mix64(name_hash + 0x9e3779b97f4a7c15ULL * hit_index);
  h = Mix64(spec_seed ^ Mix64(scope_seed ^ h));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

Status MakeInjected(Status::Code code, const std::string& point) {
  std::string msg = "injected fault at " + point;
  switch (code) {
    case Status::Code::kOk:
      return Status::OK();
    case Status::Code::kInvalidArgument:
      return Status::InvalidArgument(std::move(msg));
    case Status::Code::kNotFound:
      return Status::NotFound(std::move(msg));
    case Status::Code::kAlreadyExists:
      return Status::AlreadyExists(std::move(msg));
    case Status::Code::kUnsupported:
      return Status::Unsupported(std::move(msg));
    case Status::Code::kTimeout:
      return Status::Timeout(std::move(msg));
    case Status::Code::kResourceExhausted:
      return Status::ResourceExhausted(std::move(msg));
    case Status::Code::kInternal:
      return Status::Internal(std::move(msg));
    case Status::Code::kCancelled:
      return Status::Cancelled(std::move(msg));
    case Status::Code::kUnavailable:
      return Status::Unavailable(std::move(msg));
    case Status::Code::kDataLoss:
      return Status::DataLoss(std::move(msg));
  }
  return Status::Internal("unknown fault code at " + point);
}

bool ParseCode(const std::string& name, Status::Code* out) {
  static const struct {
    const char* name;
    Status::Code code;
  } kCodes[] = {
      {"invalid_argument", Status::Code::kInvalidArgument},
      {"not_found", Status::Code::kNotFound},
      {"already_exists", Status::Code::kAlreadyExists},
      {"unsupported", Status::Code::kUnsupported},
      {"timeout", Status::Code::kTimeout},
      {"resource_exhausted", Status::Code::kResourceExhausted},
      {"internal", Status::Code::kInternal},
      {"cancelled", Status::Code::kCancelled},
      {"unavailable", Status::Code::kUnavailable},
  };
  for (const auto& entry : kCodes) {
    if (name == entry.name) {
      *out = entry.code;
      return true;
    }
  }
  return false;
}

}  // namespace

std::atomic<int> g_fault_points_armed{0};

namespace {
// Construct the registry (and thus parse TABBENCH_FAULTS) before main:
// the hot-path gate reads only g_fault_points_armed, so without this an
// env-armed schedule would stay dormant until some code happened to call
// Global() explicitly.
const bool g_env_schedule_loaded = [] {
  FaultRegistry::Global();
  return true;
}();
}  // namespace

FaultScope::FaultScope(uint64_t scope_seed)
    : seed_(scope_seed), prev_(tls_scope) {
  tls_scope = this;
}

FaultScope::~FaultScope() { tls_scope = prev_; }

FaultScope* FaultScope::Current() { return tls_scope; }

FaultRegistry& FaultRegistry::Global() {
  static FaultRegistry* registry = [] {
    // Intentionally leaked: fault points can be evaluated from worker
    // threads during static destruction, so the registry must outlive
    // every other object.
    auto* r = new FaultRegistry();  // NOLINT(tabbench-naked-new)
    if (const char* env = std::getenv("TABBENCH_FAULTS")) {
      Status st = r->ArmFromString(env);
      if (!st.ok()) {
        std::fprintf(stderr, "tabbench: TABBENCH_FAULTS: %s\n",
                     st.ToString().c_str());
      }
    }
    return r;
  }();
  return *registry;
}

Status FaultRegistry::Arm(FaultSpec spec) {
  if (spec.point.empty()) {
    return Status::InvalidArgument("fault spec has empty point name");
  }
  if (spec.code == Status::Code::kOk) {
    return Status::InvalidArgument("fault spec for '" + spec.point +
                                   "' injects kOk");
  }
  if (spec.trigger == FaultSpec::Trigger::kNth && spec.nth == 0) {
    return Status::InvalidArgument("fault spec for '" + spec.point +
                                   "' has nth=0 (hits are 1-based)");
  }
  if (spec.trigger == FaultSpec::Trigger::kProbability &&
      (spec.probability < 0.0 || spec.probability > 1.0)) {
    return Status::InvalidArgument("fault spec for '" + spec.point +
                                   "' has probability outside [0,1]");
  }
  MutexLock lock(&mu_);
  std::string point = spec.point;
  points_[point] = Point{std::move(spec), FaultPointStats{}};
  g_fault_points_armed.store(static_cast<int>(points_.size()),
                             std::memory_order_relaxed);
  return Status::OK();
}

Status FaultRegistry::ArmFromString(const std::string& schedule) {
  std::string errors;
  size_t begin = 0;
  while (begin <= schedule.size()) {
    size_t end = schedule.find(';', begin);
    if (end == std::string::npos) end = schedule.size();
    std::string one = schedule.substr(begin, end - begin);
    begin = end + 1;
    // Trim surrounding whitespace so "a; b" schedules read naturally.
    size_t lo = one.find_first_not_of(" \t");
    if (lo == std::string::npos) continue;
    size_t hi = one.find_last_not_of(" \t");
    one = one.substr(lo, hi - lo + 1);
    Result<FaultSpec> spec = ParseSpec(one);
    Status st = spec.ok() ? Arm(spec.TakeValue()) : spec.status();
    if (!st.ok()) {
      if (!errors.empty()) errors += "; ";
      errors += st.message();
    }
  }
  if (!errors.empty()) return Status::InvalidArgument(errors);
  return Status::OK();
}

Result<FaultSpec> FaultRegistry::ParseSpec(const std::string& text) {
  size_t eq = text.find('=');
  if (eq == std::string::npos || eq == 0) {
    return Status::InvalidArgument("bad fault spec '" + text +
                                   "': want point=code@trigger");
  }
  FaultSpec spec;
  spec.point = text.substr(0, eq);
  std::string rest = text.substr(eq + 1);
  size_t at = rest.find('@');
  if (at == std::string::npos || at == 0) {
    return Status::InvalidArgument("bad fault spec '" + text +
                                   "': want point=code@trigger");
  }
  std::string code_name = rest.substr(0, at);
  if (!ParseCode(code_name, &spec.code)) {
    return Status::InvalidArgument("bad fault spec '" + text +
                                   "': unknown status code '" + code_name +
                                   "'");
  }
  std::string trigger = rest.substr(at + 1);
  if (trigger == "once") {
    spec.trigger = FaultSpec::Trigger::kOnce;
    return spec;
  }
  if (trigger.rfind("nth:", 0) == 0) {
    spec.trigger = FaultSpec::Trigger::kNth;
    char* end = nullptr;
    const std::string arg = trigger.substr(4);
    spec.nth = std::strtoull(arg.c_str(), &end, 10);
    if (arg.empty() || (end && *end != '\0') || spec.nth == 0) {
      return Status::InvalidArgument("bad fault spec '" + text +
                                     "': nth wants a positive integer");
    }
    return spec;
  }
  if (trigger.rfind("prob:", 0) == 0) {
    spec.trigger = FaultSpec::Trigger::kProbability;
    std::string arg = trigger.substr(5);
    size_t colon = arg.find(':');
    std::string prob = colon == std::string::npos ? arg : arg.substr(0, colon);
    char* end = nullptr;
    spec.probability = std::strtod(prob.c_str(), &end);
    if (prob.empty() || (end && *end != '\0') || spec.probability < 0.0 ||
        spec.probability > 1.0) {
      return Status::InvalidArgument(
          "bad fault spec '" + text + "': prob wants a number in [0,1]");
    }
    if (colon != std::string::npos) {
      std::string seed = arg.substr(colon + 1);
      spec.seed = std::strtoull(seed.c_str(), &end, 10);
      if (seed.empty() || (end && *end != '\0')) {
        return Status::InvalidArgument("bad fault spec '" + text +
                                       "': seed wants an integer");
      }
    }
    return spec;
  }
  return Status::InvalidArgument("bad fault spec '" + text +
                                 "': unknown trigger '" + trigger + "'");
}

void FaultRegistry::Disarm(const std::string& point) {
  MutexLock lock(&mu_);
  points_.erase(point);
  g_fault_points_armed.store(static_cast<int>(points_.size()),
                             std::memory_order_relaxed);
}

void FaultRegistry::DisarmAll() {
  MutexLock lock(&mu_);
  points_.clear();
  dropped_fires_ = 0;
  g_fault_points_armed.store(0, std::memory_order_relaxed);
}

Status FaultRegistry::Evaluate(const char* point) {
  FaultScope* scope = FaultScope::Current();
  if (scope != nullptr && scope->suppressed()) return Status::OK();

  MutexLock lock(&mu_);
  auto it = points_.find(point);
  if (it == points_.end()) return Status::OK();
  Point& p = it->second;
  p.stats.hits++;

  // The hit index driving the decision is scope-local when a scope is
  // active: query k always sees hit 1, 2, 3... of each point regardless of
  // what other queries did, which is what keeps serial and parallel
  // schedules identical.
  uint64_t index;
  uint64_t scope_seed = 0;
  if (scope != nullptr) {
    index = ++scope->hits_[it->first];
    scope_seed = scope->seed();
  } else {
    index = p.stats.hits;
  }

  bool fire = false;
  switch (p.spec.trigger) {
    case FaultSpec::Trigger::kOnce:
      fire = index == 1;
      break;
    case FaultSpec::Trigger::kNth:
      fire = index == p.spec.nth;
      break;
    case FaultSpec::Trigger::kProbability:
      fire = DecisionDraw(p.spec.seed, scope_seed, HashName(it->first),
                          index) < p.spec.probability;
      break;
  }
  if (!fire) return Status::OK();
  p.stats.fires++;
  return MakeInjected(p.spec.code, it->first);
}

Status FaultRegistry::Check(const char* point) { return Evaluate(point); }

void FaultRegistry::Trigger(const char* point) {
  Status st = Evaluate(point);
  if (st.ok()) return;
  FaultScope* scope = FaultScope::Current();
  if (scope == nullptr) {
    MutexLock lock(&mu_);
    dropped_fires_++;
    return;
  }
  // First latched fault wins; later fires before the next safe point would
  // be masked by the unwind anyway.
  if (scope->pending_.ok()) scope->pending_ = std::move(st);
}

Status FaultRegistry::TakePending() {
  FaultScope* scope = FaultScope::Current();
  if (scope == nullptr || scope->pending_.ok()) return Status::OK();
  Status st = std::move(scope->pending_);
  scope->pending_ = Status::OK();
  return st;
}

FaultPointStats FaultRegistry::stats(const std::string& point) const {
  MutexLock lock(&mu_);
  auto it = points_.find(point);
  if (it == points_.end()) return FaultPointStats{};
  return it->second.stats;
}

uint64_t FaultRegistry::dropped_fires() const {
  MutexLock lock(&mu_);
  return dropped_fires_;
}

std::vector<std::string> FaultRegistry::armed_points() const {
  MutexLock lock(&mu_);
  std::vector<std::string> names;
  names.reserve(points_.size());
  for (const auto& [name, point] : points_) {
    (void)point;
    names.push_back(name);
  }
  return names;
}

}  // namespace tabbench
