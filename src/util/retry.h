#ifndef TABBENCH_UTIL_RETRY_H_
#define TABBENCH_UTIL_RETRY_H_

#include <chrono>
#include <cstdint>
#include <optional>

#include "util/cancellation.h"
#include "util/status.h"

namespace tabbench {

/// Exponential backoff with deterministic jitter for transient errors
/// (Status::IsTransient(): kUnavailable, kResourceExhausted). Two distinct
/// clocks consume these delays:
///
///  * the *simulated* clock of the cost model — the runner charges the
///    backoff into a query's sim time (ExecContext::ChargeBackoff), so a
///    retried query pays for its retries in the CFC exactly like the paper
///    charges timed-out queries their timeout;
///  * the *wall* clock of the service — WorkloadService sleeps for real
///    between attempts via SleepWithCancellation below, staying cancel- and
///    deadline-aware.
///
/// Jitter is seeded, not sampled from global entropy: BackoffSeconds is a
/// pure function of (policy, attempt), so a retried run reproduces the same
/// delays — the same determinism contract as util/fault_injection.h.
struct RetryPolicy {
  /// Total attempts including the first; 1 means no retry (the default, so
  /// existing call sites keep their semantics until they opt in).
  int max_attempts = 1;
  /// Delay before attempt 2; successive delays multiply by
  /// `backoff_multiplier` and clamp at `max_backoff_seconds`.
  double initial_backoff_seconds = 0.05;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 2.0;
  /// Each delay is scaled by a factor drawn deterministically from
  /// [1 - jitter_fraction, 1 + jitter_fraction].
  double jitter_fraction = 0.1;
  /// Seed for the jitter draws (mixed with the attempt number).
  uint64_t seed = 0;

  /// Convenience: a policy that retries transient errors `attempts` times
  /// total with the default backoff shape.
  static RetryPolicy WithAttempts(int attempts) {
    RetryPolicy p;
    p.max_attempts = attempts;
    return p;
  }

  /// The delay, in seconds, between failed attempt `attempt` (1-based) and
  /// the next one. Deterministic; >= 0; returns 0 for attempt <= 0.
  double BackoffSeconds(int attempt) const;

  /// True when attempt `attempt` (1-based) failing with `status` should be
  /// retried: the error is transient and attempts remain.
  bool ShouldRetry(const Status& status, int attempt) const {
    return status.IsTransient() && attempt < max_attempts;
  }
};

/// Sleeps `seconds` of wall-clock time, waking early when `cancel` fires
/// (returns kCancelled) or `deadline` passes (returns kTimeout); OK after a
/// full sleep. Polls in ~1ms slices: CancellationToken is a bare atomic
/// flag with no condition variable, and at backoff scale (tens of
/// milliseconds and up) a 1ms response beats the complexity of adding one.
/// This is the one sanctioned real-sleep site in the library — the
/// tabbench-raw-sleep lint rule flags std::this_thread::sleep_for anywhere
/// else under src/.
Status SleepWithCancellation(
    double seconds, const CancellationToken& cancel,
    std::optional<std::chrono::steady_clock::time_point> deadline =
        std::nullopt);

}  // namespace tabbench

#endif  // TABBENCH_UTIL_RETRY_H_
