#include "util/crc32c.h"

#include <array>

namespace tabbench {
namespace {

// Table generated at first use from the reflected Castagnoli polynomial.
// constinit-style static init keeps this thread-safe under C++11 magic
// statics; the table is ~1 KiB.
std::array<uint32_t, 256> MakeTable() {
  constexpr uint32_t kPoly = 0x82f63b78u;  // 0x1EDC6F41 reflected.
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = MakeTable();
  return table;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const auto& table = Table();
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace tabbench
