#ifndef TABBENCH_UTIL_FAULT_INJECTION_H_
#define TABBENCH_UTIL_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace tabbench {

/// Deterministic fault injection — the chaos layer the benchmark methodology
/// implies: the paper's runs survive misbehaving queries (30-minute timeouts
/// charged conservatively, one commercial advisor that "fails outright" on
/// NREF3J, Section 4.1/5), so the harness must keep producing valid results
/// when storage or the engine throws errors. This registry lets tests and
/// operators *schedule* such errors deterministically.
///
/// A *fault point* is a named site in the code (`TB_FAULT_POINT` /
/// `TB_FAULT_TRIGGER` below). Arming a point attaches a FaultSpec deciding
/// when the site fires and which Status it injects. Decisions are pure
/// functions of (spec, hit index, scope seed) — no hidden RNG state — so a
/// fixed fault schedule reproduces bit-identically across serial and
/// parallel execution, and across retries.
///
/// Wired points (see DESIGN.md "Fault injection & resilience"):
///   storage.page_read      PageStore::GetPage (read path; latched)
///   storage.page_alloc     PageStore::Allocate (latched)
///   storage.heap_fetch     HeapTable::Fetch (direct)
///   storage.heap_scan      HeapTable::Cursor page advance (latched)
///   storage.btree_descend  BTree::FindLeaf (latched)
///   engine.finish_load     Database::FinishLoad (direct)
///   engine.apply_config    Database::ApplyConfiguration (direct)
///   engine.query           Database::Run / RunWithContext entry (direct)
///   exec.vec.morsel        VecExecutor morsel body entry (direct; fires
///                          only on the thread that owns the FaultScope —
///                          helper threads carry no scope, so schedules
///                          stay attempt-granular under parallelism)
///   util.task_spawn        ThreadPool::Submit (direct)
///   service.session_execute Session::Execute entry (direct)
///
/// *Direct* points return the injected Status from a Status/Result-returning
/// function. *Latched* points sit in functions that cannot propagate a
/// Status (page accessors, cursors); a firing latched fault is parked in the
/// executing thread's FaultScope and surfaces at the next
/// ExecContext::CheckTimeout() safe point — the same cooperative unwind
/// cancellation uses, so no state is corrupted mid-operation.
struct FaultSpec {
  enum class Trigger {
    /// Fires on the first hit (per scope; globally when unscoped).
    kOnce,
    /// Fires on exactly the nth hit (1-based).
    kNth,
    /// Fires on each hit independently with probability `probability`,
    /// decided by a deterministic hash of (seed, scope seed, hit index).
    kProbability,
  };

  std::string point;
  Status::Code code = Status::Code::kUnavailable;
  Trigger trigger = Trigger::kOnce;
  uint64_t nth = 1;
  double probability = 0.0;
  uint64_t seed = 0;
};

/// Per-point counters (monotone since arming).
struct FaultPointStats {
  uint64_t hits = 0;   // times the site was evaluated
  uint64_t fires = 0;  // times a fault was injected
};

/// Number of armed fault points; the macros below gate on this so an
/// unarmed build pays one relaxed atomic load per site.
extern std::atomic<int> g_fault_points_armed;
inline bool FaultInjectionArmed() {
  return g_fault_points_armed.load(std::memory_order_relaxed) != 0;
}

/// Scopes fault decisions to one logical unit of work (one workload query,
/// one service job) on the current thread, RAII-nested. While a scope is
/// active, every point's hit index counts *within the scope*, and
/// probability decisions mix in the scope seed. Because a query's sequence
/// of storage touches is a pure function of plan and data (the trace
/// invariant, exec/exec_context.h), giving query k the scope seed k makes
/// its fault schedule identical whether the workload runs serially or on a
/// parallel worker — the bit-identity contract of RunWorkloadParallel.
///
/// A scope also carries the *latched* fault parked by trigger-style points
/// and the suppression flag the runner uses for repeat executions (warm
/// cache repetitions re-run a query that already survived its faults; they
/// neither count nor fire).
class FaultScope {
 public:
  explicit FaultScope(uint64_t scope_seed);
  ~FaultScope();

  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

  /// Innermost active scope on this thread, or nullptr.
  static FaultScope* Current();

  /// While suppressed, Check/Trigger on this thread are no-ops: hits are
  /// not counted and nothing fires.
  void set_suppressed(bool suppressed) { suppressed_ = suppressed; }
  bool suppressed() const { return suppressed_; }

  uint64_t seed() const { return seed_; }

 private:
  friend class FaultRegistry;

  uint64_t seed_;
  bool suppressed_ = false;
  FaultScope* prev_;
  std::map<std::string, uint64_t> hits_;  // per-point local hit counts
  Status pending_;                        // latched fault, if any
};

/// Process-wide registry of armed fault points. Thread-safe; hot-path cost
/// when nothing is armed is one relaxed atomic load (see the macros).
class FaultRegistry {
 public:
  /// The process registry. First access arms every spec in the
  /// TABBENCH_FAULTS environment variable (see ParseSpec for the grammar);
  /// malformed specs are reported on stderr and skipped.
  static FaultRegistry& Global();

  /// Arms (or re-arms, resetting counters) one point.
  Status Arm(FaultSpec spec) TB_EXCLUDES(mu_);

  /// Arms every spec in a `;`-separated schedule string.
  Status ArmFromString(const std::string& schedule) TB_EXCLUDES(mu_);

  /// Parses one spec: `point=code@trigger[:arg[:seed]]`, e.g.
  ///   storage.heap_fetch=unavailable@nth:3
  ///   storage.page_read=internal@prob:0.01:7
  ///   engine.apply_config=resource_exhausted@once
  /// Codes: unavailable, resource_exhausted, internal, timeout, cancelled,
  /// not_found, invalid_argument, unsupported, already_exists.
  static Result<FaultSpec> ParseSpec(const std::string& spec);

  void Disarm(const std::string& point) TB_EXCLUDES(mu_);
  void DisarmAll() TB_EXCLUDES(mu_);

  /// Evaluates `point` at a Status-returning site: OK when the point is
  /// unarmed or does not fire, otherwise the injected Status.
  Status Check(const char* point) TB_EXCLUDES(mu_);

  /// Evaluates `point` at a site that cannot return Status. A firing fault
  /// is latched into the current FaultScope and surfaced at the next
  /// ExecContext::CheckTimeout(); without an active scope the fire is
  /// counted in dropped_fires() and otherwise ignored.
  void Trigger(const char* point) TB_EXCLUDES(mu_);

  /// Consumes the latched fault of this thread's scope, if any.
  static Status TakePending();

  FaultPointStats stats(const std::string& point) const TB_EXCLUDES(mu_);
  uint64_t dropped_fires() const TB_EXCLUDES(mu_);
  std::vector<std::string> armed_points() const TB_EXCLUDES(mu_);

 private:
  struct Point {
    FaultSpec spec;
    FaultPointStats stats;  // global counters (scoped hits count here too)
  };

  /// Decides and accounts one evaluation; returns the injected Status or OK.
  Status Evaluate(const char* point) TB_EXCLUDES(mu_);

  mutable Mutex mu_;
  std::map<std::string, Point> points_ TB_GUARDED_BY(mu_);
  uint64_t dropped_fires_ TB_GUARDED_BY(mu_) = 0;
};

/// Declares a fault point in a Status/Result-returning function: returns
/// the injected Status when armed and firing, else falls through.
#define TB_FAULT_POINT(point)                                         \
  do {                                                                \
    if (::tabbench::FaultInjectionArmed()) {                          \
      ::tabbench::Status _fault =                                     \
          ::tabbench::FaultRegistry::Global().Check(point);           \
      if (!_fault.ok()) return _fault;                                \
    }                                                                 \
  } while (0)

/// Declares a fault point in a function that cannot propagate Status; a
/// firing fault is latched and surfaces at the next executor safe point.
#define TB_FAULT_TRIGGER(point)                                       \
  do {                                                                \
    if (::tabbench::FaultInjectionArmed()) {                          \
      ::tabbench::FaultRegistry::Global().Trigger(point);             \
    }                                                                 \
  } while (0)

}  // namespace tabbench

#endif  // TABBENCH_UTIL_FAULT_INJECTION_H_
