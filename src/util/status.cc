#include "util/status.h"

namespace tabbench {

namespace {
const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kAlreadyExists:
      return "AlreadyExists";
    case Status::Code::kUnsupported:
      return "Unsupported";
    case Status::Code::kTimeout:
      return "Timeout";
    case Status::Code::kResourceExhausted:
      return "ResourceExhausted";
    case Status::Code::kInternal:
      return "Internal";
    case Status::Code::kCancelled:
      return "Cancelled";
    case Status::Code::kUnavailable:
      return "Unavailable";
    case Status::Code::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace tabbench
