#include "util/streaming_stats.h"

#include <algorithm>
#include <cmath>

namespace tabbench {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// The t-digest k1 scale function: maps a quantile to "k-space", where every
/// centroid is allowed to span at most one unit. Its derivative collapses
/// near q=0 and q=1, which is what forces small centroids — and therefore
/// fine resolution — at the tails.
double ScaleK(double q, double delta) {
  q = std::min(1.0, std::max(0.0, q));
  return delta / (2.0 * kPi) * std::asin(2.0 * q - 1.0);
}

}  // namespace

QuantileSketch::QuantileSketch(size_t max_centroids)
    : max_centroids_(std::max<size_t>(max_centroids, 8)) {
  buffer_.reserve(max_centroids_);
}

void QuantileSketch::Add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  buffer_.push_back(value);
  if (buffer_.size() >= max_centroids_) Compress();
}

void QuantileSketch::Clear() {
  centroids_.clear();
  buffer_.clear();
  count_ = 0;
  min_ = 0.0;
  max_ = 0.0;
  sum_ = 0.0;
}

void QuantileSketch::Merge(const QuantileSketch& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  // Adopt the other side's centroids wholesale and recompress: O(delta)
  // work, and MergedView re-sorts, so the sorted invariant is restored by
  // Compress regardless of interleaving.
  centroids_.insert(centroids_.end(), other.centroids_.begin(),
                    other.centroids_.end());
  buffer_.insert(buffer_.end(), other.buffer_.begin(), other.buffer_.end());
  Compress();
}

void QuantileSketch::Compress() {
  if (buffer_.empty() && centroids_.size() <= max_centroids_) return;
  std::vector<Centroid> merged = MergedView();
  buffer_.clear();
  centroids_.clear();
  if (merged.empty()) return;

  const double total = static_cast<double>(count_);
  const double delta = static_cast<double>(max_centroids_);
  double weight_so_far = 0.0;
  Centroid cur = merged[0];
  double k_lo = ScaleK(0.0, delta);
  for (size_t i = 1; i < merged.size(); ++i) {
    const Centroid& next = merged[i];
    const double q_hi =
        (weight_so_far + static_cast<double>(cur.weight + next.weight)) /
        total;
    if (ScaleK(q_hi, delta) - k_lo <= 1.0) {
      // Fits in one k-unit: fold into the current centroid.
      const double w = static_cast<double>(cur.weight + next.weight);
      cur.mean = (cur.mean * static_cast<double>(cur.weight) +
                  next.mean * static_cast<double>(next.weight)) /
                 w;
      cur.weight += next.weight;
    } else {
      weight_so_far += static_cast<double>(cur.weight);
      centroids_.push_back(cur);
      k_lo = ScaleK(weight_so_far / total, delta);
      cur = next;
    }
  }
  centroids_.push_back(cur);
}

std::vector<QuantileSketch::Centroid> QuantileSketch::MergedView() const {
  std::vector<Centroid> merged = centroids_;
  merged.reserve(merged.size() + buffer_.size());
  for (double v : buffer_) merged.push_back(Centroid{v, 1});
  std::sort(merged.begin(), merged.end(),
            [](const Centroid& a, const Centroid& b) {
              return a.mean < b.mean;
            });
  return merged;
}

double QuantileSketch::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const std::vector<Centroid> view = MergedView();
  const double total = static_cast<double>(count_);
  const double target = q * total;

  // Each centroid's mass is centered on its mean; interpolate between
  // adjacent centroid midpoints, with virtual anchors (0, min) on the left
  // and (total, max) on the right so the extreme quantiles stay within the
  // observed range.
  double cum = 0.0;
  double prev_mid = 0.0;
  double prev_mean = min_;
  for (const Centroid& c : view) {
    const double w = static_cast<double>(c.weight);
    const double mid = cum + w / 2.0;
    if (target <= mid) {
      const double span = mid - prev_mid;
      const double frac =
          span > 0.0 ? std::min(1.0, std::max(0.0, (target - prev_mid) /
                                                       span))
                     : 1.0;
      return prev_mean + (c.mean - prev_mean) * frac;
    }
    prev_mid = mid;
    prev_mean = c.mean;
    cum += w;
  }
  const double span = total - prev_mid;
  const double frac =
      span > 0.0 ? std::min(1.0, (target - prev_mid) / span) : 1.0;
  return prev_mean + (max_ - prev_mean) * frac;
}

StreamingStats::StreamingStats(size_t max_centroids)
    : sketch_(max_centroids) {}

void StreamingStats::Record(double seconds) {
  MutexLock lock(&mu_);
  sketch_.Add(seconds);
}

LatencyDigest StreamingStats::Snapshot() const {
  MutexLock lock(&mu_);
  LatencyDigest d;
  d.count = sketch_.count();
  d.mean = d.count == 0 ? 0.0
                        : sketch_.sum() / static_cast<double>(d.count);
  d.p50 = sketch_.Quantile(0.50);
  d.p95 = sketch_.Quantile(0.95);
  d.p99 = sketch_.Quantile(0.99);
  d.max = sketch_.max();
  return d;
}

void StreamingStats::Clear() {
  MutexLock lock(&mu_);
  sketch_.Clear();
}

}  // namespace tabbench
