#ifndef TABBENCH_UTIL_ZIPF_H_
#define TABBENCH_UTIL_ZIPF_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace tabbench {

/// Zipfian sampler over ranks 0..n-1 with exponent `theta`. Rank r is drawn
/// with probability proportional to 1/(r+1)^theta. theta = 1 matches the
/// "Zipfian factor of 1" used for the paper's skewed TPC-H database
/// (Chaudhuri & Narasayya's TPC-D skew generator, reference [5]).
///
/// Sampling is by binary search over the precomputed CDF: O(n) setup,
/// O(log n) per draw, exact distribution.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double theta);

  /// Draws a rank in [0, n). Rank 0 is the most frequent.
  size_t Sample(Rng* rng) const;

  /// Probability mass of rank r.
  double Pmf(size_t r) const;

  size_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  size_t n_;
  double theta_;
  std::vector<double> cdf_;  // cdf_[r] = P(rank <= r)
};

}  // namespace tabbench

#endif  // TABBENCH_UTIL_ZIPF_H_
