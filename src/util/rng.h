#ifndef TABBENCH_UTIL_RNG_H_
#define TABBENCH_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace tabbench {

/// Deterministic pseudo-random number generator (xoshiro256**). Every
/// randomized component in the library (data generators, workload samplers)
/// takes an explicit Rng so that runs are reproducible from a single seed;
/// nothing reads global entropy.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform integer in [lo, hi]. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t s_[4];
};

}  // namespace tabbench

#endif  // TABBENCH_UTIL_RNG_H_
