#include "util/file_util.h"

#include <cstdio>
#include <fstream>
#include <system_error>

#include <filesystem>

namespace tabbench {

Status AtomicWriteFile(const std::string& path, const std::string& contents) {
  if (path.empty()) {
    return Status::InvalidArgument("AtomicWriteFile: empty path");
  }
  // Temp file in the same directory so the final rename stays within one
  // filesystem (rename(2) is only atomic there).
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::Internal("cannot open temp file for write: " + tmp);
    }
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out.good()) {
      out.close();
      std::remove(tmp.c_str());
      return Status::Internal("short write to temp file: " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    return Status::Internal("rename " + tmp + " -> " + path +
                            " failed: " + ec.message());
  }
  return Status::OK();
}

}  // namespace tabbench
