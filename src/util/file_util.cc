#include "util/file_util.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <system_error>

#include <filesystem>

#include "util/crc32c.h"

namespace tabbench {

namespace {
constexpr char kCrcPrefix[] = "# crc32c: ";
constexpr size_t kCrcPrefixLen = sizeof(kCrcPrefix) - 1;
}  // namespace

Status AtomicWriteFile(const std::string& path, const std::string& contents) {
  if (path.empty()) {
    return Status::InvalidArgument("AtomicWriteFile: empty path");
  }
  // Temp file in the same directory so the final rename stays within one
  // filesystem (rename(2) is only atomic there).
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::Internal("cannot open temp file for write: " + tmp);
    }
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out.good()) {
      out.close();
      std::remove(tmp.c_str());
      return Status::Internal("short write to temp file: " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    return Status::Internal("rename " + tmp + " -> " + path +
                            " failed: " + ec.message());
  }
  return Status::OK();
}

std::string WithCrc32cTrailer(std::string body) {
  if (!body.empty() && body.back() != '\n') body += '\n';
  char hex[16];
  std::snprintf(hex, sizeof(hex), "%08x", Crc32c(body));
  body += kCrcPrefix;
  body += hex;
  body += '\n';
  return body;
}

Result<std::string> VerifyCrc32cTrailer(const std::string& contents,
                                        const std::string& path) {
  size_t pos = contents.rfind(kCrcPrefix);
  // Only a trailer that is the *final line* counts; a mid-file match is
  // ordinary content (or a truncated file, which the checksum of a real
  // trailer would catch anyway).
  if (pos == std::string::npos || (pos != 0 && contents[pos - 1] != '\n')) {
    return contents;  // legacy artifact, no trailer
  }
  size_t eol = contents.find('\n', pos);
  if (eol == std::string::npos || eol + 1 != contents.size()) {
    return contents;
  }
  std::string hex = contents.substr(pos + kCrcPrefixLen,
                                    eol - pos - kCrcPrefixLen);
  uint32_t stored = 0;
  bool valid = hex.size() == 8;
  for (char c : hex) {
    if (!std::isxdigit(static_cast<unsigned char>(c))) {
      valid = false;
      break;
    }
    stored = stored * 16 +
             static_cast<uint32_t>(std::isdigit(static_cast<unsigned char>(c))
                                       ? c - '0'
                                       : std::tolower(c) - 'a' + 10);
  }
  if (!valid) {
    return Status::DataLoss("malformed crc32c trailer at offset " +
                            std::to_string(pos) + ": " + path);
  }
  std::string body = contents.substr(0, pos);
  uint32_t actual = Crc32c(body);
  if (actual != stored) {
    char want[16], got[16];
    std::snprintf(want, sizeof(want), "%08x", stored);
    std::snprintf(got, sizeof(got), "%08x", actual);
    return Status::DataLoss("crc32c mismatch in " + path + ": trailer at "
                            "offset " + std::to_string(pos) + " says " +
                            want + ", contents hash to " + got);
  }
  return body;
}

}  // namespace tabbench
