#ifndef TABBENCH_UTIL_THREAD_POOL_H_
#define TABBENCH_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace tabbench {

/// Fixed-size worker pool over a bounded FIFO job queue.
///
/// - `Submit` enqueues a job or fails fast with `Unavailable` when the
///   queue is at capacity (admission control) or the pool is shutting down
///   — it never blocks the caller.
/// - `SubmitOrRun` is the backpressure policy for internal fan-outs: when
///   the queue is full the caller's own thread runs the job (caller-runs),
///   so bulk submitters throttle themselves instead of failing.
/// - Shutdown (explicit or via the destructor) stops admission, drains
///   every already-accepted job, and joins the workers.
///
/// All mutable state is guarded by `mu_` and annotated for Clang's
/// -Wthread-safety analysis (see util/thread_annotations.h); the CI script
/// compiles this file with -Werror=thread-safety under Clang.
class ThreadPool {
 public:
  struct Options {
    /// Worker threads; 0 means std::thread::hardware_concurrency().
    size_t workers = 0;
    /// Queue capacity; 0 means unbounded (no admission control).
    size_t max_queue = 0;
  };

  explicit ThreadPool(Options options);
  explicit ThreadPool(size_t workers) : ThreadPool(Options{workers, 0}) {}
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `job`; Unavailable when the queue is full or after Shutdown.
  Status Submit(std::function<void()> job) TB_EXCLUDES(mu_);

  /// Enqueues `job`, or runs it on the calling thread when the queue is
  /// full. Fails only after Shutdown.
  Status SubmitOrRun(std::function<void()> job) TB_EXCLUDES(mu_);

  /// Blocks until every job accepted so far has finished. The pool stays
  /// usable afterwards.
  void Wait() TB_EXCLUDES(mu_);

  /// Stops accepting jobs, drains the queue, joins the workers. Idempotent.
  void Shutdown() TB_EXCLUDES(mu_);

  /// Workers the pool was built with. Immutable after construction, so this
  /// stays valid (and race-free) even while Shutdown() joins the threads.
  size_t num_workers() const { return num_workers_; }
  size_t queue_capacity() const { return max_queue_; }
  /// Jobs currently queued (excludes running ones).
  size_t queued() const TB_EXCLUDES(mu_);
  /// Jobs rejected by admission control since construction.
  uint64_t rejected() const TB_EXCLUDES(mu_);
  uint64_t completed() const TB_EXCLUDES(mu_);

 private:
  void WorkerLoop() TB_EXCLUDES(mu_);

  const size_t max_queue_;
  const size_t num_workers_;
  mutable Mutex mu_;
  CondVar work_cv_;   // workers wait for jobs/shutdown
  CondVar idle_cv_;   // Wait() waits for pending_ == 0
  std::deque<std::function<void()>> queue_ TB_GUARDED_BY(mu_);
  size_t pending_ TB_GUARDED_BY(mu_) = 0;  // queued + running
  uint64_t rejected_ TB_GUARDED_BY(mu_) = 0;
  uint64_t completed_ TB_GUARDED_BY(mu_) = 0;
  bool shutdown_ TB_GUARDED_BY(mu_) = false;
  /// Joined and cleared by the first Shutdown(); guarded so concurrent
  /// Shutdown() calls (e.g. explicit + destructor) cannot race on the
  /// vector itself — the joining happens on a moved-out local copy.
  std::vector<std::thread> workers_ TB_GUARDED_BY(mu_);
};

/// One-shot join point for a known number of events.
class Latch {
 public:
  explicit Latch(size_t count) : count_(count) {}

  void CountDown() TB_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    if (--count_ == 0) cv_.NotifyAll();
  }

  void Wait() TB_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    while (count_ != 0) cv_.Wait(mu_);
  }

 private:
  Mutex mu_;
  CondVar cv_;
  size_t count_ TB_GUARDED_BY(mu_);
};

/// Runs `fn(i)` for every i in [0, n) on the pool — with the caller's own
/// thread pitching in when the queue is full (SubmitOrRun) — and joins
/// before returning. A shared pool may carry unrelated work, so this joins
/// on its own Latch, never ThreadPool::Wait().
///
/// `fn` must not throw and must write only state owned by its index (the
/// fan-out/fan-in makes per-slot results race-free without locks). When the
/// pool refuses a job (shut down mid-run), `on_reject(i, status)` runs on
/// the calling thread instead of `fn(i)`. A nullptr pool degrades to a
/// plain sequential loop.
template <typename Fn, typename Reject>
void ParallelFor(ThreadPool* pool, size_t n, Fn&& fn, Reject&& on_reject) {
  if (pool == nullptr) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  Latch latch(n);
  for (size_t i = 0; i < n; ++i) {
    Status s = pool->SubmitOrRun([i, &fn, &latch] {
      fn(i);
      latch.CountDown();
    });
    if (!s.ok()) {
      on_reject(i, std::move(s));
      latch.CountDown();
    }
  }
  latch.Wait();
}

}  // namespace tabbench

#endif  // TABBENCH_UTIL_THREAD_POOL_H_
