#ifndef TABBENCH_UTIL_STRINGS_H_
#define TABBENCH_UTIL_STRINGS_H_

#include <string>
#include <vector>

namespace tabbench {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep);

/// ASCII lower-casing (SQL keywords, identifiers).
std::string ToLower(const std::string& s);

/// True if `s` starts with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

/// Renders a duration in seconds as a compact human string ("3.2s", "45min").
std::string HumanSeconds(double seconds);

/// Renders a byte count as "12.3 MB" style.
std::string HumanBytes(double bytes);

}  // namespace tabbench

#endif  // TABBENCH_UTIL_STRINGS_H_
