#ifndef TABBENCH_UTIL_RUN_JOURNAL_H_
#define TABBENCH_UTIL_RUN_JOURNAL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/retry.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/trace_event.h"

namespace tabbench {

/// Durable run journal: the crash-recovery substrate for multi-hour
/// benchmark campaigns. The runners (core/runner) and the WorkloadService
/// append one record per *completed* query — outcome, attempt log, and the
/// per-attempt charge traces — and fsync before moving on, so a process
/// death at any point loses at most the query in flight. Resume replays the
/// journaled traces through the buffer pool (the same trace-replay
/// machinery RunWorkloadParallel is built on), restoring the simulated
/// clock and pool state bit for bit, then continues live from the first
/// unjournaled query.
///
/// On-disk format: a sequence of length-prefixed frames,
///
///   [u32 payload_len][u32 masked_crc32c(payload)][payload bytes]
///
/// little-endian, CRC masked (util/crc32c.h) so payloads that embed their
/// own checksums stay fully protected. Frame 0 is the header (workload SQL,
/// run options fingerprint, free-form metadata); every later frame is one
/// query record. A torn tail — a frame cut short by a crash, or a final
/// frame whose checksum fails — is silently dropped on load and truncated
/// on append-open, exactly like a WAL recovery. A checksum mismatch
/// *before* the final frame is real corruption and surfaces as kDataLoss
/// with the offending byte offset.

/// One execution attempt of one query: its final status and the full charge
/// trace up to the point execution stopped (completion, timeout trip, or
/// injected fault). The trace is what makes resume exact — replaying it
/// applies the same pool touches and the same FP charge sequence the live
/// attempt did.
struct JournalAttempt {
  Status::Code code = Status::Code::kOk;
  std::string message;
  bool timed_out = false;  // QueryResult::timed_out when code is kOk
  AccessTrace trace;
};

/// One completed query. The outcome fields double as a cross-check: resume
/// recomputes them from the replayed traces and refuses the journal
/// (kDataLoss) if they disagree — a CRC protects against bit rot, this
/// protects against replaying into the wrong database or configuration.
struct JournalQueryRecord {
  uint32_t query_index = 0;
  double seconds = 0.0;  // final censored timing, paper's A(q_k, C)
  bool timed_out = false;
  bool failed = false;
  uint32_t attempts = 1;  // executions performed, including the first
  bool has_estimate = false;
  double estimate = 0.0;
  /// Shared-pool counter movement while this query ran (hits/misses after
  /// minus before): the buffer-pool delta the resume replay must reproduce.
  uint64_t pool_hit_delta = 0;
  uint64_t pool_miss_delta = 0;
  std::vector<JournalAttempt> attempt_log;
  /// Worker shard that served this query (sharded WorkloadService /
  /// ShardRouter); 0 for unsharded writers. Encoded as an optional trailer
  /// on the record payload so journals written before the field existed
  /// still load (they read back as shard 0).
  uint32_t shard_id = 0;
};

/// One routing / health decision of the sharded serving layer: quarantines,
/// re-routes, probe admissions, re-admissions. Journaled alongside query
/// outcomes so a post-hoc audit can reconstruct *why* a domain's queries
/// moved between shards, not just where they ran. Old journals simply have
/// no event frames; old readers never see them (the frame type is new).
struct JournalServiceEvent {
  uint64_t sequence = 0;        // writer-wide monotone decision ordinal
  double clock_seconds = 0.0;   // router clock when the decision was made
  uint32_t shard_id = 0;        // shard the decision concerns
  uint64_t domain = 0;          // affected session domain (0 = shard-wide)
  std::string kind;             // "quarantine", "reroute", "readmit", ...
  std::string detail;           // free-form human-readable context
};

/// One state transition of an online index build (or drop) running inside a
/// mutation workload: `pending → scanning → backfilling → catching-up →
/// live` (and `dropping → dropped` for the teardown half). Each transition
/// is its own fsync'd frame — the durability points the kill-resume chaos
/// harness SIGKILLs between — so resume knows exactly how far every build
/// progressed. `op_index` anchors the transition into the query-record
/// stream: the transition committed after `op_index` workload ops had been
/// journaled, which is what lets a resumed run re-verify the interleaving
/// record by record. Old journals simply have no index-build frames (the
/// frame type is new), and old readers never see them.
struct JournalIndexBuildRecord {
  uint32_t build_id = 0;        // ordinal of the build/drop within the run
  uint8_t state = 0;            // engine IndexBuildState value just entered
  uint32_t op_index = 0;        // workload ops journaled before this commit
  uint64_t side_log_entries = 0;  // side-log size when the state was entered
  double clock_seconds = 0.0;   // workload simulated clock at the transition
  std::string index_name;
  std::string target;           // indexed table
  std::vector<std::string> columns;
};

/// Everything needed to (a) refuse resuming under different run options and
/// (b) reconstruct the run from nothing but the journal file (`tabbench
/// resume <journal>`): the full workload SQL, the RunOptions fingerprint,
/// and free-form metadata (database kind, scale, configuration) stamped by
/// the caller.
struct JournalHeader {
  uint32_t query_count = 0;
  int repetitions = 1;
  bool collect_estimates = false;
  bool cold_start = true;
  uint64_t fault_scope_salt = 0;
  double timeout_seconds = 0.0;
  RetryPolicy retry;
  std::vector<std::string> sql;
  std::map<std::string, std::string> metadata;
};

struct RunJournal {
  JournalHeader header;
  std::vector<JournalQueryRecord> records;
  /// Service-layer decision events, in append order (sharded serving only;
  /// empty for runner journals and journals predating the frame type).
  std::vector<JournalServiceEvent> events;
  /// Online index-build/drop transitions, in append order (mutation
  /// workloads only; empty for journals predating the frame type). Their
  /// position among the query records is recoverable from each record's
  /// op_index.
  std::vector<JournalIndexBuildRecord> index_builds;
  /// Bytes of valid frames from the start of the file; a torn tail begins
  /// here. OpenAppend truncates to this offset before continuing.
  uint64_t valid_bytes = 0;
};

/// Parses `path`. A torn tail is tolerated (records simply end earlier);
/// an unreadable or headerless file is kInvalidArgument; a checksum
/// mismatch anywhere before the final frame is kDataLoss with the offset.
Result<RunJournal> LoadRunJournal(const std::string& path);

/// Append-side handle. Internally synchronized: the service's workers share
/// one writer, and per-record framing means concurrent appends interleave
/// whole records, never bytes.
class RunJournalWriter {
 public:
  /// Starts a fresh journal at `path` (truncating any existing file),
  /// writes the header frame, and fsyncs it.
  static Result<std::unique_ptr<RunJournalWriter>> Create(
      const std::string& path, const JournalHeader& header);

  /// Reopens an existing journal to continue it, truncating the torn tail
  /// (`journal.valid_bytes`, from LoadRunJournal) first.
  static Result<std::unique_ptr<RunJournalWriter>> OpenAppend(
      const std::string& path, const RunJournal& journal);

  /// Use Create/OpenAppend; public only so the factories can make_unique.
  RunJournalWriter(std::string path, int fd)
      : path_(std::move(path)), fd_(fd) {}
  ~RunJournalWriter();
  RunJournalWriter(const RunJournalWriter&) = delete;
  RunJournalWriter& operator=(const RunJournalWriter&) = delete;

  /// Serializes, frames, writes, and fsyncs one record — the durability
  /// point: once Append returns OK the record survives any crash.
  Status Append(const JournalQueryRecord& rec);

  /// Same durability contract for a service decision event. Events and
  /// query records share one total append order (the writer's mutex), so
  /// the audit trail reflects the order decisions actually committed.
  Status Append(const JournalServiceEvent& event);

  /// Same durability contract for an index-build state transition. Counts
  /// toward the crash hook below like a query record does, so the
  /// kill-resume harness can SIGKILL a run *at* any build transition, not
  /// just between workload ops.
  Status Append(const JournalIndexBuildRecord& rec);

  /// Test hook for the kill-resume chaos suite: after the n-th successful
  /// Append (1-based) the process SIGKILLs itself — *after* the fsync, so
  /// the journal holds exactly n durable records. Negative disables. Also
  /// armed by the TABBENCH_JOURNAL_CRASH_AFTER environment variable (read
  /// at Create/OpenAppend), mirroring TABBENCH_FAULTS, so child benchmark
  /// processes can be crashed without API plumbing.
  void set_crash_after_appends(int n) {
    MutexLock lock(&mu_);
    crash_after_appends_ = n;
  }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  Mutex mu_;
  int fd_ TB_GUARDED_BY(mu_) = -1;
  int appends_ TB_GUARDED_BY(mu_) = 0;
  int crash_after_appends_ TB_GUARDED_BY(mu_) = -1;
};

}  // namespace tabbench

#endif  // TABBENCH_UTIL_RUN_JOURNAL_H_
